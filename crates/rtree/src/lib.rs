//! In-memory R-tree with incremental nearest-neighbor search.
//!
//! The substrate behind two of the paper's systems:
//!
//! * **SRS** (Section 3.1) — iterates [`cursor::NnCursor::next`]
//!   (`incSearch`) to fetch projected-space neighbors one at a time.
//! * **R-LSH** (Section 6.1) — the ablation that runs PM-LSH's Algorithm 2
//!   over an R-tree instead of a PM-tree, using
//!   [`cursor::NnCursor::next_within`] with growing radii.
//!
//! [`cost::expected_distance_computations`] implements the node-based cost
//! model of Eqs. 8–9 (the R-tree row of Table 2).

#![warn(missing_docs)]

pub mod cost;
pub mod cursor;
pub mod mbr;
pub mod tree;

pub use cost::{expected_distance_computations, isochoric_cube_side};
pub use cursor::NnCursor;
pub use mbr::Mbr;
pub use tree::{RTree, RTreeConfig};

/// Index of a node inside the tree arena.
pub type NodeId = u32;
