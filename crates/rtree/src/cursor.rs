//! Best-first incremental traversal of the R-tree.
//!
//! Provides the `incSearch` primitive SRS is built on (Hjaltason &
//! Samet-style distance browsing) and the same `next_within` contract as the
//! PM-tree cursor, so R-LSH can run the paper's Algorithm 2 unchanged over an
//! R-tree — this is precisely the ablation of Section 6.

use crate::tree::{Node, RTree};
use crate::NodeId;
use pm_lsh_metric::{euclidean, PointId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, Debug)]
enum ItemKind {
    /// A child node, keyed by its MBR's MINDIST.
    Node(NodeId),
    /// A point with exact distance.
    Point { external: PointId, dist: f32 },
}

#[derive(Clone, Copy, Debug)]
struct Item {
    key: f32,
    seq: u32,
    kind: ItemKind,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Incremental best-first cursor over an [`RTree`].
pub struct NnCursor<'t> {
    tree: &'t RTree,
    query: Vec<f32>,
    heap: BinaryHeap<Item>,
    seq: u32,
    dist_computations: u64,
}

impl<'t> NnCursor<'t> {
    /// Starts a cursor for `query`.
    pub fn new(tree: &'t RTree, query: &[f32]) -> Self {
        assert_eq!(query.len(), tree.dim(), "query has wrong dimensionality");
        let mut cursor = Self {
            tree,
            query: query.to_vec(),
            heap: BinaryHeap::new(),
            seq: 0,
            dist_computations: 0,
        };
        if !tree.is_empty() {
            cursor.push(0.0, ItemKind::Node(tree.root));
        }
        cursor
    }

    /// Exact distance/MINDIST computations so far (one unit per entry
    /// examined, matching the cost model's accounting).
    pub fn distance_computations(&self) -> u64 {
        self.dist_computations
    }

    /// `true` once every indexed point has been yielded.
    pub fn is_exhausted(&self) -> bool {
        self.heap.is_empty()
    }

    fn push(&mut self, key: f32, kind: ItemKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Item { key, seq, kind });
    }

    /// The next point with distance at most `radius`, or `None` when every
    /// remaining point is farther; the frontier survives across calls, so
    /// the radius may grow between calls (R-LSH's virtual radius enlarging).
    pub fn next_within(&mut self, radius: f32) -> Option<(PointId, f32)> {
        loop {
            let top = *self.heap.peek()?;
            if top.key > radius {
                return None;
            }
            self.heap.pop();
            match top.kind {
                ItemKind::Node(node) => match &self.tree.nodes[node as usize] {
                    Node::Inner(entries) => {
                        for e in entries {
                            let lb = e.mbr.min_dist(&self.query);
                            self.dist_computations += 1;
                            self.push(lb, ItemKind::Node(e.child));
                        }
                    }
                    Node::Leaf(entries) => {
                        for e in entries {
                            let d =
                                euclidean(&self.query, self.tree.points.point(e.internal as usize));
                            self.dist_computations += 1;
                            self.push(
                                d,
                                ItemKind::Point {
                                    external: e.external,
                                    dist: d,
                                },
                            );
                        }
                    }
                },
                ItemKind::Point { external, dist } => return Some((external, dist)),
            }
        }
    }

    /// Incremental nearest-neighbor iteration (`incSearch` of the paper):
    /// the next unseen point in non-decreasing distance.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(PointId, f32)> {
        self.next_within(f32::INFINITY)
    }
}

impl RTree {
    /// All points within `radius` of `query`, sorted by ascending distance.
    pub fn range(&self, query: &[f32], radius: f32) -> Vec<(PointId, f32)> {
        let mut cursor = NnCursor::new(self, query);
        let mut out = Vec::new();
        while let Some(hit) = cursor.next_within(radius) {
            out.push(hit);
        }
        out
    }

    /// Exact k nearest neighbors of `query` in the indexed space.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(PointId, f32)> {
        let mut cursor = NnCursor::new(self, query);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match cursor.next() {
                Some(hit) => out.push(hit),
                None => break,
            }
        }
        out
    }

    /// Starts an incremental cursor.
    pub fn cursor(&self, query: &[f32]) -> NnCursor<'_> {
        NnCursor::new(self, query)
    }
}
