//! Node-based cost model for the R-tree (Eqs. 8–9, Section 4.2).
//!
//! A range ball `B(q, r_q)` is replaced by the isochoric hyper-cube with side
//! `l = r_q · (2π^{m/2} / (m Γ(m/2)))^{1/m}` (same volume as the ball); a
//! node behind entry `e` with `MBR(e) = [l_1, u_1] × … × [l_m, u_m]` is then
//! accessed with probability `Π_i [G_i(u_i + l) − G_i(l_i − l)]`, where
//! `G_i` is the marginal distribution of coordinate `i` (Eq. 8). The paper
//! pairs this with the PM-tree model of `pm-lsh-pmtree::cost` to produce
//! Table 2.

use crate::tree::{Node, RTree};
use pm_lsh_stats::{gamma, Ecdf};

/// Side length of the hyper-cube with the same volume as an `m`-ball of
/// radius `rq` (the paper's substitution below Eq. 8).
pub fn isochoric_cube_side(rq: f64, m: u32) -> f64 {
    assert!(m > 0, "dimension must be positive");
    assert!(rq >= 0.0, "radius must be non-negative");
    let md = m as f64;
    let ball_volume_unit = 2.0 * std::f64::consts::PI.powf(md / 2.0) / (md * gamma(md / 2.0));
    ball_volume_unit.powf(1.0 / md) * rq
}

/// Eq. 9: expected distance computations of `range(q, rq)` over the built
/// tree, under per-dimension marginals `g` (one [`Ecdf`] per dimension).
pub fn expected_distance_computations(tree: &RTree, g: &[Ecdf], rq: f64) -> f64 {
    assert_eq!(g.len(), tree.dim(), "need one marginal per dimension");
    let l = isochoric_cube_side(rq, tree.dim() as u32);

    let entries_of = |node: u32| -> f64 {
        match &tree.nodes[node as usize] {
            Node::Inner(es) => es.len() as f64,
            Node::Leaf(es) => es.len() as f64,
        }
    };

    let mut cc = entries_of(tree.root);
    let mut stack = vec![tree.root];
    while let Some(nid) = stack.pop() {
        if let Node::Inner(entries) = &tree.nodes[nid as usize] {
            for e in entries {
                let mut pr = 1.0f64;
                for (i, gi) in g.iter().enumerate() {
                    let lo = e.mbr.lo[i] as f64;
                    let hi = e.mbr.hi[i] as f64;
                    pr *= (gi.cdf(hi + l) - gi.cdf(lo - l)).clamp(0.0, 1.0);
                }
                cc += entries_of(e.child) * pr;
                stack.push(e.child);
            }
        }
    }
    cc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{RTree, RTreeConfig};
    use pm_lsh_metric::Dataset;
    use pm_lsh_stats::{dimension_marginals, Rng};

    #[test]
    fn cube_side_reference_values() {
        // m = 1: "ball" of radius r is [-r, r], volume 2r -> side 2r.
        assert!((isochoric_cube_side(1.0, 1) - 2.0).abs() < 1e-12);
        // m = 2: disk area πr² -> side √π·r.
        assert!((isochoric_cube_side(1.0, 2) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
        // m = 3: volume 4/3πr³ -> side (4π/3)^{1/3}.
        let want = (4.0 * std::f64::consts::PI / 3.0f64).powf(1.0 / 3.0);
        assert!((isochoric_cube_side(1.0, 3) - want).abs() < 1e-12);
        // side shrinks relative to 2r as m grows (balls get "spiky")
        assert!(isochoric_cube_side(1.0, 15) < 1.2);
    }

    #[test]
    fn cost_grows_with_radius_and_stays_bounded() {
        let mut rng = Rng::new(31);
        let n = 1200;
        let dim = 8;
        let mut ds = Dataset::with_capacity(dim, n);
        let mut buf = vec![0.0f32; dim];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        let tree = RTree::build(ds.view(), RTreeConfig::default());
        let g = dimension_marginals(ds.view(), 1000, &mut rng);
        let small = expected_distance_computations(&tree, &g, 0.5);
        let large = expected_distance_computations(&tree, &g, 3.0);
        assert!(small > 0.0);
        assert!(large > small);
        let total: f64 = (0..tree.node_count())
            .map(|i| match &tree.nodes[i] {
                Node::Inner(es) => es.len() as f64,
                Node::Leaf(es) => es.len() as f64,
            })
            .sum();
        assert!(large <= total + 1e-9);
    }
}
