//! R-tree construction: Guttman insertion with quadratic split.
//!
//! The paper's SRS baseline indexes the projected points with an R-tree and
//! iterates `incSearch` (incremental nearest neighbor) over it; the R-LSH
//! ablation runs PM-LSH's radius-enlarging algorithm over the same tree.
//! Node capacity matches the PM-tree experiments (16 entries).

use crate::mbr::Mbr;
use crate::NodeId;
use pm_lsh_metric::{Dataset, MatrixView, PointId};

/// Routing entry of an inner node.
#[derive(Clone, Debug)]
pub(crate) struct InnerEntry {
    pub mbr: Mbr,
    pub child: NodeId,
}

/// Point entry of a leaf node.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry {
    pub internal: u32,
    pub external: PointId,
}

#[derive(Clone, Debug)]
pub(crate) enum Node {
    Inner(Vec<InnerEntry>),
    Leaf(Vec<LeafEntry>),
}

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Maximum entries per node (paper setting: 16).
    pub capacity: usize,
    /// Minimum entries per node after a split (Guttman's `m`; 40 % here).
    pub min_fill: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self {
            capacity: 16,
            min_fill: 6,
        }
    }
}

/// An in-memory R-tree over points in `R^m`.
#[derive(Clone, Debug)]
pub struct RTree {
    pub(crate) dim: usize,
    pub(crate) cfg: RTreeConfig,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) points: Dataset,
    pub(crate) externals: Vec<PointId>,
}

impl RTree {
    /// Creates an empty tree.
    pub fn new(dim: usize, cfg: RTreeConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(cfg.capacity >= 2, "capacity must be at least 2");
        assert!(
            cfg.min_fill >= 1 && cfg.min_fill <= cfg.capacity / 2,
            "bad min_fill"
        );
        Self {
            dim,
            cfg,
            nodes: vec![Node::Leaf(Vec::new())],
            root: 0,
            points: Dataset::with_capacity(dim, 0),
            externals: Vec::new(),
        }
    }

    /// Builds a tree over every row of `view` (external id = row index).
    pub fn build(view: MatrixView<'_>, cfg: RTreeConfig) -> Self {
        let mut tree = Self::new(view.dim(), cfg);
        for (i, p) in view.iter().enumerate() {
            tree.insert(p, i as PointId);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.externals.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.externals.is_empty()
    }

    /// Dimensionality of the indexed space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf(_) => return h,
                Node::Inner(entries) => {
                    node = entries[0].child;
                    h += 1;
                }
            }
        }
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        id
    }

    /// Inserts a point with a caller-chosen external id.
    pub fn insert(&mut self, vector: &[f32], external: PointId) {
        assert_eq!(vector.len(), self.dim, "point has wrong dimensionality");
        let internal = self.externals.len() as u32;
        self.points.push(vector);
        self.externals.push(external);
        if let Some((e1, e2)) = self.insert_rec(self.root, internal) {
            let new_root = self.alloc(Node::Inner(vec![e1, e2]));
            self.root = new_root;
        }
    }

    fn insert_rec(&mut self, node: NodeId, internal: u32) -> Option<(InnerEntry, InnerEntry)> {
        let vector = self.points.point(internal as usize).to_vec();
        match &self.nodes[node as usize] {
            Node::Leaf(_) => {
                let capacity = self.cfg.capacity;
                let Node::Leaf(entries) = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                entries.push(LeafEntry {
                    internal,
                    external: self.externals[internal as usize],
                });
                if entries.len() > capacity {
                    return Some(self.split_leaf(node));
                }
                None
            }
            Node::Inner(entries) => {
                // ChooseLeaf: least enlargement, ties by smaller area.
                let pmbr = Mbr::from_point(&vector);
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, e) in entries.iter().enumerate() {
                    let enl = e.mbr.enlargement(&pmbr);
                    let area = e.mbr.area();
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                let child = entries[best].child;
                let split = self.insert_rec(child, internal);
                let capacity = self.cfg.capacity;
                let Node::Inner(entries) = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                match split {
                    None => {
                        entries[best].mbr.include_point(&vector);
                        None
                    }
                    Some((e1, e2)) => {
                        entries[best] = e1;
                        entries.push(e2);
                        if entries.len() > capacity {
                            return Some(self.split_inner(node));
                        }
                        None
                    }
                }
            }
        }
    }

    fn split_leaf(&mut self, node: NodeId) -> (InnerEntry, InnerEntry) {
        let entries = {
            let Node::Leaf(entries) = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            std::mem::take(entries)
        };
        let mbrs: Vec<Mbr> = entries
            .iter()
            .map(|e| Mbr::from_point(self.points.point(e.internal as usize)))
            .collect();
        let (g1, g2, m1, m2) = quadratic_split(entries, &mbrs, self.cfg.min_fill);
        self.nodes[node as usize] = Node::Leaf(g1);
        let new_node = self.alloc(Node::Leaf(g2));
        (
            InnerEntry {
                mbr: m1,
                child: node,
            },
            InnerEntry {
                mbr: m2,
                child: new_node,
            },
        )
    }

    fn split_inner(&mut self, node: NodeId) -> (InnerEntry, InnerEntry) {
        let entries = {
            let Node::Inner(entries) = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            std::mem::take(entries)
        };
        let mbrs: Vec<Mbr> = entries.iter().map(|e| e.mbr.clone()).collect();
        let (g1, g2, m1, m2) = quadratic_split(entries, &mbrs, self.cfg.min_fill);
        self.nodes[node as usize] = Node::Inner(g1);
        let new_node = self.alloc(Node::Inner(g2));
        (
            InnerEntry {
                mbr: m1,
                child: node,
            },
            InnerEntry {
                mbr: m2,
                child: new_node,
            },
        )
    }

    /// Validates MBR containment and point reachability; used by tests.
    pub fn verify_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.len()];
        self.verify_node(self.root, None, &mut seen)?;
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("point {missing} not reachable"));
        }
        Ok(())
    }

    fn verify_node(
        &self,
        node: NodeId,
        bound: Option<&Mbr>,
        seen: &mut [bool],
    ) -> Result<(), String> {
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => {
                for e in entries {
                    let p = self.points.point(e.internal as usize);
                    if let Some(b) = bound {
                        if !b.contains_point(p) {
                            return Err(format!("point {} escapes its MBR", e.internal));
                        }
                    }
                    if seen[e.internal as usize] {
                        return Err(format!("point {} reachable twice", e.internal));
                    }
                    seen[e.internal as usize] = true;
                }
                Ok(())
            }
            Node::Inner(entries) => {
                if entries.is_empty() {
                    return Err("empty inner node".into());
                }
                for e in entries {
                    if let Some(b) = bound {
                        let u = b.union(&e.mbr);
                        if u != *b {
                            return Err("child MBR escapes parent MBR".into());
                        }
                    }
                    self.verify_node(e.child, Some(&e.mbr), seen)?;
                }
                Ok(())
            }
        }
    }
}

/// Guttman's quadratic split over any entry type with precomputed MBRs.
/// Returns the two groups and their covering MBRs.
fn quadratic_split<T>(
    entries: Vec<T>,
    mbrs: &[Mbr],
    min_fill: usize,
) -> (Vec<T>, Vec<T>, Mbr, Mbr) {
    let n = entries.len();
    debug_assert!(n >= 2);

    // PickSeeds: the pair wasting the most area.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in i + 1..n {
            let waste = mbrs[i].union(&mbrs[j]).area() - mbrs[i].area() - mbrs[j].area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }

    let mut assign: Vec<Option<bool>> = vec![None; n];
    assign[s1] = Some(true);
    assign[s2] = Some(false);
    let mut m1 = mbrs[s1].clone();
    let mut m2 = mbrs[s2].clone();
    let (mut c1, mut c2) = (1usize, 1usize);
    let mut remaining: Vec<usize> = (0..n).filter(|&k| assign[k].is_none()).collect();

    while !remaining.is_empty() {
        // Force-assign when a group must take everything to reach min fill.
        if c1 + remaining.len() == min_fill {
            for &k in &remaining {
                assign[k] = Some(true);
                m1.include_mbr(&mbrs[k]);
            }
            break;
        }
        if c2 + remaining.len() == min_fill {
            for &k in &remaining {
                assign[k] = Some(false);
                m2.include_mbr(&mbrs[k]);
            }
            break;
        }
        // PickNext: max preference difference.
        let (mut pick_pos, mut pick_diff) = (0usize, f64::NEG_INFINITY);
        for (pos, &k) in remaining.iter().enumerate() {
            let d1 = m1.enlargement(&mbrs[k]);
            let d2 = m2.enlargement(&mbrs[k]);
            let diff = (d1 - d2).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick_pos = pos;
            }
        }
        let k = remaining.swap_remove(pick_pos);
        let d1 = m1.enlargement(&mbrs[k]);
        let d2 = m2.enlargement(&mbrs[k]);
        let to_first = d1 < d2
            || (d1 == d2 && (m1.area() < m2.area() || (m1.area() == m2.area() && c1 <= c2)));
        if to_first {
            assign[k] = Some(true);
            m1.include_mbr(&mbrs[k]);
            c1 += 1;
        } else {
            assign[k] = Some(false);
            m2.include_mbr(&mbrs[k]);
            c2 += 1;
        }
    }

    let mut g1 = Vec::with_capacity(c1);
    let mut g2 = Vec::with_capacity(c2);
    for (e, a) in entries.into_iter().zip(assign) {
        match a {
            Some(true) => g1.push(e),
            Some(false) => g2.push(e),
            None => unreachable!("entry left unassigned by quadratic split"),
        }
    }
    (g1, g2, m1, m2)
}
