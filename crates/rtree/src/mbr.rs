//! Minimum bounding rectangles in `R^m`.

/// An axis-aligned minimum bounding rectangle `[lo_1, hi_1] × … × [lo_m, hi_m]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    /// Per-dimension lower bounds.
    pub lo: Box<[f32]>,
    /// Per-dimension upper bounds.
    pub hi: Box<[f32]>,
}

impl Mbr {
    /// The degenerate rectangle covering a single point.
    pub fn from_point(p: &[f32]) -> Self {
        Self {
            lo: p.into(),
            hi: p.into(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Expands in place to cover `p`.
    pub fn include_point(&mut self, p: &[f32]) {
        debug_assert_eq!(p.len(), self.dim());
        for ((lo, hi), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(p) {
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
    }

    /// Expands in place to cover `other`.
    pub fn include_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dim(), self.dim());
        for (lo, &olo) in self.lo.iter_mut().zip(other.lo.iter()) {
            if olo < *lo {
                *lo = olo;
            }
        }
        for (hi, &ohi) in self.hi.iter_mut().zip(other.hi.iter()) {
            if ohi > *hi {
                *hi = ohi;
            }
        }
    }

    /// The smallest rectangle covering both operands.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut out = self.clone();
        out.include_mbr(other);
        out
    }

    /// Volume (`f64` to survive 15-dimensional products).
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| (h - l).max(0.0) as f64)
            .product()
    }

    /// Volume increase caused by covering `other` as well.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared Euclidean distance from `q` to the closest point of the
    /// rectangle (0 when `q` is inside): the classic MINDIST.
    pub fn min_sq_dist(&self, q: &[f32]) -> f32 {
        debug_assert_eq!(q.len(), self.dim());
        let mut acc = 0.0f32;
        for ((&lo, &hi), &v) in self.lo.iter().zip(self.hi.iter()).zip(q) {
            let gap = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// Euclidean MINDIST.
    #[inline]
    pub fn min_dist(&self, q: &[f32]) -> f32 {
        self.min_sq_dist(q).sqrt()
    }

    /// `true` when a ball `B(q, r)` intersects the rectangle.
    #[inline]
    pub fn intersects_ball(&self, q: &[f32], r: f32) -> bool {
        self.min_sq_dist(q) <= r * r
    }

    /// `true` when `p` lies inside (inclusive).
    pub fn contains_point(&self, p: &[f32]) -> bool {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(p)
            .all(|((&l, &h), &v)| l <= v && v <= h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_area() {
        let a = Mbr::from_point(&[0.0, 0.0]);
        let b = Mbr::from_point(&[2.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.area(), 6.0);
        assert_eq!(a.area(), 0.0);
        assert_eq!(a.enlargement(&b), 6.0);
    }

    #[test]
    fn include_point_expands() {
        let mut m = Mbr::from_point(&[1.0, 1.0]);
        m.include_point(&[-1.0, 4.0]);
        assert_eq!(&*m.lo, &[-1.0, 1.0]);
        assert_eq!(&*m.hi, &[1.0, 4.0]);
        assert!(m.contains_point(&[0.0, 2.0]));
        assert!(!m.contains_point(&[0.0, 5.0]));
    }

    #[test]
    fn mindist_cases() {
        let mut m = Mbr::from_point(&[0.0, 0.0]);
        m.include_point(&[2.0, 2.0]);
        // inside
        assert_eq!(m.min_sq_dist(&[1.0, 1.0]), 0.0);
        // left of the box
        assert_eq!(m.min_sq_dist(&[-3.0, 1.0]), 9.0);
        // diagonal corner
        assert_eq!(m.min_sq_dist(&[3.0, 3.0]), 2.0);
        assert!(m.intersects_ball(&[3.0, 3.0], 1.5));
        assert!(!m.intersects_ball(&[3.0, 3.0], 1.0));
    }

    #[test]
    fn mindist_never_exceeds_point_distance() {
        // lower-bound property against a contained point
        let mut m = Mbr::from_point(&[0.0, 0.0, 0.0]);
        m.include_point(&[1.0, 2.0, 3.0]);
        let q = [5.0f32, -1.0, 2.0];
        let inside = [1.0f32, 1.5, 3.0];
        assert!(m.contains_point(&inside));
        let d = pm_lsh_metric::euclidean(&q, &inside);
        assert!(m.min_dist(&q) <= d);
    }
}
