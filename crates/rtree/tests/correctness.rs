//! Cross-checks of the R-tree against brute force.

use pm_lsh_metric::{euclidean, Dataset, PointId};
use pm_lsh_rtree::{RTree, RTreeConfig};
use pm_lsh_stats::Rng;
use proptest::prelude::*;

fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(dim, n);
    let mut buf = vec![0.0f32; dim];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn brute_range(ds: &Dataset, q: &[f32], r: f32) -> Vec<(PointId, f32)> {
    let mut out: Vec<(PointId, f32)> = ds
        .iter()
        .enumerate()
        .map(|(i, p)| (i as PointId, euclidean(q, p)))
        .filter(|&(_, d)| d <= r)
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[test]
fn range_matches_brute_force() {
    let ds = random_dataset(900, 15, 20);
    let tree = RTree::build(ds.view(), RTreeConfig::default());
    tree.verify_invariants().unwrap();
    let mut rng = Rng::new(21);
    let mut q = vec![0.0f32; 15];
    for trial in 0..15 {
        rng.fill_normal(&mut q);
        let r = 2.0 + trial as f32 * 0.25;
        let got = tree.range(&q, r);
        let want = brute_range(&ds, &q, r);
        let got_ids: std::collections::BTreeSet<u32> = got.iter().map(|x| x.0).collect();
        let want_ids: std::collections::BTreeSet<u32> = want.iter().map(|x| x.0).collect();
        assert_eq!(got_ids, want_ids, "r={r}");
    }
}

#[test]
fn incremental_nn_is_globally_sorted() {
    let ds = random_dataset(500, 10, 22);
    let tree = RTree::build(ds.view(), RTreeConfig::default());
    let mut rng = Rng::new(23);
    let mut q = vec![0.0f32; 10];
    rng.fill_normal(&mut q);
    let mut cursor = tree.cursor(&q);
    let mut dists = Vec::new();
    while let Some((_, d)) = cursor.next() {
        dists.push(d);
    }
    assert_eq!(
        dists.len(),
        500,
        "incremental NN must enumerate every point"
    );
    for w in dists.windows(2) {
        assert!(w[0] <= w[1], "incSearch order violated");
    }
}

#[test]
fn knn_matches_brute_force() {
    let ds = random_dataset(700, 12, 24);
    let tree = RTree::build(ds.view(), RTreeConfig::default());
    let mut rng = Rng::new(25);
    let mut q = vec![0.0f32; 12];
    for _ in 0..10 {
        rng.fill_normal(&mut q);
        let got = tree.knn(&q, 8);
        let mut all: Vec<(u32, f32)> = ds
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, euclidean(&q, p)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let want: Vec<f32> = all[..8].iter().map(|x| x.1).collect();
        let got_d: Vec<f32> = got.iter().map(|x| x.1).collect();
        assert_eq!(got_d, want);
    }
}

#[test]
fn radius_enlarging_over_rtree() {
    // R-LSH's access pattern: one cursor, growing radii.
    let ds = random_dataset(600, 8, 26);
    let tree = RTree::build(ds.view(), RTreeConfig::default());
    let mut rng = Rng::new(27);
    let mut q = vec![0.0f32; 8];
    rng.fill_normal(&mut q);
    let mut cursor = tree.cursor(&q);
    let mut seen = Vec::new();
    let mut radius = 0.5f32;
    for _ in 0..6 {
        while let Some(hit) = cursor.next_within(radius) {
            seen.push(hit);
        }
        radius *= 1.5;
    }
    let want = brute_range(&ds, &q, radius / 1.5);
    assert_eq!(seen.len(), want.len());
    let ids: std::collections::BTreeSet<u32> = seen.iter().map(|x| x.0).collect();
    assert_eq!(ids.len(), seen.len(), "duplicate yields");
}

#[test]
fn small_capacity_tree_is_deep_and_correct() {
    let ds = random_dataset(300, 6, 28);
    let cfg = RTreeConfig {
        capacity: 4,
        min_fill: 2,
    };
    let tree = RTree::build(ds.view(), cfg);
    tree.verify_invariants().unwrap();
    assert!(tree.height() >= 3);
    let q = vec![0.0f32; 6];
    assert_eq!(tree.range(&q, 2.0).len(), brute_range(&ds, &q, 2.0).len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_for_arbitrary_data(seed in 0u64..1000, n in 10usize..300, capacity in 4usize..12) {
        let ds = random_dataset(n, 5, seed);
        let cfg = RTreeConfig { capacity, min_fill: (capacity * 2 / 5).max(1) };
        let tree = RTree::build(ds.view(), cfg);
        prop_assert_eq!(tree.len(), n);
        tree.verify_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn range_always_matches_brute_force(seed in 0u64..1000, n in 10usize..250, radius in 0.5f32..4.0) {
        let ds = random_dataset(n, 4, seed);
        let tree = RTree::build(ds.view(), RTreeConfig { capacity: 5, min_fill: 2 });
        let mut rng = Rng::new(seed ^ 0x77);
        let mut q = vec![0.0f32; 4];
        rng.fill_normal(&mut q);
        let got = tree.range(&q, radius);
        let want = brute_range(&ds, &q, radius);
        prop_assert_eq!(got.len(), want.len());
    }
}
