//! Lock-step mutation tests for `PmLsh`: the dataset row store, the
//! projected points inside the PM-tree, and the id maps must stay
//! consistent through arbitrary insert/delete interleavings, and queries
//! must only ever surface live points.

use pm_lsh_core::{MutOp, MutReject, PmLsh, PmLshParams};
use pm_lsh_metric::{euclidean, Dataset, Neighbor};
use pm_lsh_stats::Rng;
use std::collections::{HashMap, HashSet};

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

/// Exact k-NN over the *live* points only — the oracle a mutated index
/// is measured against.
fn exact_live_knn(index: &PmLsh, q: &[f32], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = index
        .live_ids()
        .iter()
        .map(|&id| Neighbor::new(euclidean(q, index.data().point_id(id)), id))
        .collect();
    all.sort();
    all.truncate(k);
    all
}

#[test]
fn interleaved_mutations_keep_index_and_model_in_lock_step() {
    let d = 12;
    let data = blob(400, d, 301);
    let mut rng = Rng::new(302);
    let mut index = PmLsh::build(data.clone(), PmLshParams::default());
    // The model: external id -> vector, mirroring every mutation.
    let mut model: HashMap<u32, Vec<f32>> = data
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p.to_vec()))
        .collect();
    let mut live: Vec<u32> = (0..400).collect();
    let mut buf = vec![0.0f32; d];

    for op in 0..250 {
        if rng.bernoulli(0.5) || live.is_empty() {
            rng.fill_normal(&mut buf);
            let id = index.insert(&buf);
            assert!(
                model.insert(id, buf.clone()).is_none(),
                "external id {id} reused"
            );
            live.push(id);
            // The fresh point is its own nearest neighbor at distance 0.
            let res = index.query(&buf, 1);
            assert_eq!(res.neighbors[0], Neighbor::new(0.0, id));
        } else {
            let victim = live.swap_remove(rng.below(live.len()));
            model.remove(&victim);
            assert!(index.delete(victim));
            assert!(!index.delete(victim), "double delete must be rejected");
            assert!(!index.contains(victim));
        }
        index.tree().check_invariants();
        assert_eq!(index.len(), live.len());

        if op % 10 == 0 {
            // Every reported neighbor must be live, with a correct
            // original-space distance.
            rng.fill_normal(&mut buf);
            let res = index.query(&buf, 5);
            let live_set: HashSet<u32> = live.iter().copied().collect();
            for n in &res.neighbors {
                assert!(live_set.contains(&n.id), "deleted id {} returned", n.id);
                let expect = euclidean(&buf, &model[&n.id]);
                assert_eq!(n.dist, expect, "stale distance for id {}", n.id);
            }
        }
    }

    // Final cross-check: live id sets agree exactly.
    let mut got: Vec<u32> = index.live_ids().to_vec();
    got.sort_unstable();
    live.sort_unstable();
    assert_eq!(got, live);
}

/// The amortized batch path in lock-step: random batches of 1..=12 ops
/// (inserts, deletes, and occasional repeated deletes that must fail
/// `UnknownId` mid-batch) go through `apply` on one index while a twin
/// replays them one `insert`/`delete` at a time. After every batch the
/// two indexes must agree on structure, live ids, and bit-identical
/// query answers — batching changes cost, never state.
#[test]
fn apply_batches_stay_in_lock_step_with_single_op_mutations() {
    let d = 10;
    let data = blob(300, d, 341);
    let mut rng = Rng::new(342);
    let mut batched = PmLsh::build(data.clone(), PmLshParams::default());
    let mut twin = PmLsh::build(data, PmLshParams::default());
    let mut live: Vec<u32> = (0..300).collect();
    let mut buf = vec![0.0f32; d];

    for round in 0..25 {
        let width = 1 + rng.below(12);
        let mut ops: Vec<MutOp> = Vec::with_capacity(width);
        for _ in 0..width {
            // Deletes draw from the live set as of the batch's *start*,
            // so a batch can delete the same id twice — the second
            // attempt must fail UnknownId on both paths.
            if rng.bernoulli(0.55) || live.len() < 40 {
                rng.fill_normal(&mut buf);
                ops.push(MutOp::Insert(buf.clone()));
            } else {
                ops.push(MutOp::Delete(live[rng.below(live.len())]));
            }
        }

        let results = batched.apply(&ops);
        for (i, op) in ops.iter().enumerate() {
            match op {
                MutOp::Insert(p) => {
                    let id = twin.insert(p);
                    assert_eq!(
                        results[i],
                        Ok(id),
                        "round {round} op {i}: batched insert id diverged"
                    );
                    live.push(id);
                }
                MutOp::Delete(id) => match &results[i] {
                    Ok(got) => {
                        assert_eq!(got, id);
                        assert!(twin.delete(*id), "round {round} op {i}: twin refused");
                        live.retain(|x| x != id);
                    }
                    Err(MutReject::UnknownId(g)) => {
                        assert_eq!(g, id);
                        assert!(
                            !twin.delete(*id),
                            "round {round} op {i}: twin deleted what the batch refused"
                        );
                    }
                    other => panic!("round {round} op {i}: unexpected outcome {other:?}"),
                },
            }
        }

        batched.tree().check_invariants();
        assert_eq!(batched.len(), twin.len(), "round {round}: live counts");
        assert_eq!(
            batched.live_ids(),
            twin.live_ids(),
            "round {round}: live-id sequences diverged"
        );
        rng.fill_normal(&mut buf);
        let a = batched.query(&buf, 10);
        let b = twin.query(&buf, 10);
        assert_eq!(a.neighbors, b.neighbors, "round {round}: answers diverged");
        assert_eq!(a.stats, b.stats, "round {round}: counters diverged");
    }
}

#[test]
fn delete_all_then_reinsert_recovers_query_quality() {
    let d = 8;
    let data = blob(300, d, 311);
    let mut index = PmLsh::build(data.clone(), PmLshParams::default());
    for id in 0..300 {
        assert!(index.delete(id));
    }
    assert!(index.is_empty());
    index.tree().check_invariants();
    // Queries on a fully drained index answer with nothing, not a panic.
    assert!(index.query(&vec![0.1; d], 3).neighbors.is_empty());

    // Reinsert the original vectors; they get fresh ids but identical
    // geometry, so exact self-queries must come back at distance 0.
    let mut new_ids = Vec::new();
    for p in data.iter() {
        new_ids.push(index.insert(p));
    }
    index.tree().check_invariants();
    assert_eq!(index.len(), 300);
    for (row, &id) in new_ids.iter().enumerate().step_by(29) {
        let res = index.query(data.point(row), 1);
        assert_eq!(res.neighbors[0].dist, 0.0);
        assert_eq!(res.neighbors[0].id, id);
    }
}

#[test]
fn mutated_index_tracks_exact_knn_of_live_points() {
    // Recall of the mutated index against the exact answer over live
    // points: churn must not change what "the right answer" means.
    let d = 16;
    let data = blob(600, d, 321);
    let queries = blob(20, d, 322);
    let mut rng = Rng::new(323);
    let mut index = PmLsh::build(data, PmLshParams::paper_defaults());
    // Churn: delete 150 random points, insert 150 fresh ones.
    let mut buf = vec![0.0f32; d];
    for _ in 0..150 {
        let live = index.live_ids().to_vec();
        assert!(index.delete(live[rng.below(live.len())]));
        rng.fill_normal(&mut buf);
        index.insert(&buf);
    }
    index.tree().check_invariants();
    assert_eq!(index.len(), 600);

    let mut recall_sum = 0.0;
    for q in queries.iter() {
        let truth: HashSet<u32> = exact_live_knn(&index, q, 10).iter().map(|n| n.id).collect();
        let got = index.query(q, 10);
        recall_sum += got
            .neighbors
            .iter()
            .filter(|n| truth.contains(&n.id))
            .count() as f64
            / 10.0;
    }
    let recall = recall_sum / queries.len() as f64;
    assert!(
        recall >= 0.8,
        "post-churn recall {recall:.3} collapsed (paper operating point)"
    );
}

#[test]
#[should_panic(expected = "wrong dimensionality")]
fn insert_rejects_wrong_dimensionality() {
    let mut index = PmLsh::build(blob(50, 6, 331), PmLshParams::default());
    index.insert(&[1.0, 2.0]);
}

#[test]
#[should_panic(expected = "non-finite")]
fn insert_rejects_non_finite_components() {
    let mut index = PmLsh::build(blob(50, 4, 332), PmLshParams::default());
    index.insert(&[1.0, f32::NAN, 0.0, 0.0]);
}
