//! Statistical quality tests for PM-LSH: Theorem 1's c²-guarantee, recall on
//! seeded data, and Theorem 2's sublinear probing behaviour.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_metric::{euclidean, Dataset, TopK};
use pm_lsh_stats::Rng;

fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let centers: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..d).map(|_| rng.normal_f32() * 8.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for i in 0..n {
        let c = &centers[i % centers.len()];
        for (b, &cv) in buf.iter_mut().zip(c) {
            *b = cv + rng.normal_f32();
        }
        ds.push(&buf);
    }
    ds
}

fn exact_knn(ds: &Dataset, q: &[f32], k: usize) -> Vec<pm_lsh_metric::Neighbor> {
    let mut top = TopK::new(k);
    for (i, p) in ds.iter().enumerate() {
        top.push(euclidean(q, p), i as u32);
    }
    top.into_sorted_vec()
}

#[test]
fn c2_guarantee_holds_with_margin() {
    // Theorem 1: a c-run returns a c²-ANN with probability >= 1/2 - 1/e.
    // Empirically PM-LSH does far better; require >= 80% success over 60
    // queries (the guarantee floor is ~13%).
    let n = 4000;
    let d = 32;
    let data = clustered(n, d, 100);
    let queries = clustered(60, d, 101);
    let params = PmLshParams::default(); // faithful Eq. 10, c = 1.5
    let c2 = params.c * params.c;
    let index = PmLsh::build(data, params);

    let mut success = 0;
    for q in queries.iter() {
        let truth = exact_knn(index.data(), q, 1);
        let res = index.query(q, 1);
        let got = res.neighbors[0].dist as f64;
        if got <= c2 * truth[0].dist as f64 + 1e-6 {
            success += 1;
        }
    }
    assert!(success >= 48, "c² guarantee met only {success}/60 times");
}

#[test]
fn high_recall_with_paper_beta() {
    // With the paper's β = 0.2809 operating point, recall@10 on an easy
    // clustered dataset should be high (Table 4 reports 0.88–0.99). As in
    // the paper, queries are drawn from the data distribution: hold out the
    // last rows of one generated set instead of sampling fresh clusters.
    let n = 3000;
    let d = 48;
    let all = clustered(n + 25, d, 200);
    let ids: Vec<u32> = (0..n as u32).collect();
    let data = all.gather(&ids);
    let qids: Vec<u32> = (n as u32..(n + 25) as u32).collect();
    let queries = all.gather(&qids);
    let index = PmLsh::build(data, PmLshParams::paper_defaults());

    let mut recall_sum = 0.0;
    for q in queries.iter() {
        let truth = exact_knn(index.data(), q, 10);
        let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|n| n.id).collect();
        let res = index.query(q, 10);
        let hits = res
            .neighbors
            .iter()
            .filter(|n| truth_ids.contains(&n.id))
            .count();
        recall_sum += hits as f64 / 10.0;
    }
    let recall = recall_sum / queries.len() as f64;
    assert!(recall >= 0.8, "recall {recall}");
}

#[test]
fn candidate_budget_respected() {
    // Theorem 2: the verification cost is O(βn), so candidates verified must
    // never exceed βn + k.
    let n = 2000;
    let data = clustered(n, 24, 300);
    let queries = clustered(10, 24, 301);
    let params = PmLshParams::paper_defaults();
    let beta = params.derive().beta;
    let index = PmLsh::build(data, params);
    for q in queries.iter() {
        let k = 5;
        let res = index.query(q, k);
        let budget = (beta * n as f64).ceil() as usize + k;
        assert!(
            res.stats.candidates_verified <= budget,
            "verified {} > budget {budget}",
            res.stats.candidates_verified
        );
        assert!(res.stats.rounds >= 1);
    }
}

#[test]
fn probing_is_sublinear_in_n() {
    // Doubling n should far less than double the projected-space distance
    // computations per query when the radius is selective (O(log n + βn)
    // with small β — the βn verification term dominates, so normalize by n).
    let d = 16;
    let params = PmLshParams::default();
    let mut per_n = Vec::new();
    for (seed, n) in [(400u64, 2000usize), (401, 8000)] {
        let data = clustered(n, d, seed);
        let queries = clustered(8, d, seed + 50);
        let index = PmLsh::build(data, params);
        let mut comps = 0u64;
        for q in queries.iter() {
            comps += index.query(q, 10).stats.projected_dist_computations;
        }
        per_n.push(comps as f64 / (8.0 * n as f64));
    }
    // fraction of the tree touched should not grow with n
    assert!(
        per_n[1] <= per_n[0] * 1.3,
        "probe fraction grew: n=2000 -> {:.3}, n=8000 -> {:.3}",
        per_n[0],
        per_n[1]
    );
}

#[test]
fn query_with_c_trades_time_for_quality() {
    // Larger c ⇒ smaller candidate budget ⇒ fewer verifications (Fig. 10's
    // time axis); smaller c ⇒ better expected ratio.
    let data = clustered(3000, 32, 500);
    let queries = clustered(15, 32, 501);
    let index = PmLsh::build(data, PmLshParams::default());

    let mut verified_tight = 0usize;
    let mut verified_loose = 0usize;
    for q in queries.iter() {
        verified_tight += index.query_with_c(q, 10, 1.2).stats.candidates_verified;
        verified_loose += index.query_with_c(q, 10, 2.0).stats.candidates_verified;
    }
    assert!(
        verified_loose < verified_tight,
        "loose c verified {verified_loose} >= tight {verified_tight}"
    );
}

#[test]
fn bc_query_statistical_contract() {
    // (r, c)-BC: when it answers, the point is within c·r with at least
    // constant probability (Lemma 5). Count violations over many queries.
    let data = clustered(2000, 16, 600);
    let queries = clustered(40, 16, 601);
    let params = PmLshParams::default();
    let c = params.c;
    let index = PmLsh::build(data, params);

    let mut answered = 0usize;
    let mut violations = 0usize;
    for q in queries.iter() {
        let r_star = exact_knn(index.data(), q, 1)[0].dist as f64;
        let r = r_star * 1.1; // ball is non-empty
        if let Some(hit) = index.query_bc(q, r) {
            answered += 1;
            if hit.dist as f64 > c * r + 1e-6 {
                violations += 1;
            }
        }
    }
    assert!(
        answered >= 20,
        "BC query answered only {answered}/40 non-empty balls"
    );
    // E1 ∧ E2 holds w.p. >= 1/2 - 1/e; in practice violations are rare.
    assert!(
        violations * 5 <= answered,
        "{violations}/{answered} violations"
    );
}
