//! The paper's running example (Figs. 1 and 4, Examples 1–4) executed
//! end-to-end on the real implementation.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_hash::GaussianProjector;
use pm_lsh_metric::Dataset;
use pm_lsh_pmtree::PmTreeConfig;
use pm_lsh_stats::Rng;

/// The 15 points of Fig. 1(a)/(c), ids o1..o15 mapping to 0..14.
fn example_points() -> Dataset {
    Dataset::from_rows(vec![
        vec![0.0, 1.0],  // o1
        vec![6.0, 6.0],  // o2
        vec![9.0, 2.0],  // o3
        vec![10.0, 5.0], // o4
        vec![2.0, 6.0],  // o5
        vec![4.0, 3.0],  // o6
        vec![6.0, 3.0],  // o7
        vec![10.0, 6.0], // o8
        vec![2.0, 3.0],  // o9
        vec![9.0, 8.0],  // o10
        vec![6.0, 10.0], // o11
        vec![4.0, 7.0],  // o12
        vec![3.0, 4.0],  // o13
        vec![4.0, 6.0],  // o14
        vec![7.0, 2.0],  // o15
    ])
}

const Q: [f32; 2] = [5.0, 5.0];

#[test]
fn example_1_exact_nns() {
    // "query q has o2 and o14 with distance √2 as its exact NNs"
    let ds = example_points();
    let mut dists: Vec<(f32, usize)> = ds
        .iter()
        .enumerate()
        .map(|(i, p)| (pm_lsh_metric::euclidean(&Q, p), i))
        .collect();
    dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let sqrt2 = 2.0f32.sqrt();
    assert!((dists[0].0 - sqrt2).abs() < 1e-6);
    assert!((dists[1].0 - sqrt2).abs() < 1e-6);
    let top2: std::collections::BTreeSet<usize> = [dists[0].1, dists[1].1].into();
    assert_eq!(top2, [1usize, 13].into()); // o2 and o14

    // "any object in {o2, o14, o12, o13, o6, o7}" is a valid 2-ANN result
    let bound = 2.0 * sqrt2;
    let valid: std::collections::BTreeSet<usize> = dists
        .iter()
        .filter(|&&(d, _)| d <= bound + 1e-6)
        .map(|&(_, i)| i)
        .collect();
    assert_eq!(valid, [1usize, 13, 11, 12, 5, 6].into());
}

#[test]
fn end_to_end_ann_on_running_example() {
    // Build PM-LSH with the paper's fixed projections a1 = [1, 0.9],
    // a2 = [0.2, 1.7] and answer the (c, 1)-ANN query of Example 4.
    let ds = example_points();
    let projector = GaussianProjector::from_rows(vec![vec![1.0, 0.9], vec![0.2, 1.7]]);
    let params = PmLshParams {
        m: 2,
        c: 2.0,
        // tiny dataset: keep every candidate budget meaningful
        tree: PmTreeConfig {
            capacity: 4,
            num_pivots: 2,
            pivot_sample: 16,
        },
        distance_samples: 512,
        ..Default::default()
    };
    let mut rng = Rng::new(1);
    let index = PmLsh::build_with_projector(ds, projector, params, &mut rng);

    let res = index.query(&Q, 1);
    assert_eq!(res.neighbors.len(), 1);
    // c = 2 ⇒ guarantee c² = 4: any point within 4√2 ≈ 5.66 qualifies, but
    // with only 15 points the algorithm's candidate budget covers the true
    // NNs — it must find one of o2/o14 (both at √2).
    let id = res.neighbors[0].id;
    assert!(id == 1 || id == 13, "expected o2 or o14, got o{}", id + 1);
    assert!((res.neighbors[0].dist - 2.0f32.sqrt()).abs() < 1e-6);
}

#[test]
fn example_4_radius_enlargement_retrieves_neighbors() {
    // Example 4 walks a (2,1)-ANN query that needs β·n = 4 ⇒ 5 points.
    // Exercise the same flow: a k = 5 query must return the 5 closest.
    let ds = example_points();
    let projector = GaussianProjector::from_rows(vec![vec![1.0, 0.9], vec![0.2, 1.7]]);
    let params = PmLshParams {
        m: 2,
        c: 2.0,
        beta_override: Some(0.3), // β·n ≈ 4.5, mirroring the example's βn = 4
        tree: PmTreeConfig {
            capacity: 4,
            num_pivots: 2,
            pivot_sample: 16,
        },
        distance_samples: 512,
        ..Default::default()
    };
    let mut rng = Rng::new(2);
    let index = PmLsh::build_with_projector(ds, projector, params, &mut rng);
    let res = index.query(&Q, 5);
    assert_eq!(res.neighbors.len(), 5);
    // Verified candidates stay within the budget βn + k.
    assert!(res.stats.candidates_verified <= (0.3f64 * 15.0).ceil() as usize + 5);
    // The top answer is one of the true NNs (o2/o14); with m = 2 fixed
    // projections the projected order is deterministic.
    let id = res.neighbors[0].id;
    assert!(id == 1 || id == 13, "got o{}", id + 1);
}

#[test]
fn bc_query_example_2_semantics() {
    // Example 2 answers a (1, 2)-BC query: o14/o2 at distance √2 > r = 1
    // means B(q, 1) is empty, so returning nothing is legal; returning any
    // point within c·r = 2 is also legal. With r = 1.5 > √2 the ball is
    // non-empty and the query MUST return a point within c·r = 3.
    let ds = example_points();
    let projector = GaussianProjector::from_rows(vec![vec![1.0, 0.9], vec![0.2, 1.7]]);
    let params = PmLshParams {
        m: 2,
        c: 2.0,
        tree: PmTreeConfig {
            capacity: 4,
            num_pivots: 2,
            pivot_sample: 16,
        },
        distance_samples: 512,
        ..Default::default()
    };
    let mut rng = Rng::new(3);
    let index = PmLsh::build_with_projector(ds, projector, params, &mut rng);

    if let Some(hit) = index.query_bc(&Q, 1.0) {
        assert!(
            hit.dist <= 2.0,
            "(1,2)-BC must only return points within c·r"
        );
    }
    let hit = index
        .query_bc(&Q, 1.5)
        .expect("ball contains o2/o14, must answer");
    assert!(hit.dist <= 3.0);
}
