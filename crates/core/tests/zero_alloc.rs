//! Counting-allocator proof of the hot path's zero-steady-state-allocation
//! claim: after warm-up, repeated queries through a reused [`QueryContext`]
//! never touch the global allocator.
//!
//! This file holds exactly one `#[test]` on purpose — the counter is
//! process-global, and a sibling test allocating on another libtest thread
//! would show up as a false positive.

use pm_lsh_core::{PmLsh, PmLshParams, QueryContext};
use pm_lsh_metric::{Dataset, Neighbor};
use pm_lsh_stats::Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to [`System`], counting every allocation and reallocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to [`System`] — every contract (layout
// validity, pointer provenance) is forwarded unchanged; the counter is an
// atomic and allocation-free.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; delegated to System.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller upholds GlobalAlloc's contract; delegated to System.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller upholds GlobalAlloc's contract; delegated to System.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller upholds GlobalAlloc's contract; delegated to System.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_queries_do_not_allocate() {
    const DIM: usize = 48;
    const N: usize = 1500;
    const K: usize = 10;

    let mut rng = Rng::new(404);
    let mut ds = Dataset::with_capacity(DIM, N);
    let mut buf = [0.0f32; DIM];
    for _ in 0..N {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    let mut queries: Vec<[f32; DIM]> = Vec::new();
    for _ in 0..8 {
        rng.fill_normal(&mut buf);
        queries.push(buf);
    }
    let index = PmLsh::build(ds, PmLshParams::default());
    let c = index.params().c;

    let mut ctx = QueryContext::new();
    let mut out: Vec<Neighbor> = Vec::new();

    // Warm-up: every buffer (projection, traversal frontier, top-k heap,
    // output vector) grows to its high-water mark for this exact workload,
    // and the r_min memo slot for K is populated.
    let mut warm = Vec::new();
    for q in &queries {
        index.query_into(q, K, c, &mut ctx, &mut out);
        warm.push(out.clone());
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..25 {
        for q in &queries {
            index.query_into(q, K, c, &mut ctx, &mut out);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state query_into calls must not allocate"
    );

    // The silent part of the contract: the allocation-free queries still
    // answered correctly (same result as the warm-up pass).
    index.query_into(queries.last().unwrap(), K, c, &mut ctx, &mut out);
    assert_eq!(&out, warm.last().unwrap());

    // query_bc_with_context shares the same buffers; it must be
    // allocation-free at steady state too.
    let r = index.select_rmin(K);
    let warm_bc = index.query_bc_with_context(&queries[0], r, &mut ctx);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..25 {
        let got = index.query_bc_with_context(&queries[0], r, &mut ctx);
        assert_eq!(got, warm_bc);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state query_bc_with_context calls must not allocate"
    );
}
