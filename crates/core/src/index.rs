//! The PM-LSH index: build, (r,c)-BC queries (Algorithm 1) and (c,k)-ANN
//! queries (Algorithm 2).

use crate::build::BuildOptions;
use crate::params::{DerivedParams, PmLshParams};
use pm_lsh_hash::GaussianProjector;
use pm_lsh_metric::{euclidean, Dataset, Neighbor, TopK};
use pm_lsh_pmtree::PmTree;
use pm_lsh_stats::{distance_distribution, Ecdf, Rng};
use std::sync::Arc;

/// Per-query execution counters, used by the benchmark harness and by the
/// Theorem 2 cost tests (`O(log n + βn)` behaviour).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates whose original-space distance was verified.
    pub candidates_verified: usize,
    /// Distance computations inside the projected space (PM-tree traversal).
    pub projected_dist_computations: u64,
    /// Radius-enlargement rounds executed (1 means `r_min` sufficed).
    pub rounds: u32,
}

impl QueryStats {
    /// Accumulates another query's counters into this one (saturating, so
    /// long-running aggregations cannot wrap).
    pub fn merge(&mut self, other: &QueryStats) {
        self.candidates_verified = self
            .candidates_verified
            .saturating_add(other.candidates_verified);
        self.projected_dist_computations = self
            .projected_dist_computations
            .saturating_add(other.projected_dist_computations);
        self.rounds = self.rounds.saturating_add(other.rounds);
    }
}

impl std::ops::AddAssign<&QueryStats> for QueryStats {
    fn add_assign(&mut self, rhs: &QueryStats) {
        self.merge(rhs);
    }
}

impl std::ops::AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for QueryStats {
    fn sum<I: Iterator<Item = QueryStats>>(iter: I) -> Self {
        iter.fold(QueryStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

impl<'a> std::iter::Sum<&'a QueryStats> for QueryStats {
    fn sum<I: Iterator<Item = &'a QueryStats>>(iter: I) -> Self {
        iter.fold(QueryStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

/// Result of a `(c, k)`-ANN query: neighbors sorted by ascending original
/// distance plus the execution counters.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Up to `k` approximate nearest neighbors.
    pub neighbors: Vec<Neighbor>,
    /// Execution counters.
    pub stats: QueryStats,
}

/// The PM-LSH index over a dataset in `R^d`.
///
/// Building projects every point through `m` Gaussian hash functions
/// (Eq. 3), indexes the projections in a [`PmTree`], and samples the
/// distance distribution `F` used to choose the start radius `r_min`
/// (Section 4.5).
///
/// ```
/// use pm_lsh_core::{PmLsh, PmLshParams};
/// use pm_lsh_metric::Dataset;
/// use pm_lsh_stats::Rng;
///
/// let mut rng = Rng::new(7);
/// let mut ds = Dataset::with_capacity(32, 500);
/// let mut buf = [0.0f32; 32];
/// for _ in 0..500 {
///     rng.fill_normal(&mut buf);
///     ds.push(&buf);
/// }
/// let query = ds.point(0).to_vec();
/// let index = PmLsh::build(ds, PmLshParams::default());
/// let res = index.query(&query, 3);
/// assert_eq!(res.neighbors[0].id, 0); // the point itself
/// ```
#[derive(Clone, Debug)]
pub struct PmLsh {
    data: Arc<Dataset>,
    projector: GaussianProjector,
    tree: PmTree,
    params: PmLshParams,
    derived: DerivedParams,
    dist_f: Ecdf,
}

impl PmLsh {
    /// Builds the index. Accepts an owned [`Dataset`] or an `Arc<Dataset>`
    /// shared with other indexes (the benchmark harness compares six
    /// algorithms over one in-memory copy).
    pub fn build(data: impl Into<Arc<Dataset>>, params: PmLshParams) -> Self {
        let data = data.into();
        let mut rng = Rng::new(params.seed);
        let projector = GaussianProjector::new(data.dim(), params.m as usize, &mut rng);
        Self::build_with_projector(data, projector, params, &mut rng)
    }

    /// Builds the index in parallel. `opts.threads` workers split the
    /// Gaussian projection by row chunk and the PM-tree bulk-load by pivot
    /// region; the result is identical for every thread count (see
    /// [`BuildOptions`]), so `opts` trades wall-clock time only.
    ///
    /// ```
    /// use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
    /// use pm_lsh_metric::Dataset;
    /// use pm_lsh_stats::Rng;
    ///
    /// let mut rng = Rng::new(3);
    /// let mut ds = Dataset::with_capacity(16, 600);
    /// let mut buf = [0.0f32; 16];
    /// for _ in 0..600 {
    ///     rng.fill_normal(&mut buf);
    ///     ds.push(&buf);
    /// }
    /// let a = PmLsh::build_with_opts(ds.clone(), PmLshParams::default(), BuildOptions::with_threads(1));
    /// let b = PmLsh::build_with_opts(ds.clone(), PmLshParams::default(), BuildOptions::with_threads(4));
    /// let q = ds.point(5);
    /// assert_eq!(a.query(q, 5).neighbors, b.query(q, 5).neighbors);
    /// ```
    pub fn build_with_opts(
        data: impl Into<Arc<Dataset>>,
        params: PmLshParams,
        opts: BuildOptions,
    ) -> Self {
        let data = data.into();
        let mut rng = Rng::new(params.seed);
        let projector = GaussianProjector::new(data.dim(), params.m as usize, &mut rng);
        Self::build_inner(data, projector, params, &mut rng, Some(opts))
    }

    /// Builds with a caller-supplied projector (used by ablations that share
    /// one projection across algorithms, and by the running-example tests).
    pub fn build_with_projector(
        data: impl Into<Arc<Dataset>>,
        projector: GaussianProjector,
        params: PmLshParams,
        rng: &mut Rng,
    ) -> Self {
        Self::build_inner(data, projector, params, rng, None)
    }

    /// Shared build pipeline. `opts: None` keeps the incremental (insert
    /// one point at a time) PM-tree construction that `build` has always
    /// used; `Some(opts)` routes through the parallel bulk loader, whose
    /// output is invariant in the thread count but differs in tree shape
    /// from the incremental path.
    fn build_inner(
        data: impl Into<Arc<Dataset>>,
        projector: GaussianProjector,
        params: PmLshParams,
        rng: &mut Rng,
        opts: Option<BuildOptions>,
    ) -> Self {
        let data = data.into();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert_eq!(
            projector.input_dim(),
            data.dim(),
            "projector dimensionality mismatch"
        );
        assert_eq!(
            projector.output_dim(),
            params.m as usize,
            "projector m mismatch"
        );
        let derived = params.derive();
        let threads = opts.map(|o| o.effective_threads()).unwrap_or(1);
        let projected = projector.project_all_threaded(data.view(), threads);
        let tree = match opts {
            Some(_) => PmTree::build_parallel(projected.view(), params.tree, rng, threads),
            None => PmTree::build(projected.view(), params.tree, rng),
        };
        let dist_f = if data.len() >= 2 {
            let pairs = params
                .distance_samples
                .min(data.len() * (data.len() - 1) / 2)
                .max(1);
            distance_distribution(data.view(), pairs, rng)
        } else {
            // Degenerate single-point dataset: any start radius works, the
            // radius enlargement of Algorithm 2 takes over immediately.
            Ecdf::new(vec![1.0])
        };
        Self {
            data,
            projector,
            tree,
            params,
            derived,
            dist_f,
        }
    }

    /// The indexed dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the index is empty (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The effective parameters.
    pub fn params(&self) -> &PmLshParams {
        &self.params
    }

    /// The Eq. 10 derivation in effect.
    pub fn derived(&self) -> DerivedParams {
        self.derived
    }

    /// The underlying PM-tree (exposed for cost-model experiments).
    pub fn tree(&self) -> &PmTree {
        &self.tree
    }

    /// The sampled original-space distance distribution `F`.
    pub fn distance_distribution(&self) -> &Ecdf {
        &self.dist_f
    }

    /// The start radius of Algorithm 2 for a given `k`: the paper picks `r`
    /// with `n·F(r) = βn + k`, then shrinks it slightly.
    pub fn select_rmin(&self, k: usize) -> f64 {
        let n = self.data.len() as f64;
        let target = (self.derived.beta + k as f64 / n).min(1.0);
        let r = self.dist_f.quantile(target);
        let r = if r > 0.0 {
            r
        } else {
            self.dist_f.quantile(1.0).max(1e-6)
        };
        r * self.params.rmin_shrink
    }

    /// Algorithm 2: the `(c, k)`-ANN query with the build-time `c`.
    pub fn query(&self, q: &[f32], k: usize) -> QueryResult {
        self.query_with_c(q, k, self.params.c)
    }

    /// Algorithm 2 with an explicit approximation ratio (the Figs. 10–11
    /// time/quality trade-off sweeps vary `c` per query). The candidate
    /// budget `βn + k` is re-derived for the given `c` unless the index was
    /// built with a pinned `β`.
    pub fn query_with_c(&self, q: &[f32], k: usize, c: f64) -> QueryResult {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(k >= 1, "k must be positive");
        assert!(c > 1.0, "approximation ratio must exceed 1");
        let derived = if c == self.params.c {
            self.derived
        } else {
            // A pinned β (paper operating point) applies to the build-time c
            // only; sweeps over c re-derive the budget from Eq. 10.
            PmLshParams {
                c,
                beta_override: None,
                ..self.params
            }
            .derive()
        };

        let n = self.data.len();
        let budget = ((derived.beta * n as f64).ceil() as usize + k).min(n);
        let qp = self.projector.project(q);
        let mut cursor = self.tree.cursor(&qp);

        let mut top = TopK::new(k);
        let mut verified = 0usize;
        let mut rounds = 0u32;
        let mut r = self.select_rmin(k);

        loop {
            rounds += 1;
            // Termination test of Algorithm 2 line 4: k candidates already
            // within c·r of the query.
            if top.is_full() && (top.kth_dist() as f64) <= c * r {
                break;
            }
            // Pull candidates from the incremental range query B(q', t·r).
            let proj_radius = (derived.t * r) as f32;
            while verified < budget {
                match cursor.next_within(proj_radius) {
                    Some((id, _proj_dist)) => {
                        let d = euclidean(q, self.data.point_id(id));
                        top.push(d, id);
                        verified += 1;
                    }
                    None => break,
                }
            }
            // Termination test of line 9: candidate budget exhausted.
            if verified >= budget {
                break;
            }
            // The whole tree was consumed below the current radius.
            if cursor.is_exhausted() {
                break;
            }
            r *= c;
        }

        QueryResult {
            neighbors: top.into_sorted_vec(),
            stats: QueryStats {
                candidates_verified: verified,
                projected_dist_computations: cursor.distance_computations(),
                rounds,
            },
        }
    }

    /// Algorithm 1: the `(r, c)`-ball-cover query. Returns a point within
    /// `c·r` of `q` (the closest verified candidate) or `None`, with the
    /// guarantees of Lemma 5.
    pub fn query_bc(&self, q: &[f32], r: f64) -> Option<Neighbor> {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(r > 0.0, "radius must be positive");
        let n = self.data.len();
        let beta_n = (self.derived.beta * n as f64).ceil() as usize;
        let qp = self.projector.project(q);
        let mut cursor = self.tree.cursor(&qp);
        let proj_radius = (self.derived.t * r) as f32;

        let mut best: Option<Neighbor> = None;
        let mut count = 0usize;
        while let Some((id, _)) = cursor.next_within(proj_radius) {
            let d = euclidean(q, self.data.point_id(id));
            if best.is_none_or(|b| Neighbor::new(d, id) < b) {
                best = Some(Neighbor::new(d, id));
            }
            count += 1;
            if count > beta_n {
                // Line 3–4: enough candidates guarantee one inside B(q, cr).
                return best;
            }
        }
        // Line 6–9: fewer than βn+1 candidates — only answer when a
        // verified point is inside B(q, cr).
        match best {
            Some(b) if (b.dist as f64) <= self.params.c * r => Some(b),
            _ => None,
        }
    }

    /// Projects an arbitrary point with this index's hash functions.
    pub fn project(&self, point: &[f32]) -> Vec<f32> {
        self.projector.project(point)
    }

    /// Answers a batch of queries in parallel over `threads` OS threads
    /// (0 = available parallelism). The index is immutable after build, so
    /// queries share it without synchronization; results keep query order.
    ///
    /// The threads are spawned per call, which suits one-shot workloads
    /// with no extra dependencies. For sustained serving — a persistent
    /// pool, request coalescing and latency statistics — use
    /// `pm_lsh_engine::Engine::query_batch`, which returns bit-identical
    /// results.
    pub fn query_batch(
        &self,
        queries: pm_lsh_metric::MatrixView<'_>,
        k: usize,
        threads: usize,
    ) -> Vec<QueryResult> {
        assert_eq!(
            queries.dim(),
            self.data.dim(),
            "queries have wrong dimensionality"
        );
        let nq = queries.len();
        if nq == 0 {
            return Vec::new();
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(nq);
        let mut results: Vec<Option<QueryResult>> = (0..nq).map(|_| None).collect();
        let chunk = nq.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in results.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    for (j, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = Some(self.query(queries.point(start + j), k));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("all query slots filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PmLshParams;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn query_stats_merge_and_sum_agree() {
        let a = QueryStats {
            candidates_verified: 3,
            projected_dist_computations: 10,
            rounds: 1,
        };
        let b = QueryStats {
            candidates_verified: 4,
            projected_dist_computations: 22,
            rounds: 2,
        };
        let mut m = a;
        m += b;
        assert_eq!(
            m,
            QueryStats {
                candidates_verified: 7,
                projected_dist_computations: 32,
                rounds: 3
            }
        );
        assert_eq!([a, b].iter().sum::<QueryStats>(), m);
        let mut saturate = QueryStats {
            rounds: u32::MAX,
            ..a
        };
        saturate += &b;
        assert_eq!(saturate.rounds, u32::MAX, "rounds must saturate, not wrap");
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        let data = blob(1200, 12, 71);
        let queries = blob(20, 12, 72);
        let params = PmLshParams::default();
        let base = PmLsh::build_with_opts(data.clone(), params, crate::BuildOptions::default());
        for threads in [0usize, 2, 4, 8] {
            let other = PmLsh::build_with_opts(
                data.clone(),
                params,
                crate::BuildOptions::with_threads(threads),
            );
            for q in queries.iter() {
                let a = base.query(q, 7);
                let b = other.query(q, 7);
                assert_eq!(a.neighbors, b.neighbors, "{threads}-thread build diverged");
                assert_eq!(a.stats, b.stats, "{threads}-thread traversal diverged");
            }
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let data = blob(800, 16, 61);
        let queries = blob(13, 16, 62);
        let index = PmLsh::build(data, PmLshParams::default());
        let batch = index.query_batch(queries.view(), 5, 4);
        assert_eq!(batch.len(), 13);
        for (qi, q) in queries.iter().enumerate() {
            let single = index.query(q, 5);
            assert_eq!(batch[qi].neighbors, single.neighbors);
            assert_eq!(batch[qi].stats, single.stats);
        }
    }

    #[test]
    fn batch_with_more_threads_than_queries() {
        let data = blob(300, 8, 63);
        let queries = blob(2, 8, 64);
        let index = PmLsh::build(data, PmLshParams::default());
        let batch = index.query_batch(queries.view(), 3, 16);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn empty_batch() {
        let data = blob(100, 4, 65);
        let queries = Dataset::with_capacity(4, 0);
        let index = PmLsh::build(data, PmLshParams::default());
        assert!(index.query_batch(queries.view(), 3, 0).is_empty());
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let data = blob(20, 4, 66);
        let q = data.point(0).to_vec();
        let index = PmLsh::build(data, PmLshParams::default());
        let res = index.query(&q, 50);
        assert_eq!(res.neighbors.len(), 20, "k > n must return all points");
        assert_eq!(res.neighbors[0].id, 0);
    }

    #[test]
    fn singleton_dataset() {
        let data = Dataset::from_rows(vec![vec![1.0, 2.0, 3.0]]);
        let index = PmLsh::build(data, PmLshParams::default());
        let res = index.query(&[1.0, 2.0, 3.0], 1);
        assert_eq!(res.neighbors.len(), 1);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }

    #[test]
    fn duplicate_heavy_dataset() {
        let mut rows = vec![vec![5.0f32; 8]; 50];
        rows.extend(vec![vec![-5.0f32; 8]; 50]);
        let data = Dataset::from_rows(rows);
        let index = PmLsh::build(data, PmLshParams::default());
        let res = index.query(&[5.0f32; 8], 10);
        assert_eq!(res.neighbors.len(), 10);
        assert!(res.neighbors.iter().all(|n| n.dist == 0.0 && n.id < 50));
    }
}
