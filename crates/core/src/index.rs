//! lint: hot-path
//!
//! The PM-LSH index: build, (r,c)-BC queries (Algorithm 1) and (c,k)-ANN
//! queries (Algorithm 2).

use crate::build::BuildOptions;
use crate::context::QueryContext;
use crate::params::{DerivedParams, PmLshParams};
use pm_lsh_hash::GaussianProjector;
use pm_lsh_metric::{sq_dist_within, Dataset, Neighbor};
use pm_lsh_pmtree::PmTree;
use pm_lsh_stats::{distance_distribution, Ecdf, Rng};
use std::sync::{Arc, OnceLock};

/// Per-query execution counters, used by the benchmark harness and by the
/// Theorem 2 cost tests (`O(log n + βn)` behaviour).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates whose original-space distance was verified.
    pub candidates_verified: usize,
    /// Distance computations inside the projected space (PM-tree traversal).
    pub projected_dist_computations: u64,
    /// Radius-enlargement rounds executed (1 means `r_min` sufficed).
    pub rounds: u32,
}

impl QueryStats {
    /// Accumulates another query's counters into this one (saturating, so
    /// long-running aggregations cannot wrap).
    pub fn merge(&mut self, other: &QueryStats) {
        self.candidates_verified = self
            .candidates_verified
            .saturating_add(other.candidates_verified);
        self.projected_dist_computations = self
            .projected_dist_computations
            .saturating_add(other.projected_dist_computations);
        self.rounds = self.rounds.saturating_add(other.rounds);
    }
}

impl std::ops::AddAssign<&QueryStats> for QueryStats {
    fn add_assign(&mut self, rhs: &QueryStats) {
        self.merge(rhs);
    }
}

impl std::ops::AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for QueryStats {
    fn sum<I: Iterator<Item = QueryStats>>(iter: I) -> Self {
        iter.fold(QueryStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

impl<'a> std::iter::Sum<&'a QueryStats> for QueryStats {
    fn sum<I: Iterator<Item = &'a QueryStats>>(iter: I) -> Self {
        iter.fold(QueryStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

/// Result of a `(c, k)`-ANN query: neighbors sorted by ascending original
/// distance plus the execution counters.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Up to `k` approximate nearest neighbors.
    pub neighbors: Vec<Neighbor>,
    /// Execution counters.
    pub stats: QueryStats,
}

/// One mutation in a [`PmLsh::apply`] batch.
#[derive(Clone, Debug, PartialEq)]
pub enum MutOp {
    /// Append one point (exactly `dim()` finite components) under a fresh
    /// external id.
    Insert(Vec<f32>),
    /// Remove the live point carrying this external id.
    Delete(pm_lsh_metric::PointId),
}

/// Why one op of a [`PmLsh::apply`] batch was rejected. Rejections are
/// per-op: the rest of the batch still applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutReject {
    /// An insert's component count does not match the index
    /// dimensionality.
    WrongDim {
        /// The index dimensionality `d`.
        expected: usize,
        /// The offered component count.
        got: usize,
    },
    /// An insert carries a NaN or infinite component.
    NonFinite,
    /// A delete names an id no live point carries (never assigned, or
    /// already deleted — possibly earlier in the same batch).
    UnknownId(pm_lsh_metric::PointId),
    /// A delete would remove the last live point. A built index is
    /// non-empty by construction, and every serving layer keeps it that
    /// way; `apply` enforces the same floor so a batch can never drain
    /// the index (the single-op [`PmLsh::delete`] has no such guard).
    WouldEmpty,
}

/// Conservative squared-distance admission bound for a current best/k-th
/// neighbor distance `kth` (an `f32` Euclidean distance, or
/// `f32::INFINITY` while the collector is not full).
///
/// Verification compares *squared* distances against this bound, so it has
/// to over-admit rather than over-reject: every squared distance whose
/// rounded `sqrt` is `<= kth` must satisfy `sq <= abandon_bound(kth)`,
/// otherwise early abandonment could drop a candidate the exact
/// (pre-refactor) comparison would have kept. Squaring `kth` and stepping
/// up two ulps covers the worst-case rounding of both the square and the
/// candidate's own `sqrt` (relative error ≤ 2⁻²⁴ each, i.e. ≤ ~1.5 ulp of
/// `kth²` combined). Over-admitted borderline candidates are simply
/// computed in full and rejected by the heap — exactly what the reference
/// implementation does for *every* candidate — so the bound trades a
/// sliver of abandonment opportunity for bit-exact parity.
#[inline]
fn abandon_bound(kth: f32) -> f32 {
    if kth == f32::INFINITY {
        f32::INFINITY
    } else {
        (kth * kth).next_up().next_up()
    }
}

/// The PM-LSH index over a dataset in `R^d`.
///
/// Building projects every point through `m` Gaussian hash functions
/// (Eq. 3), indexes the projections in a [`PmTree`], and samples the
/// distance distribution `F` used to choose the start radius `r_min`
/// (Section 4.5).
///
/// After building, the index supports single-point maintenance:
/// [`PmLsh::insert`] projects a new point and grows the tree,
/// [`PmLsh::delete`] removes one for real (the M-tree family is
/// dynamic; the VLDBJ extension of the paper frames the PM-tree as an
/// updatable index). Mutations keep the dataset row store, the
/// projected points and the tree in lock-step; queries on a `&PmLsh`
/// remain pure reads.
///
/// ```
/// use pm_lsh_core::{PmLsh, PmLshParams};
/// use pm_lsh_metric::Dataset;
/// use pm_lsh_stats::Rng;
///
/// let mut rng = Rng::new(7);
/// let mut ds = Dataset::with_capacity(32, 500);
/// let mut buf = [0.0f32; 32];
/// for _ in 0..500 {
///     rng.fill_normal(&mut buf);
///     ds.push(&buf);
/// }
/// let query = ds.point(0).to_vec();
/// let index = PmLsh::build(ds, PmLshParams::default());
/// let res = index.query(&query, 3);
/// assert_eq!(res.neighbors[0].id, 0); // the point itself
/// ```
#[derive(Clone, Debug)]
pub struct PmLsh {
    data: Arc<Dataset>,
    projector: GaussianProjector,
    tree: PmTree,
    params: PmLshParams,
    derived: DerivedParams,
    dist_f: Ecdf,
    rmin_memo: RminMemo,
}

/// Memoized [`PmLsh::select_rmin`] values for small `k`.
///
/// Serving workloads issue millions of queries at one or two fixed `k`
/// values, and the `r_min` selection walks the build-time ECDF every time.
/// The answer depends only on `k` (and build-time state), so each small-`k`
/// slot is computed once and then read lock-free; larger `k` falls back to
/// the direct computation. A cloned index copies the already-memoized
/// values (same build-time state, same answers).
struct RminMemo {
    slots: [OnceLock<f64>; RminMemo::SLOTS],
}

impl RminMemo {
    /// Memoized range: `k < SLOTS` (covers every realistic serving `k`;
    /// the paper's experiments stop at k = 100).
    const SLOTS: usize = 128;

    fn new() -> Self {
        Self {
            slots: std::array::from_fn(|_| OnceLock::new()),
        }
    }
}

impl Clone for RminMemo {
    fn clone(&self) -> Self {
        Self {
            slots: self.slots.clone(),
        }
    }
}

impl std::fmt::Debug for RminMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self.slots.iter().filter(|s| s.get().is_some()).count();
        f.debug_struct("RminMemo").field("cached", &cached).finish()
    }
}

impl PmLsh {
    /// Builds the index. Accepts an owned [`Dataset`] or an `Arc<Dataset>`
    /// shared with other indexes (the benchmark harness compares six
    /// algorithms over one in-memory copy).
    pub fn build(data: impl Into<Arc<Dataset>>, params: PmLshParams) -> Self {
        let data = data.into();
        let mut rng = Rng::new(params.seed);
        let projector = GaussianProjector::new(data.dim(), params.m as usize, &mut rng);
        Self::build_with_projector(data, projector, params, &mut rng)
    }

    /// Builds the index in parallel. `opts.threads` workers split the
    /// Gaussian projection by row chunk and the PM-tree bulk-load by pivot
    /// region; the result is identical for every thread count (see
    /// [`BuildOptions`]), so `opts` trades wall-clock time only.
    ///
    /// ```
    /// use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
    /// use pm_lsh_metric::Dataset;
    /// use pm_lsh_stats::Rng;
    ///
    /// let mut rng = Rng::new(3);
    /// let mut ds = Dataset::with_capacity(16, 600);
    /// let mut buf = [0.0f32; 16];
    /// for _ in 0..600 {
    ///     rng.fill_normal(&mut buf);
    ///     ds.push(&buf);
    /// }
    /// let a = PmLsh::build_with_opts(ds.clone(), PmLshParams::default(), BuildOptions::with_threads(1));
    /// let b = PmLsh::build_with_opts(ds.clone(), PmLshParams::default(), BuildOptions::with_threads(4));
    /// let q = ds.point(5);
    /// assert_eq!(a.query(q, 5).neighbors, b.query(q, 5).neighbors);
    /// ```
    pub fn build_with_opts(
        data: impl Into<Arc<Dataset>>,
        params: PmLshParams,
        opts: BuildOptions,
    ) -> Self {
        let data = data.into();
        let mut rng = Rng::new(params.seed);
        let projector = GaussianProjector::new(data.dim(), params.m as usize, &mut rng);
        Self::build_inner(data, projector, params, &mut rng, Some(opts))
    }

    /// Builds with a caller-supplied projector (used by ablations that share
    /// one projection across algorithms, and by the running-example tests).
    pub fn build_with_projector(
        data: impl Into<Arc<Dataset>>,
        projector: GaussianProjector,
        params: PmLshParams,
        rng: &mut Rng,
    ) -> Self {
        Self::build_inner(data, projector, params, rng, None)
    }

    /// Shared build pipeline. `opts: None` keeps the incremental (insert
    /// one point at a time) PM-tree construction that `build` has always
    /// used; `Some(opts)` routes through the parallel bulk loader, whose
    /// output is invariant in the thread count but differs in tree shape
    /// from the incremental path.
    fn build_inner(
        data: impl Into<Arc<Dataset>>,
        projector: GaussianProjector,
        params: PmLshParams,
        rng: &mut Rng,
        opts: Option<BuildOptions>,
    ) -> Self {
        let data = data.into();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert_eq!(
            projector.input_dim(),
            data.dim(),
            "projector dimensionality mismatch"
        );
        assert_eq!(
            projector.output_dim(),
            params.m as usize,
            "projector m mismatch"
        );
        let derived = params.derive();
        let threads = opts.map(|o| o.effective_threads()).unwrap_or(1);
        let projected = projector.project_all_threaded(data.view(), threads);
        let tree = match opts {
            Some(_) => PmTree::build_parallel(projected.view(), params.tree, rng, threads),
            None => PmTree::build(projected.view(), params.tree, rng),
        };
        let dist_f = if data.len() >= 2 {
            let pairs = params
                .distance_samples
                .min(data.len() * (data.len() - 1) / 2)
                .max(1);
            distance_distribution(data.view(), pairs, rng)
        } else {
            // Degenerate single-point dataset: any start radius works, the
            // radius enlargement of Algorithm 2 takes over immediately.
            // lint: allow(hot-path) -- one-time build path, not a query
            Ecdf::new(vec![1.0])
        };
        Self {
            data,
            projector,
            tree,
            params,
            derived,
            dist_f,
            rmin_memo: RminMemo::new(),
        }
    }

    /// The point store. Row `id` holds the vector behind external id `id`.
    ///
    /// After deletions this keeps the dead rows too (external ids are
    /// stable row indexes, so the original-space store is append-only
    /// until a rebuild); enumerate *live* points through
    /// [`PmLsh::live_ids`], not by row-scanning.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Number of *live* indexed points (tracks [`PmLsh::insert`] and
    /// [`PmLsh::delete`]; equals `data().len()` until the first delete).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when every point has been deleted (a *built* index always
    /// starts non-empty).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The external ids of every live point, in the index's internal
    /// storage order.
    pub fn live_ids(&self) -> &[pm_lsh_metric::PointId] {
        self.tree.external_ids()
    }

    /// `true` when a live point carries this external id.
    pub fn contains(&self, id: pm_lsh_metric::PointId) -> bool {
        self.tree.contains_external(id)
    }

    /// Inserts one point, returning its external id (the id `query` will
    /// report it under). The id is fresh: ids are never reused, even
    /// after deletions.
    ///
    /// The point is projected through the index's hash functions and
    /// inserted into the PM-tree, the dataset row is appended, and the
    /// memoized `r_min` selections are reset (they depend on `n`). The
    /// build-time distance distribution `F` is *not* resampled: `r_min`
    /// drifts only as far as the data distribution itself drifts, and a
    /// `REINDEX` restores an exactly-sampled `F` — the documented
    /// trade-off of incremental maintenance.
    ///
    /// # Panics
    /// Panics if `point` has the wrong dimensionality or a non-finite
    /// component (serving layers validate first; see
    /// `pm_lsh_engine::Engine::insert` for the error-returning form).
    pub fn insert(&mut self, point: &[f32]) -> pm_lsh_metric::PointId {
        assert_eq!(
            point.len(),
            self.data.dim(),
            "point has wrong dimensionality"
        );
        assert!(
            point.iter().all(|v| v.is_finite()),
            "point contains a non-finite component"
        );
        let id = self.data.len() as pm_lsh_metric::PointId;
        let projected = self.projector.project(point);
        Arc::make_mut(&mut self.data).push(point);
        self.tree.insert(&projected, id);
        self.rmin_memo = RminMemo::new();
        id
    }

    /// Deletes the point with external id `id`; `false` when no live
    /// point carries it. The PM-tree entry is removed for real (leaf
    /// removal with subtree pruning — see `PmTree::delete`); the
    /// original-space row stays behind as a stable-id tombstone until the
    /// next rebuild and is never returned by queries.
    pub fn delete(&mut self, id: pm_lsh_metric::PointId) -> bool {
        let deleted = self.tree.delete(id);
        if deleted {
            self.rmin_memo = RminMemo::new();
        }
        deleted
    }

    /// Applies a batch of interleaved inserts and deletes in one pass,
    /// returning one result per op in input order: `Ok(id)` carries the
    /// inserted (fresh) or deleted external id, `Err` the typed
    /// [`MutReject`]. A rejected op never poisons the batch — the ops
    /// around it still apply, each validated against the index state its
    /// predecessors left behind, so the surviving ops land **exactly** as
    /// if applied one at a time through [`PmLsh::insert`] /
    /// [`PmLsh::delete`].
    ///
    /// What a batch amortizes at this layer: the memoized `r_min`
    /// selections are reset **once** after the whole batch (they depend
    /// only on the live count `n`, so intermediate resets are wasted
    /// work), and the live-count-derived candidate budget `βn + k`
    /// re-derives lazily from the final `n`. The engine layer adds the
    /// big win on top — one copy-on-write clone and one epoch bump per
    /// batch (`pm_lsh_engine::Engine::apply`).
    ///
    /// Unlike the asserting single-op [`PmLsh::insert`], malformed
    /// vectors (wrong dimensionality, non-finite components) are typed
    /// rejections here. The one batch-only rule: a delete that would
    /// empty the index is rejected with [`MutReject::WouldEmpty`].
    pub fn apply(&mut self, ops: &[MutOp]) -> Vec<Result<pm_lsh_metric::PointId, MutReject>> {
        let dim = self.data.dim();
        let mut results = Vec::with_capacity(ops.len());
        let mut changed = false;
        for op in ops {
            let res = match op {
                MutOp::Insert(point) => {
                    if point.len() != dim {
                        Err(MutReject::WrongDim {
                            expected: dim,
                            got: point.len(),
                        })
                    } else if !point.iter().all(|v| v.is_finite()) {
                        Err(MutReject::NonFinite)
                    } else {
                        let id = self.data.len() as pm_lsh_metric::PointId;
                        let projected = self.projector.project(point);
                        Arc::make_mut(&mut self.data).push(point);
                        self.tree.insert(&projected, id);
                        changed = true;
                        Ok(id)
                    }
                }
                MutOp::Delete(id) => {
                    if !self.tree.contains_external(*id) {
                        Err(MutReject::UnknownId(*id))
                    } else if self.tree.len() == 1 {
                        Err(MutReject::WouldEmpty)
                    } else {
                        self.tree.delete(*id);
                        changed = true;
                        Ok(*id)
                    }
                }
            };
            results.push(res);
        }
        if changed {
            self.rmin_memo = RminMemo::new();
        }
        results
    }

    /// The effective parameters.
    pub fn params(&self) -> &PmLshParams {
        &self.params
    }

    /// The Algorithm 2 candidate budget this index verifies before it
    /// stops: `⌈β·n⌉ + k`, clamped to the live count `n` (a budget beyond
    /// the live points is exhaustive anyway). Exposed so sharded serving
    /// layers can prove their per-shard budgets sum to at least the
    /// monolithic budget — the paper's quality guarantee (§4.4) survives
    /// partitioning exactly when they do.
    pub fn candidate_budget(&self, k: usize) -> usize {
        self.budget_with(self.derived.beta, k)
    }

    /// `⌈β·n⌉ + k` clamped to the live count, for an explicit `β` (the
    /// per-query `c` sweeps re-derive β; everything else uses the build
    /// derivation via [`PmLsh::candidate_budget`]).
    fn budget_with(&self, beta: f64, k: usize) -> usize {
        let n = self.len();
        ((beta * n as f64).ceil() as usize + k).min(n)
    }

    /// The Eq. 10 derivation in effect.
    pub fn derived(&self) -> DerivedParams {
        self.derived
    }

    /// The underlying PM-tree (exposed for cost-model experiments).
    pub fn tree(&self) -> &PmTree {
        &self.tree
    }

    /// The sampled original-space distance distribution `F`.
    pub fn distance_distribution(&self) -> &Ecdf {
        &self.dist_f
    }

    /// The Gaussian projector (the index's `m` hash functions).
    pub fn projector(&self) -> &GaussianProjector {
        &self.projector
    }

    /// Reassembles an index from its constituent parts — the
    /// deserialization path of the `pm-lsh-persist` snapshot format.
    ///
    /// The derived Eq. 10 parameters and the memoized `r_min` slots are
    /// *recomputed*, not restored: both are deterministic functions of
    /// `params`, `dist_f` and the live point count, so a reassembled
    /// index answers every query — including every [`QueryStats`]
    /// counter — bit-identically to the index the parts came from.
    ///
    /// Cross-component consistency is validated (dimensionalities, id
    /// ranges); internal tree structure is the caller's concern
    /// (`PmTree::from_parts` checks it).
    pub fn from_parts(
        data: Arc<Dataset>,
        projector: GaussianProjector,
        tree: PmTree,
        params: PmLshParams,
        dist_f: Ecdf,
    ) -> Result<Self, String> {
        if data.is_empty() {
            return Err("cannot index an empty dataset".into());
        }
        if projector.input_dim() != data.dim() {
            // lint: allow(hot-path) -- load-time validation error path
            return Err(format!(
                "projector reads R^{}, data lives in R^{}",
                projector.input_dim(),
                data.dim()
            ));
        }
        if projector.output_dim() != params.m as usize {
            // lint: allow(hot-path) -- load-time validation error path
            return Err(format!(
                "projector writes R^{}, params declare m={}",
                projector.output_dim(),
                params.m
            ));
        }
        if tree.dim() != params.m as usize {
            // lint: allow(hot-path) -- load-time validation error path
            return Err(format!(
                "tree indexes R^{}, params declare m={}",
                tree.dim(),
                params.m
            ));
        }
        if tree.len() > data.len() {
            // lint: allow(hot-path) -- load-time validation error path
            return Err(format!(
                "{} live tree points but only {} stored rows",
                tree.len(),
                data.len()
            ));
        }
        if let Some(&bad) = tree
            .external_ids()
            .iter()
            .find(|&&id| id as usize >= data.len())
        {
            // lint: allow(hot-path) -- load-time validation error path
            return Err(format!(
                "external id {bad} outside the {}-row point store",
                data.len()
            ));
        }
        if dist_f.is_empty() {
            return Err("distance distribution has no samples".into());
        }
        let derived = params.derive();
        Ok(Self {
            data,
            projector,
            tree,
            params,
            derived,
            dist_f,
            rmin_memo: RminMemo::new(),
        })
    }

    /// The start radius of Algorithm 2 for a given `k`: the paper picks `r`
    /// with `n·F(r) = βn + k`, then shrinks it slightly.
    ///
    /// The value depends only on `k` and build-time state, so small `k`
    /// (k < 128) is memoized per index — a serving workload hammering one
    /// or two `k` values pays the ECDF walk once.
    pub fn select_rmin(&self, k: usize) -> f64 {
        match self.rmin_memo.slots.get(k) {
            Some(slot) => *slot.get_or_init(|| self.compute_rmin(k)),
            None => self.compute_rmin(k),
        }
    }

    fn compute_rmin(&self, k: usize) -> f64 {
        let n = self.len() as f64;
        let target = (self.derived.beta + k as f64 / n).min(1.0);
        let r = self.dist_f.quantile(target);
        let r = if r > 0.0 {
            r
        } else {
            self.dist_f.quantile(1.0).max(1e-6)
        };
        r * self.params.rmin_shrink
    }

    /// Algorithm 2: the `(c, k)`-ANN query with the build-time `c`.
    ///
    /// Allocates a fresh [`QueryContext`] per call; serving loops should
    /// hold one and use [`PmLsh::query_with_context`] instead, which is
    /// allocation-free at steady state and returns identical results.
    pub fn query(&self, q: &[f32], k: usize) -> QueryResult {
        self.query_with_context(q, k, &mut QueryContext::new())
    }

    /// Algorithm 2 over a reused [`QueryContext`] (see the context docs:
    /// results are bit-identical to [`PmLsh::query`], only the allocation
    /// behavior differs).
    pub fn query_with_context(&self, q: &[f32], k: usize, ctx: &mut QueryContext) -> QueryResult {
        // lint: allow(hot-path) -- owned-result convenience; query_into is the zero-alloc entry
        let mut neighbors = Vec::new();
        let stats = self.query_into(q, k, self.params.c, ctx, &mut neighbors);
        QueryResult { neighbors, stats }
    }

    /// Algorithm 2 with an explicit approximation ratio (the Figs. 10–11
    /// time/quality trade-off sweeps vary `c` per query). The candidate
    /// budget `βn + k` is re-derived for the given `c` unless the index was
    /// built with a pinned `β`.
    pub fn query_with_c(&self, q: &[f32], k: usize, c: f64) -> QueryResult {
        // lint: allow(hot-path) -- owned-result convenience; query_into is the zero-alloc entry
        let mut neighbors = Vec::new();
        let stats = self.query_into(q, k, c, &mut QueryContext::new(), &mut neighbors);
        QueryResult { neighbors, stats }
    }

    /// The `(c, k)`-ANN workhorse: Algorithm 2 over a reused
    /// [`QueryContext`], writing the neighbors into `out` (cleared first).
    ///
    /// This is the fully allocation-free entry point: with a warmed-up
    /// `ctx` and an `out` whose capacity has reached the working set,
    /// repeated calls never touch the global allocator
    /// (`crates/core/tests/zero_alloc.rs` pins this with a counting
    /// allocator).
    ///
    /// Verification runs in the squared-distance domain: each candidate is
    /// measured with the early-abandoning [`sq_dist_within`] against a
    /// conservative squared bound derived from the current k-th neighbor
    /// distance, so candidates that cannot enter the top-k stop mid-kernel
    /// and never pay a `sqrt`. Kept candidates are completed exactly (same
    /// kernel, same accumulation order) and take one `sqrt` on insertion,
    /// which keeps every distance the verifier stores — and therefore every
    /// result and every [`QueryStats`] counter — identical to the
    /// pre-abandonment implementation (`PmLsh::query_reference`).
    pub fn query_into(
        &self,
        q: &[f32],
        k: usize,
        c: f64,
        ctx: &mut QueryContext,
        out: &mut Vec<Neighbor>,
    ) -> QueryStats {
        self.query_into_mode(q, k, c, ctx, out, None)
    }

    /// Algorithm 2 as the per-shard leg of a scatter-gather query: spends
    /// an explicit candidate `budget` (clamped to the live count) and
    /// skips the line-4 early termination.
    ///
    /// Two things change versus [`PmLsh::query_into`], both because a
    /// shard holds only a slice of the data:
    ///
    /// 1. **No line-4 stop.** Line 4 terminates once the k-th candidate
    ///    sits within `c·r` — a property of the *final* answer, which no
    ///    single shard holds. Stopping on the shard-local top-k leaves
    ///    budget unspent and lets the merged recall fall below the
    ///    monolithic index's. This leg stops only when the budget is
    ///    exhausted or the whole tree has been consumed.
    /// 2. **Caller-supplied budget.** The caller passes the *pooled*
    ///    budget `⌈β·n_total⌉ + k` computed over all shards. Because the
    ///    verified set is always a prefix of the projected-distance order,
    ///    and a point's rank within its shard never exceeds its global
    ///    rank, every candidate the monolithic index would verify is then
    ///    verified by some shard — the merged candidate pool is a
    ///    superset, which makes `recall(sharded) ≥ recall(monolithic)`
    ///    deterministic rather than statistical.
    pub fn query_fanout_into(
        &self,
        q: &[f32],
        k: usize,
        budget: usize,
        ctx: &mut QueryContext,
        out: &mut Vec<Neighbor>,
    ) -> QueryStats {
        self.query_into_mode(q, k, self.params.c, ctx, out, Some(budget))
    }

    /// [`PmLsh::query_fanout_into`] returning an owned [`QueryResult`].
    pub fn query_fanout_with_context(
        &self,
        q: &[f32],
        k: usize,
        budget: usize,
        ctx: &mut QueryContext,
    ) -> QueryResult {
        // lint: allow(hot-path) -- owned-result convenience; query_fanout_into is zero-alloc
        let mut neighbors = Vec::new();
        let stats = self.query_fanout_into(q, k, budget, ctx, &mut neighbors);
        QueryResult { neighbors, stats }
    }

    fn query_into_mode(
        &self,
        q: &[f32],
        k: usize,
        c: f64,
        ctx: &mut QueryContext,
        out: &mut Vec<Neighbor>,
        fanout_budget: Option<usize>,
    ) -> QueryStats {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(k >= 1, "k must be positive");
        assert!(c > 1.0, "approximation ratio must exceed 1");
        let derived = if c == self.params.c {
            self.derived
        } else {
            // A pinned β (paper operating point) applies to the build-time c
            // only; sweeps over c re-derive the budget from Eq. 10.
            PmLshParams {
                c,
                beta_override: None,
                ..self.params
            }
            .derive()
        };

        // Live count: deletions shrink both the candidate budget and the
        // radius-selection population. A fan-out leg spends the pooled
        // budget its caller computed over all shards instead.
        let budget = match fanout_budget {
            Some(b) => b.min(self.len()),
            None => self.budget_with(derived.beta, k),
        };
        ctx.qp.resize(self.params.m as usize, 0.0);
        self.projector.project_into(q, &mut ctx.qp);
        let mut cursor = self
            .tree
            .cursor_with_scratch(&ctx.qp, std::mem::take(&mut ctx.scratch));

        let top = &mut ctx.top;
        top.reset(k);
        let mut verified = 0usize;
        let mut rounds = 0u32;
        let mut r = self.select_rmin(k);
        // Invariant: `bound == abandon_bound(top.kth_dist())`, refreshed
        // only when an insertion changes the k-th distance — not per
        // candidate.
        let mut bound = f32::INFINITY;

        loop {
            rounds += 1;
            // Termination test of Algorithm 2 line 4: k candidates already
            // within c·r of the query. (Linear domain on purpose: squaring
            // both sides would round differently and could flip the
            // comparison at the boundary, breaking exact parity with the
            // reference path.) Skipped on the fan-out path, where the local
            // top-k is not the final answer.
            if fanout_budget.is_none() && top.is_full() && (top.kth_dist() as f64) <= c * r {
                break;
            }
            // Pull candidates from the incremental range query B(q', t·r).
            let proj_radius = (derived.t * r) as f32;
            while verified < budget {
                match cursor.next_within(proj_radius) {
                    Some((id, _proj_dist)) => {
                        let sq = sq_dist_within(q, self.data.point_id(id), bound);
                        if sq <= bound {
                            // Kept: `sq` is exact; one sqrt, then the same
                            // (dist, id) insertion the reference performs.
                            if top.push(sq.sqrt(), id) && top.is_full() {
                                bound = abandon_bound(top.kth_dist());
                            }
                        }
                        // else: sq > bound ≥ any squared distance whose
                        // sqrt could still displace the k-th neighbor, so
                        // the reference's push would have rejected it too.
                        verified += 1;
                    }
                    None => break,
                }
            }
            // Termination test of line 9: candidate budget exhausted.
            if verified >= budget {
                break;
            }
            // The whole tree was consumed below the current radius.
            if cursor.is_exhausted() {
                break;
            }
            r *= c;
        }

        let stats = QueryStats {
            candidates_verified: verified,
            projected_dist_computations: cursor.distance_computations(),
            rounds,
        };
        ctx.scratch = cursor.recycle();
        ctx.top.drain_sorted_into(out);
        stats
    }

    /// Algorithm 1: the `(r, c)`-ball-cover query. Returns a point within
    /// `c·r` of `q` (the closest verified candidate) or `None`, with the
    /// guarantees of Lemma 5.
    pub fn query_bc(&self, q: &[f32], r: f64) -> Option<Neighbor> {
        self.query_bc_with_context(q, r, &mut QueryContext::new())
    }

    /// Algorithm 1 over a reused [`QueryContext`]; identical results to
    /// [`PmLsh::query_bc`], allocation-free at steady state. Candidates
    /// that cannot beat the current best are early-abandoned mid-kernel,
    /// exactly as in [`PmLsh::query_into`].
    pub fn query_bc_with_context(
        &self,
        q: &[f32],
        r: f64,
        ctx: &mut QueryContext,
    ) -> Option<Neighbor> {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(r > 0.0, "radius must be positive");
        let n = self.len();
        let beta_n = (self.derived.beta * n as f64).ceil() as usize;
        ctx.qp.resize(self.params.m as usize, 0.0);
        self.projector.project_into(q, &mut ctx.qp);
        let mut cursor = self
            .tree
            .cursor_with_scratch(&ctx.qp, std::mem::take(&mut ctx.scratch));
        let proj_radius = (self.derived.t * r) as f32;

        let mut best: Option<Neighbor> = None;
        let mut count = 0usize;
        // Invariant: `bound == abandon_bound(best.dist)` (infinite until a
        // first candidate is verified), refreshed only when `best` changes.
        let mut bound = f32::INFINITY;
        let verdict = loop {
            match cursor.next_within(proj_radius) {
                Some((id, _)) => {
                    let sq = sq_dist_within(q, self.data.point_id(id), bound);
                    if sq <= bound {
                        let d = sq.sqrt();
                        if best.is_none_or(|b| Neighbor::new(d, id) < b) {
                            best = Some(Neighbor::new(d, id));
                            bound = abandon_bound(d);
                        }
                    }
                    count += 1;
                    if count > beta_n {
                        // Line 3–4: enough candidates guarantee one inside
                        // B(q, cr).
                        break best;
                    }
                }
                None => {
                    // Line 6–9: fewer than βn+1 candidates — only answer
                    // when a verified point is inside B(q, cr).
                    break match best {
                        Some(b) if (b.dist as f64) <= self.params.c * r => Some(b),
                        _ => None,
                    };
                }
            }
        };
        ctx.scratch = cursor.recycle();
        verdict
    }

    /// Projects an arbitrary point with this index's hash functions.
    pub fn project(&self, point: &[f32]) -> Vec<f32> {
        self.projector.project(point)
    }

    /// Answers a batch of queries in parallel over `threads` OS threads
    /// (0 = available parallelism). Queries never mutate the index, so
    /// they share it without synchronization; results keep query order.
    ///
    /// The threads are spawned per call, which suits one-shot workloads
    /// with no extra dependencies. For sustained serving — a persistent
    /// pool, request coalescing and latency statistics — use
    /// `pm_lsh_engine::Engine::query_batch`, which returns bit-identical
    /// results.
    pub fn query_batch(
        &self,
        queries: pm_lsh_metric::MatrixView<'_>,
        k: usize,
        threads: usize,
    ) -> Vec<QueryResult> {
        assert_eq!(
            queries.dim(),
            self.data.dim(),
            "queries have wrong dimensionality"
        );
        let nq = queries.len();
        if nq == 0 {
            // lint: allow(hot-path) -- empty batch early-out, never per-query
            return Vec::new();
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(nq);
        let mut results: Vec<Option<QueryResult>> = (0..nq).map(|_| None).collect();
        let chunk = nq.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, out_chunk) in results.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    // One context per worker: every query after the first
                    // reuses the projection buffer, traversal frontier and
                    // top-k collector of its predecessors in the chunk.
                    let mut ctx = QueryContext::new();
                    for (j, slot) in out_chunk.iter_mut().enumerate() {
                        *slot =
                            Some(self.query_with_context(queries.point(start + j), k, &mut ctx));
                    }
                });
            }
        });
        results
            .into_iter()
            // lint: allow(hot-path) -- batch API join; the scope above filled every chunk
            .map(|r| r.expect("all query slots filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PmLshParams;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn query_stats_merge_and_sum_agree() {
        let a = QueryStats {
            candidates_verified: 3,
            projected_dist_computations: 10,
            rounds: 1,
        };
        let b = QueryStats {
            candidates_verified: 4,
            projected_dist_computations: 22,
            rounds: 2,
        };
        let mut m = a;
        m += b;
        assert_eq!(
            m,
            QueryStats {
                candidates_verified: 7,
                projected_dist_computations: 32,
                rounds: 3
            }
        );
        assert_eq!([a, b].iter().sum::<QueryStats>(), m);
        let mut saturate = QueryStats {
            rounds: u32::MAX,
            ..a
        };
        saturate += &b;
        assert_eq!(saturate.rounds, u32::MAX, "rounds must saturate, not wrap");
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        let data = blob(1200, 12, 71);
        let queries = blob(20, 12, 72);
        let params = PmLshParams::default();
        let base = PmLsh::build_with_opts(data.clone(), params, crate::BuildOptions::default());
        for threads in [0usize, 2, 4, 8] {
            let other = PmLsh::build_with_opts(
                data.clone(),
                params,
                crate::BuildOptions::with_threads(threads),
            );
            for q in queries.iter() {
                let a = base.query(q, 7);
                let b = other.query(q, 7);
                assert_eq!(a.neighbors, b.neighbors, "{threads}-thread build diverged");
                assert_eq!(a.stats, b.stats, "{threads}-thread traversal diverged");
            }
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let data = blob(800, 16, 61);
        let queries = blob(13, 16, 62);
        let index = PmLsh::build(data, PmLshParams::default());
        let batch = index.query_batch(queries.view(), 5, 4);
        assert_eq!(batch.len(), 13);
        for (qi, q) in queries.iter().enumerate() {
            let single = index.query(q, 5);
            assert_eq!(batch[qi].neighbors, single.neighbors);
            assert_eq!(batch[qi].stats, single.stats);
        }
    }

    #[test]
    fn batch_with_more_threads_than_queries() {
        let data = blob(300, 8, 63);
        let queries = blob(2, 8, 64);
        let index = PmLsh::build(data, PmLshParams::default());
        let batch = index.query_batch(queries.view(), 3, 16);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn empty_batch() {
        let data = blob(100, 4, 65);
        let queries = Dataset::with_capacity(4, 0);
        let index = PmLsh::build(data, PmLshParams::default());
        assert!(index.query_batch(queries.view(), 3, 0).is_empty());
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let data = blob(20, 4, 66);
        let q = data.point(0).to_vec();
        let index = PmLsh::build(data, PmLshParams::default());
        let res = index.query(&q, 50);
        assert_eq!(res.neighbors.len(), 20, "k > n must return all points");
        assert_eq!(res.neighbors[0].id, 0);
    }

    #[test]
    fn singleton_dataset() {
        let data = Dataset::from_rows(vec![vec![1.0, 2.0, 3.0]]);
        let index = PmLsh::build(data, PmLshParams::default());
        let res = index.query(&[1.0, 2.0, 3.0], 1);
        assert_eq!(res.neighbors.len(), 1);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }

    #[test]
    fn apply_matches_single_op_mutations_bit_for_bit() {
        let data = blob(400, 10, 91);
        let queries = blob(8, 10, 92);
        let params = PmLshParams::default();
        let mut batched = PmLsh::build(data.clone(), params);
        let mut single = PmLsh::build(data, params);

        let extra = blob(6, 10, 93);
        let ops = vec![
            MutOp::Insert(extra.point(0).to_vec()),
            MutOp::Delete(3),
            MutOp::Insert(extra.point(1).to_vec()),
            MutOp::Insert(extra.point(2).to_vec()),
            MutOp::Delete(400), // the id the first insert was assigned
            MutOp::Delete(7),
        ];
        let results = batched.apply(&ops);
        assert_eq!(
            results,
            vec![Ok(400), Ok(3), Ok(401), Ok(402), Ok(400), Ok(7)]
        );

        for op in &ops {
            match op {
                MutOp::Insert(p) => {
                    single.insert(p);
                }
                MutOp::Delete(id) => assert!(single.delete(*id)),
            }
        }
        assert_eq!(batched.len(), single.len());
        assert_eq!(batched.live_ids(), single.live_ids());
        batched.tree().verify_invariants().expect("batched tree");
        for q in queries.iter() {
            let a = batched.query(q, 5);
            let b = single.query(q, 5);
            assert_eq!(a.neighbors, b.neighbors, "batched path diverged");
            assert_eq!(a.stats, b.stats, "batched traversal diverged");
        }
    }

    #[test]
    fn apply_rejects_bad_ops_without_poisoning_the_batch() {
        let data = blob(50, 6, 94);
        let mut index = PmLsh::build(data, PmLshParams::default());
        let ops = vec![
            MutOp::Insert(vec![1.0; 5]),      // wrong dimensionality
            MutOp::Insert(vec![f32::NAN; 6]), // non-finite
            MutOp::Insert(vec![0.5; 6]),      // fine: id 50
            MutOp::Delete(50),                // fine: just inserted
            MutOp::Delete(50),                // already gone
            MutOp::Delete(9999),              // never assigned
        ];
        let results = index.apply(&ops);
        assert_eq!(
            results,
            vec![
                Err(MutReject::WrongDim {
                    expected: 6,
                    got: 5
                }),
                Err(MutReject::NonFinite),
                Ok(50),
                Ok(50),
                Err(MutReject::UnknownId(50)),
                Err(MutReject::UnknownId(9999)),
            ]
        );
        assert_eq!(index.len(), 50, "net live count unchanged");
        index
            .tree()
            .verify_invariants()
            .expect("tree after rejects");
    }

    #[test]
    fn apply_refuses_to_drain_the_index() {
        let data = blob(2, 4, 95);
        let mut index = PmLsh::build(data, PmLshParams::default());
        let results = index.apply(&[MutOp::Delete(0), MutOp::Delete(1)]);
        assert_eq!(results, vec![Ok(0), Err(MutReject::WouldEmpty)]);
        assert_eq!(index.len(), 1);
        // An insert in the same batch re-opens headroom for the delete.
        let results = index.apply(&[MutOp::Insert(vec![1.0; 4]), MutOp::Delete(1)]);
        assert_eq!(results, vec![Ok(2), Ok(1)]);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn duplicate_heavy_dataset() {
        let mut rows = vec![vec![5.0f32; 8]; 50];
        rows.extend(vec![vec![-5.0f32; 8]; 50]);
        let data = Dataset::from_rows(rows);
        let index = PmLsh::build(data, PmLshParams::default());
        let res = index.query(&[5.0f32; 8], 10);
        assert_eq!(res.neighbors.len(), 10);
        assert!(res.neighbors.iter().all(|n| n.dist == 0.0 && n.id < 50));
    }
}
