//! lint: hot-path
//!
//! Reusable per-thread query state.
//!
//! Every `(c, k)`-ANN query needs a projected-query buffer (`m` floats), a
//! PM-tree traversal frontier and a top-k collector. Allocating them per
//! query is invisible for one-off calls but dominates small-`d` serving
//! workloads; a [`QueryContext`] owns all three and is threaded through
//! [`crate::PmLsh::query_with_context`] / [`crate::PmLsh::query_into`] so
//! repeated queries run without touching the allocator at steady state
//! (asserted by `crates/core/tests/zero_alloc.rs` with a counting global
//! allocator).
//!
//! A context is **not** tied to an index: the engine keeps one per worker
//! thread and reuses it across reindex snapshot swaps — buffers simply
//! resize on the next query. Results are bit-identical with or without a
//! context; reuse trades allocation, never accuracy.

use pm_lsh_metric::TopK;
use pm_lsh_pmtree::CursorScratch;

/// Owned scratch space for the query hot path; see the module docs.
///
/// ```
/// use pm_lsh_core::{PmLsh, PmLshParams, QueryContext};
/// use pm_lsh_metric::Dataset;
/// use pm_lsh_stats::Rng;
///
/// let mut rng = Rng::new(11);
/// let mut ds = Dataset::with_capacity(24, 400);
/// let mut buf = [0.0f32; 24];
/// for _ in 0..400 {
///     rng.fill_normal(&mut buf);
///     ds.push(&buf);
/// }
/// let q = ds.point(3).to_vec();
/// let index = PmLsh::build(ds, PmLshParams::default());
///
/// let mut ctx = QueryContext::new();
/// let reused = index.query_with_context(&q, 5, &mut ctx);
/// assert_eq!(reused.neighbors, index.query(&q, 5).neighbors);
/// ```
#[derive(Debug)]
pub struct QueryContext {
    /// PM-tree traversal buffers (frontier heap, pivot distances, query).
    pub(crate) scratch: CursorScratch,
    /// The projected query `q' = (h*_1(q), …, h*_m(q))`.
    pub(crate) qp: Vec<f32>,
    /// Top-k collector, reset per query.
    pub(crate) top: TopK,
}

impl QueryContext {
    /// An empty context. Almost nothing is allocated until the first
    /// query; capacities grow to the working-set high-water mark and then
    /// stay.
    pub fn new() -> Self {
        Self {
            scratch: CursorScratch::new(),
            // lint: allow(hot-path) -- one-time constructor; queries reuse the buffers
            qp: Vec::new(),
            // Placeholder k; every query resets the collector to its own k.
            top: TopK::new(1),
        }
    }
}

impl Default for QueryContext {
    fn default() -> Self {
        Self::new()
    }
}
