//! Shard-aware id mapping and dataset partitioning.
//!
//! A sharded deployment splits one logical index across `S` independent
//! [`PmLsh`](crate::PmLsh) instances. Each shard numbers its own rows
//! densely from 0 (`local` ids), while clients keep seeing one flat
//! `global` id space. The two are related by an interleaved bijection:
//!
//! ```text
//! global = local · S + shard        shard = global mod S
//!                                   local = global div S
//! ```
//!
//! Interleaving — rather than contiguous ranges — has two properties the
//! serving layer leans on:
//!
//! * **Round-robin build parity.** [`partition`] deals rows round-robin,
//!   so row `i` of the original dataset lands in shard `i mod S` at local
//!   index `i div S` — which maps back to global id `i`. A freshly built
//!   sharded index therefore exposes *exactly* the ids a monolithic build
//!   over the same dataset would, making monolith-vs-sharded parity
//!   testable id-for-id.
//! * **Monotone growth without coordination.** Each shard appends locally
//!   (its next local id is its own row count), and as long as inserts go
//!   to the shard with the fewest rows, the globally assigned ids continue
//!   the sequence `n, n+1, n+2, …` — again matching the monolith.
//!
//! All helpers are `const`-free plain functions on `u64` intermediates so
//! the mapping cannot overflow for any `u32` [`PointId`] and shard count.

use pm_lsh_metric::{Dataset, PointId};

/// The shard that owns `global` among `shards` shards.
///
/// # Panics
/// Panics when `shards` is zero.
pub fn owner(global: PointId, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (global as u64 % shards as u64) as usize
}

/// The shard-local id of `global` among `shards` shards.
///
/// # Panics
/// Panics when `shards` is zero.
pub fn to_local(global: PointId, shards: usize) -> PointId {
    assert!(shards > 0, "shard count must be positive");
    (global as u64 / shards as u64) as PointId
}

/// The global id of `local` on shard `shard` among `shards` shards.
///
/// # Panics
/// Panics when `shards` is zero, `shard >= shards`, or the mapped id
/// would not fit a [`PointId`].
pub fn to_global(local: PointId, shard: usize, shards: usize) -> PointId {
    assert!(shards > 0, "shard count must be positive");
    assert!(shard < shards, "shard {shard} out of range 0..{shards}");
    let global = local as u64 * shards as u64 + shard as u64;
    assert!(
        global <= PointId::MAX as u64,
        "global id {global} overflows PointId"
    );
    global as PointId
}

/// Deals the rows of `data` round-robin into `shards` datasets: shard `k`
/// receives rows `k, k + S, k + 2S, …` in order, so local index `j` on
/// shard `k` is original row [`to_global`]`(j, k, S)`.
///
/// With `shards == 1` this is a plain copy. Shards may differ in size by
/// at most one row; every shard is non-empty when `data.len() >= shards`.
///
/// # Panics
/// Panics when `shards` is zero.
pub fn partition(data: &Dataset, shards: usize) -> Vec<Dataset> {
    assert!(shards > 0, "shard count must be positive");
    let mut out: Vec<Dataset> = (0..shards)
        .map(|k| {
            let rows = data.len() / shards + usize::from(k < data.len() % shards);
            Dataset::with_capacity(data.dim(), rows)
        })
        .collect();
    for (i, row) in data.iter().enumerate() {
        out[i % shards].push(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_a_bijection() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            for global in 0u32..2_000 {
                let s = owner(global, shards);
                let l = to_local(global, shards);
                assert!(s < shards);
                assert_eq!(to_global(l, s, shards), global);
            }
        }
    }

    #[test]
    fn round_trip_from_local_side() {
        for shards in [1usize, 2, 5, 8] {
            for shard in 0..shards {
                for local in 0u32..500 {
                    let g = to_global(local, shard, shards);
                    assert_eq!(owner(g, shards), shard);
                    assert_eq!(to_local(g, shards), local);
                }
            }
        }
    }

    #[test]
    fn mapping_survives_large_ids() {
        let shards = 16usize;
        let local = (PointId::MAX / 16) - 1;
        let g = to_global(local, 15, shards);
        assert_eq!(owner(g, shards), 15);
        assert_eq!(to_local(g, shards), local);
    }

    #[test]
    fn partition_deals_round_robin() {
        let data = Dataset::from_rows((0..11).map(|i| vec![i as f32, -1.0]).collect());
        for shards in [1usize, 2, 3, 4] {
            let parts = partition(&data, shards);
            assert_eq!(parts.len(), shards);
            assert_eq!(parts.iter().map(Dataset::len).sum::<usize>(), data.len());
            for (k, part) in parts.iter().enumerate() {
                for (j, row) in part.iter().enumerate() {
                    let original = to_global(j as PointId, k, shards) as usize;
                    assert_eq!(row, data.point(original), "shard {k} local {j}");
                }
            }
            // Balanced to within one row.
            let min = parts.iter().map(Dataset::len).min().unwrap();
            let max = parts.iter().map(Dataset::len).max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn partition_of_fewer_rows_than_shards_leaves_empty_tails() {
        let data = Dataset::from_rows(vec![vec![1.0f32], vec![2.0]]);
        let parts = partition(&data, 4);
        assert_eq!(
            parts.iter().map(Dataset::len).collect::<Vec<_>>(),
            vec![1, 1, 0, 0]
        );
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        owner(3, 0);
    }
}
