//! PM-LSH: a fast and accurate LSH framework for high-dimensional
//! approximate nearest neighbor search.
//!
//! This crate implements the primary contribution of Zheng et al.,
//! *PM-LSH* (PVLDB 13(5), 2020): `c`-approximate nearest-neighbor search
//! that (1) projects points into an `m`-dimensional space with Gaussian
//! hash functions, (2) indexes the projections in a PM-tree, (3) estimates
//! original distances through the χ² confidence interval of Lemma 3, and
//! (4) answers queries with a sequence of range queries of growing radius
//! (Algorithms 1 and 2).
//!
//! # Quick start
//!
//! ```
//! use pm_lsh_core::{PmLsh, PmLshParams};
//! use pm_lsh_metric::Dataset;
//! use pm_lsh_stats::Rng;
//!
//! // 1000 Gaussian points in R^64
//! let mut rng = Rng::new(42);
//! let mut data = Dataset::with_capacity(64, 1000);
//! let mut buf = [0.0f32; 64];
//! for _ in 0..1000 {
//!     rng.fill_normal(&mut buf);
//!     data.push(&buf);
//! }
//!
//! let query = data.point(17).to_vec();
//! let index = PmLsh::build(data, PmLshParams::paper_defaults());
//! let result = index.query(&query, 10);
//! assert_eq!(result.neighbors[0].id, 17); // the point itself comes first
//! ```
//!
//! The sibling crates provide the substrates (`pm-lsh-pmtree`,
//! `pm-lsh-rtree`, `pm-lsh-bptree`, `pm-lsh-hash`), the paper's competitors
//! (`pm-lsh-baselines`) and the experiment harness (`pm-lsh-bench`).

#![warn(missing_docs)]

pub mod build;
pub mod context;
pub mod estimator_study;
pub mod index;
pub mod params;
pub mod reference;
pub mod shard;

pub use build::BuildOptions;
pub use context::QueryContext;
pub use estimator_study::{estimator_study, Estimator, EstimatorCurve, EstimatorPoint};
pub use index::{MutOp, MutReject, PmLsh, QueryResult, QueryStats};
pub use params::{DerivedParams, PmLshParams};
