//! The Fig. 3 estimator study: recall and overall ratio of four distance
//! estimators (L2, L1, QD, Rand) as a function of the candidate budget `T`.
//!
//! Protocol (Section 3.2 of the paper): sample a dataset, compute each
//! query's exact 100-NN, project everything with `m = 15` hash functions,
//! rank all points by each estimator, keep the top `T` by estimated
//! distance, and report how well the best 100 (by *true* distance) of those
//! `T` match the exact 100-NN.

use pm_lsh_hash::GaussianProjector;
use pm_lsh_metric::{dist::l1_dist, euclidean, Dataset, TopK};
use pm_lsh_stats::Rng;

/// The candidate-ranking estimators compared in Fig. 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Estimator {
    /// Projected Euclidean distance — the paper's estimator (Lemma 2).
    L2,
    /// Projected Manhattan distance.
    L1,
    /// Quantization distance: Euclidean distance from the projected query
    /// to the *bucket cell* of the point ("point to bucket" granularity, a
    /// real-valued analogue of GQR's QD ranking). The field is the bucket
    /// width `w`.
    Qd(f32),
    /// A random score — the sanity floor.
    Rand,
}

impl Estimator {
    /// Short display name matching the figure legend.
    pub fn name(&self) -> &'static str {
        match self {
            Estimator::L2 => "L2",
            Estimator::L1 => "L1",
            Estimator::Qd(_) => "QD",
            Estimator::Rand => "Rand",
        }
    }

    fn score(&self, q_proj: &[f32], o_proj: &[f32], rng: &mut Rng) -> f32 {
        match *self {
            Estimator::L2 => euclidean(q_proj, o_proj),
            Estimator::L1 => l1_dist(q_proj, o_proj),
            Estimator::Qd(w) => {
                // distance from q' to the axis-aligned bucket cell of o'
                let mut acc = 0.0f32;
                for (&qv, &ov) in q_proj.iter().zip(o_proj) {
                    let lo = (ov / w).floor() * w;
                    let hi = lo + w;
                    let gap = if qv < lo {
                        lo - qv
                    } else if qv > hi {
                        qv - hi
                    } else {
                        0.0
                    };
                    acc += gap * gap;
                }
                acc.sqrt()
            }
            Estimator::Rand => rng.f32(),
        }
    }
}

/// One `(T, recall, overall ratio)` measurement.
#[derive(Clone, Copy, Debug)]
pub struct EstimatorPoint {
    /// Candidate budget `T`.
    pub t: usize,
    /// Average recall of the reconstructed 100-NN.
    pub recall: f64,
    /// Average overall ratio (Eq. 11).
    pub ratio: f64,
}

/// Full result for one estimator.
#[derive(Clone, Debug)]
pub struct EstimatorCurve {
    /// Which estimator produced the curve.
    pub estimator: Estimator,
    /// Measurements, one per requested `T`.
    pub points: Vec<EstimatorPoint>,
}

/// Runs the study. `k` is the ground-truth depth (100 in the paper).
pub fn estimator_study(
    data: &Dataset,
    queries: &Dataset,
    m: usize,
    k: usize,
    ts: &[usize],
    estimators: &[Estimator],
    seed: u64,
) -> Vec<EstimatorCurve> {
    assert_eq!(data.dim(), queries.dim(), "dimensionality mismatch");
    assert!(k <= data.len(), "ground-truth depth exceeds dataset size");
    let mut rng = Rng::new(seed);
    let projector = GaussianProjector::new(data.dim(), m, &mut rng);
    let proj_data = projector.project_all(data.view());
    let proj_queries = projector.project_all(queries.view());

    // Exact k-NN (ground truth) per query, by brute force.
    let truth: Vec<Vec<pm_lsh_metric::Neighbor>> = queries
        .iter()
        .map(|q| {
            let mut top = TopK::new(k);
            for (i, p) in data.iter().enumerate() {
                top.push(euclidean(q, p), i as u32);
            }
            top.into_sorted_vec()
        })
        .collect();

    let max_t = ts.iter().copied().max().unwrap_or(0).min(data.len());

    estimators
        .iter()
        .map(|&est| {
            let mut sums: Vec<(f64, f64)> = vec![(0.0, 0.0); ts.len()];
            for (qi, q_proj) in proj_queries.iter().enumerate() {
                // Rank all points by the estimator.
                let mut scored: Vec<(f32, u32)> = proj_data
                    .iter()
                    .enumerate()
                    .map(|(i, o_proj)| (est.score(q_proj, o_proj, &mut rng), i as u32))
                    .collect();
                scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                scored.truncate(max_t);
                // True distances of the ranked prefix, incrementally.
                let q = queries.point(qi);
                let mut top = TopK::new(k);
                let mut upto = 0usize;
                for (ti, &t) in ts.iter().enumerate() {
                    let t = t.min(scored.len());
                    while upto < t {
                        let id = scored[upto].1;
                        top.push(euclidean(q, data.point_id(id)), id);
                        upto += 1;
                    }
                    let found = top.clone().into_sorted_vec();
                    let (recall, ratio) = score_against_truth(&found, &truth[qi]);
                    sums[ti].0 += recall;
                    sums[ti].1 += ratio;
                }
            }
            let nq = queries.len() as f64;
            EstimatorCurve {
                estimator: est,
                points: ts
                    .iter()
                    .zip(&sums)
                    .map(|(&t, &(r, o))| EstimatorPoint {
                        t,
                        recall: r / nq,
                        ratio: o / nq,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Recall (Eq. 12) and overall ratio (Eq. 11) of `found` w.r.t. the exact
/// `truth` (both ascending). Missing positions count as ratio 1 denominator
/// pairing: the ratio is computed over the found prefix, padded with the
/// worst found distance when fewer than `k` candidates exist.
fn score_against_truth(
    found: &[pm_lsh_metric::Neighbor],
    truth: &[pm_lsh_metric::Neighbor],
) -> (f64, f64) {
    let k = truth.len();
    let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|n| n.id).collect();
    let hits = found.iter().filter(|n| truth_ids.contains(&n.id)).count();
    let recall = hits as f64 / k as f64;

    let mut ratio_acc = 0.0f64;
    let mut counted = 0usize;
    for (f, t) in found.iter().zip(truth) {
        if t.dist > 0.0 {
            ratio_acc += f.dist as f64 / t.dist as f64;
            counted += 1;
        }
    }
    let ratio = if counted == 0 {
        1.0
    } else {
        ratio_acc / counted as f64
    };
    (recall, ratio.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn l2_beats_rand_and_improves_with_t() {
        let data = blob(2000, 48, 1);
        let queries = blob(10, 48, 2);
        let ts = [50usize, 200, 800];
        let curves = estimator_study(
            &data,
            &queries,
            15,
            20,
            &ts,
            &[Estimator::L2, Estimator::Rand],
            3,
        );
        let l2 = &curves[0];
        let rand = &curves[1];
        // L2 recall must dominate Rand at every T
        for (a, b) in l2.points.iter().zip(&rand.points) {
            assert!(
                a.recall > b.recall,
                "T={}: L2 {} vs Rand {}",
                a.t,
                a.recall,
                b.recall
            );
            assert!(a.ratio <= b.ratio + 1e-9);
        }
        // and be monotone in T
        assert!(l2.points[0].recall <= l2.points[2].recall + 1e-9);
        // with T = 40% of n, L2 recall should be strong
        assert!(l2.points[2].recall > 0.8, "recall {}", l2.points[2].recall);
    }

    #[test]
    fn qd_between_l2_and_rand() {
        let data = blob(1500, 32, 4);
        let queries = blob(8, 32, 5);
        let curves = estimator_study(
            &data,
            &queries,
            15,
            20,
            &[300],
            &[Estimator::L2, Estimator::Qd(4.0), Estimator::Rand],
            6,
        );
        let (l2, qd, rand) = (
            curves[0].points[0],
            curves[1].points[0],
            curves[2].points[0],
        );
        assert!(
            l2.recall >= qd.recall - 0.05,
            "L2 {} vs QD {}",
            l2.recall,
            qd.recall
        );
        assert!(
            qd.recall > rand.recall,
            "QD {} vs Rand {}",
            qd.recall,
            rand.recall
        );
    }

    #[test]
    fn perfect_estimator_with_full_budget() {
        // T = n makes every estimator perfect (all points verified).
        let data = blob(300, 16, 7);
        let queries = blob(4, 16, 8);
        let curves = estimator_study(&data, &queries, 15, 10, &[300], &[Estimator::Rand], 9);
        let p = curves[0].points[0];
        assert!((p.recall - 1.0).abs() < 1e-9);
        assert!((p.ratio - 1.0).abs() < 1e-9);
    }
}
