//! PM-LSH parameters and the Eq. 10 derivation.
//!
//! Given `m` hash functions, approximation ratio `c` and tail probability
//! `α₁`, Eq. 10 fixes the radius multiplier `t` and the false-positive
//! budget:
//!
//! ```text
//! t² = χ²_{α₁}(m)          (upper quantile)
//! t² = c² χ²_{1−α₂}(m)     ⇒  α₂ = CDF_{χ²(m)}(t²/c²)
//! β  = 2 α₂                (Lemma 5 sets Pr[E2] = 1 − α₂/β = 1/2)
//! ```
//!
//! **Reproduction note.** For the paper's defaults `m = 15, c = 1.5,
//! α₁ = 1/e`, this derivation yields `α₂ ≈ 0.0483, β ≈ 0.0967`, while
//! Section 6.1 of the paper reports `α₂ = 0.1405, β = 0.2809`. The paper's
//! pair is internally consistent (`β = 2α₂`) but does not follow from Eq. 10
//! under any quantile convention we could find; a larger β only makes the
//! algorithm examine more candidates (≈ 28 % of n instead of ≈ 10 %),
//! trading time for recall. [`PmLshParams::paper_defaults`] pins the paper's
//! experimental value so the Table 4 / Figs. 7–11 reproductions match the
//! published operating point, while [`PmLshParams::default`] keeps the
//! faithful Eq. 10 derivation.

use pm_lsh_pmtree::PmTreeConfig;
use pm_lsh_stats::{chi2_cdf, chi2_upper_quantile};

/// User-facing PM-LSH configuration.
#[derive(Clone, Copy, Debug)]
pub struct PmLshParams {
    /// Number of Gaussian hash functions `m` (projected dimensionality).
    pub m: u32,
    /// Approximation ratio `c > 1` used during radius enlargement.
    pub c: f64,
    /// Tail probability `α₁` of event E1 (paper default `1/e`).
    pub alpha1: f64,
    /// Overrides the derived candidate fraction `β` when set (the paper's
    /// experiments run with `β = 0.2809`).
    pub beta_override: Option<f64>,
    /// Shrink factor applied to the estimated start radius `r_min`
    /// (the paper asks for "an r_min slightly smaller than r").
    pub rmin_shrink: f64,
    /// PM-tree layout (capacity 16, s = 5 pivots by default).
    pub tree: PmTreeConfig,
    /// Number of sampled point pairs used to estimate the distance
    /// distribution `F` at build time.
    pub distance_samples: usize,
    /// Seed for the projector, pivot selection and sampling.
    pub seed: u64,
}

impl Default for PmLshParams {
    fn default() -> Self {
        Self {
            m: 15,
            c: 1.5,
            alpha1: 1.0 / std::f64::consts::E,
            beta_override: None,
            rmin_shrink: 0.95,
            tree: PmTreeConfig::default(),
            distance_samples: 50_000,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl PmLshParams {
    /// The configuration of the paper's Section 6 experiments: `m = 15`,
    /// `c = 1.5`, `s = 5`, `α₁ = 1/e` and the published `β = 0.2809`.
    pub fn paper_defaults() -> Self {
        Self {
            beta_override: Some(0.2809),
            ..Self::default()
        }
    }

    /// Same settings with a different approximation ratio (β re-derived from
    /// Eq. 10 unless overridden).
    pub fn with_c(mut self, c: f64) -> Self {
        assert!(c > 1.0, "approximation ratio must exceed 1");
        self.c = c;
        self
    }

    /// Derives `t`, `α₂` and `β` via Eq. 10.
    pub fn derive(&self) -> DerivedParams {
        assert!(self.m >= 1, "need at least one hash function");
        assert!(self.c > 1.0, "approximation ratio must exceed 1");
        assert!(
            self.alpha1 > 0.0 && self.alpha1 < 1.0,
            "alpha1 must be in (0,1)"
        );
        let t_sq = chi2_upper_quantile(self.alpha1, self.m);
        let t = t_sq.sqrt();
        let alpha2 = chi2_cdf(t_sq / (self.c * self.c), self.m);
        let beta = self.beta_override.unwrap_or(2.0 * alpha2);
        assert!(beta > 0.0 && beta < 1.0, "derived beta {beta} out of range");
        DerivedParams { t, alpha2, beta }
    }
}

/// The Eq. 10 outputs consumed by the query algorithms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DerivedParams {
    /// Projected-radius multiplier: a range query with original radius `r`
    /// scans `B(q', t·r)` in the projected space.
    pub t: f64,
    /// Tail probability of event E2.
    pub alpha2: f64,
    /// Candidate budget fraction: the algorithms stop after verifying
    /// `β·n + k` candidates.
    pub beta: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_stats::chi2_sf;

    #[test]
    fn eq10_at_paper_defaults() {
        let d = PmLshParams::default().derive();
        // t² is the upper 1/e quantile of χ²(15)
        assert!((d.t * d.t - 16.2154).abs() < 1e-3, "t²={}", d.t * d.t);
        assert!((chi2_sf(d.t * d.t, 15) - 1.0 / std::f64::consts::E).abs() < 1e-10);
        // Faithful Eq. 10 outputs (see the module docs for why these differ
        // from the paper's stated 0.1405 / 0.2809):
        assert!((d.alpha2 - 0.0483).abs() < 1e-3, "alpha2={}", d.alpha2);
        assert!((d.beta - 0.0967).abs() < 1e-3, "beta={}", d.beta);
    }

    #[test]
    fn paper_pinned_beta() {
        let d = PmLshParams::paper_defaults().derive();
        assert_eq!(d.beta, 0.2809);
        // t is unaffected by the β pin
        assert!((d.t - 4.0268).abs() < 1e-3);
    }

    #[test]
    fn beta_shrinks_with_larger_c() {
        // A looser approximation ratio tolerates fewer false positives.
        let b15 = PmLshParams::default().with_c(1.5).derive().beta;
        let b20 = PmLshParams::default().with_c(2.0).derive().beta;
        assert!(b20 < b15);
    }

    #[test]
    fn t_grows_with_smaller_alpha1() {
        let strict = PmLshParams {
            alpha1: 0.05,
            ..Default::default()
        }
        .derive();
        let loose = PmLshParams {
            alpha1: 0.5,
            ..Default::default()
        }
        .derive();
        assert!(
            strict.t > loose.t,
            "smaller tail mass needs a wider interval"
        );
    }

    #[test]
    fn e1_e2_events_hold_empirically() {
        // Lemma 4 head-on: sample points at distance exactly r (E1) and
        // exactly c·r (E2 boundary) and check the tail probabilities.
        use pm_lsh_stats::Rng;
        let p = PmLshParams::default();
        let d = p.derive();
        let m = p.m as usize;
        let mut rng = Rng::new(99);
        let trials = 30_000;
        let r = 2.0f64;

        // E1: point inside B(q, r) has projected distance <= t·r w.p. >= 1-α1
        let mut e1_fail = 0usize;
        for _ in 0..trials {
            let mut sq = 0.0;
            for _ in 0..m {
                let rho = r * rng.normal();
                sq += rho * rho;
            }
            if sq.sqrt() > d.t * r {
                e1_fail += 1;
            }
        }
        let fail_rate = e1_fail as f64 / trials as f64;
        assert!(
            (fail_rate - p.alpha1).abs() < 0.01,
            "E1 fail rate {fail_rate}"
        );

        // E2: point at distance c·r has projected distance < t·r w.p. α2
        let mut e2_hit = 0usize;
        let cr = p.c * r;
        for _ in 0..trials {
            let mut sq = 0.0;
            for _ in 0..m {
                let rho = cr * rng.normal();
                sq += rho * rho;
            }
            if sq.sqrt() < d.t * r {
                e2_hit += 1;
            }
        }
        let hit_rate = e2_hit as f64 / trials as f64;
        assert!((hit_rate - d.alpha2).abs() < 0.01, "E2 hit rate {hit_rate}");
    }
}
