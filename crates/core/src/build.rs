//! Build-time execution options (how to build, not what to build).
//!
//! [`crate::PmLshParams`] fixes the *algorithmic* configuration — `m`, `c`,
//! `α₁`, tree layout — while [`BuildOptions`] fixes only how the build is
//! executed. The two are deliberately separate: changing `BuildOptions`
//! never changes what the index computes, only how fast it gets there.

/// Execution options for [`crate::PmLsh::build_with_opts`].
///
/// `threads` drives both parallel phases of the build: the Gaussian
/// projection of all `n` points (`GaussianProjector::project_all_threaded`)
/// and the PM-tree bulk-load (`PmTree::build_parallel`, one subtree per
/// pivot region). Both phases are **thread-count invariant**: the index
/// built with 8 threads is identical to the one built with 1, so parallel
/// builds stay reproducible and a snapshot can be rebuilt bit-for-bit.
///
/// Note that the bulk-loaded PM-tree legitimately differs in shape from
/// the incrementally grown tree of [`crate::PmLsh::build`] (which predates
/// the bulk loader and is kept for the paper-faithful construction path);
/// both satisfy every PM-tree invariant and answer queries with the same
/// guarantees.
///
/// ```
/// use pm_lsh_core::BuildOptions;
/// assert_eq!(BuildOptions::default().threads, 1);
/// assert!(BuildOptions::all_cores().effective_threads() >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildOptions {
    /// Worker threads for the build. `0` means available parallelism.
    pub threads: usize,
}

impl Default for BuildOptions {
    /// Single-threaded: the conservative choice for library callers that
    /// did not ask for background threads.
    fn default() -> Self {
        Self { threads: 1 }
    }
}

impl BuildOptions {
    /// Builds on every available core (`threads = 0`).
    pub fn all_cores() -> Self {
        Self { threads: 0 }
    }

    /// Builds on exactly `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The effective worker count (`threads`, or available parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}
