//! The pre-hot-path-refactor query implementations, kept verbatim.
//!
//! The PR that rebuilt the query hot path (early-abandoning verification,
//! scratch reuse, squared-distance domain) promised *result-identical*
//! behavior. That promise is only checkable against the code it replaced,
//! so the old implementations live on here, word for word:
//!
//! * `tests/hotpath_parity.rs` (workspace root) asserts that every
//!   refactored entry point returns identical `neighbors` **and** identical
//!   [`QueryStats`] on the Audio smoke dataset;
//! * `crates/bench/benches/query_hotpath.rs` uses them as the "before"
//!   measurement for the recorded speedup.
//!
//! Both paths share the dispatched distance kernels (the reference
//! computes full distances through [`euclidean`], whose `sq_dist` is the
//! same kernel the early-abandoning `sq_dist_within` completes to when a
//! candidate is kept), so the comparison isolates exactly the structural
//! changes: allocation reuse, abandonment, and the sqrt placement.
//!
//! These functions allocate per query by design — do not use them on a
//! serving path.

use crate::index::{PmLsh, QueryResult, QueryStats};
use crate::params::PmLshParams;
use pm_lsh_metric::{euclidean, Neighbor, TopK};

impl PmLsh {
    /// Pre-refactor Algorithm 2 with the build-time `c`. See the module
    /// docs; prefer [`PmLsh::query`].
    pub fn query_reference(&self, q: &[f32], k: usize) -> QueryResult {
        self.query_with_c_reference(q, k, self.params().c)
    }

    /// Pre-refactor Algorithm 2 with an explicit approximation ratio.
    /// See the module docs; prefer [`PmLsh::query_with_c`].
    pub fn query_with_c_reference(&self, q: &[f32], k: usize, c: f64) -> QueryResult {
        assert_eq!(q.len(), self.data().dim(), "query has wrong dimensionality");
        assert!(k >= 1, "k must be positive");
        assert!(c > 1.0, "approximation ratio must exceed 1");
        let params = *self.params();
        let derived = if c == params.c {
            self.derived()
        } else {
            PmLshParams {
                c,
                beta_override: None,
                ..params
            }
            .derive()
        };

        let n = self.data().len();
        let budget = ((derived.beta * n as f64).ceil() as usize + k).min(n);
        let qp = self.project(q);
        let mut cursor = self.tree().cursor(&qp);

        let mut top = TopK::new(k);
        let mut verified = 0usize;
        let mut rounds = 0u32;
        let mut r = self.select_rmin(k);

        loop {
            rounds += 1;
            // Termination test of Algorithm 2 line 4: k candidates already
            // within c·r of the query.
            if top.is_full() && (top.kth_dist() as f64) <= c * r {
                break;
            }
            // Pull candidates from the incremental range query B(q', t·r).
            let proj_radius = (derived.t * r) as f32;
            while verified < budget {
                match cursor.next_within(proj_radius) {
                    Some((id, _proj_dist)) => {
                        let d = euclidean(q, self.data().point_id(id));
                        top.push(d, id);
                        verified += 1;
                    }
                    None => break,
                }
            }
            // Termination test of line 9: candidate budget exhausted.
            if verified >= budget {
                break;
            }
            // The whole tree was consumed below the current radius.
            if cursor.is_exhausted() {
                break;
            }
            r *= c;
        }

        QueryResult {
            neighbors: top.into_sorted_vec(),
            stats: QueryStats {
                candidates_verified: verified,
                projected_dist_computations: cursor.distance_computations(),
                rounds,
            },
        }
    }

    /// Pre-refactor Algorithm 1 (`(r, c)`-ball-cover). See the module
    /// docs; prefer [`PmLsh::query_bc`].
    pub fn query_bc_reference(&self, q: &[f32], r: f64) -> Option<Neighbor> {
        assert_eq!(q.len(), self.data().dim(), "query has wrong dimensionality");
        assert!(r > 0.0, "radius must be positive");
        let n = self.data().len();
        let beta_n = (self.derived().beta * n as f64).ceil() as usize;
        let qp = self.project(q);
        let mut cursor = self.tree().cursor(&qp);
        let proj_radius = (self.derived().t * r) as f32;

        let mut best: Option<Neighbor> = None;
        let mut count = 0usize;
        while let Some((id, _)) = cursor.next_within(proj_radius) {
            let d = euclidean(q, self.data().point_id(id));
            if best.is_none_or(|b| Neighbor::new(d, id) < b) {
                best = Some(Neighbor::new(d, id));
            }
            count += 1;
            if count > beta_n {
                // Line 3–4: enough candidates guarantee one inside B(q, cr).
                return best;
            }
        }
        // Line 6–9: fewer than βn+1 candidates — only answer when a
        // verified point is inside B(q, cr).
        match best {
            Some(b) if (b.dist as f64) <= self.params().c * r => Some(b),
            _ => None,
        }
    }
}
