//! Collision probabilities of p-stable LSH functions (Eq. 2).
//!
//! For `h(o) = ⌊(a·o + b)/w⌋` with 2-stable `a`, two points at distance `τ`
//! collide with probability
//!
//! ```text
//! p(τ) = ∫₀^w (1/τ) f(t/τ) (1 − t/w) dt
//!      = 2Φ(w/τ) − 1 − (2τ / (√(2π) w)) (1 − exp(−w²/(2τ²)))
//! ```
//!
//! (`f`, `Φ` the standard normal pdf/CDF). QALSH's *query-aware* functions
//! `h(o) = a·o` with a query-anchored window of half-width `w/2` collide with
//! probability `2Φ(w/(2τ)) − 1`. Both closed forms are verified against
//! numeric integration in the tests.

use pm_lsh_stats::normal_cdf;

/// Collision probability of the bucketed function (Eq. 2 closed form).
///
/// Monotonically decreasing in `τ`; `p(0⁺) = 1`.
pub fn collision_probability(tau: f64, w: f64) -> f64 {
    assert!(w > 0.0, "bucket width must be positive");
    assert!(tau >= 0.0, "distance must be non-negative");
    if tau == 0.0 {
        return 1.0;
    }
    let r = w / tau;
    2.0 * normal_cdf(r)
        - 1.0
        - 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * r) * (1.0 - (-r * r / 2.0).exp())
}

/// Collision probability of QALSH's query-aware function: the probability
/// that `|a·(o − q)| ≤ w/2` when `||o − q|| = τ`.
pub fn query_aware_collision_probability(tau: f64, w: f64) -> f64 {
    assert!(w > 0.0, "window width must be positive");
    assert!(tau >= 0.0, "distance must be non-negative");
    if tau == 0.0 {
        return 1.0;
    }
    2.0 * normal_cdf(w / (2.0 * tau)) - 1.0
}

/// `p1 = p(r)` and `p2 = p(cr)`: the `(r, cr, p1, p2)`-sensitivity pair of
/// the bucketed family for base radius `r = 1`.
pub fn sensitivity_pair(c: f64, w: f64) -> (f64, f64) {
    assert!(c > 1.0, "approximation ratio must exceed 1");
    (collision_probability(1.0, w), collision_probability(c, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_stats::normal_pdf;

    /// Numeric version of Eq. 2 via trapezoid integration.
    fn collision_numeric(tau: f64, w: f64) -> f64 {
        let steps = 200_000;
        let h = w / steps as f64;
        let f = |t: f64| (1.0 / tau) * normal_pdf(t / tau) * (1.0 - t / w);
        let mut acc = 0.0;
        for i in 0..steps {
            let t0 = i as f64 * h;
            acc += (f(t0) + f(t0 + h)) * h / 2.0;
        }
        2.0 * acc // the pdf is symmetric; Eq. 2 integrates the |·| form
    }

    #[test]
    fn closed_form_matches_integral() {
        for (tau, w) in [(1.0, 4.0), (2.0, 4.0), (0.5, 1.0), (3.0, 2.0), (1.5, 6.0)] {
            let closed = collision_probability(tau, w);
            let numeric = collision_numeric(tau, w);
            assert!(
                (closed - numeric).abs() < 1e-6,
                "tau={tau} w={w}: closed={closed} numeric={numeric}"
            );
        }
    }

    #[test]
    fn monotone_decreasing_in_distance() {
        let w = 4.0;
        let mut prev = 1.0;
        for i in 1..100 {
            let tau = i as f64 * 0.1;
            let p = collision_probability(tau, w);
            assert!(p < prev, "p must strictly decrease (tau={tau})");
            assert!(p > 0.0 && p < 1.0);
            prev = p;
        }
    }

    #[test]
    fn sensitivity_p1_exceeds_p2() {
        for c in [1.2, 1.5, 2.0, 3.0] {
            for w in [1.0, 2.0, 4.0] {
                let (p1, p2) = sensitivity_pair(c, w);
                assert!(p1 > p2, "c={c} w={w}: p1={p1} p2={p2}");
            }
        }
    }

    #[test]
    fn query_aware_probability_empirical() {
        // Monte-Carlo check: a·(o−q) ~ N(0, τ²).
        use pm_lsh_stats::Rng;
        let mut rng = Rng::new(33);
        let (tau, w) = (1.5, 4.0);
        let trials = 200_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            if (tau * rng.normal()).abs() <= w / 2.0 {
                hits += 1;
            }
        }
        let emp = hits as f64 / trials as f64;
        let p = query_aware_collision_probability(tau, w);
        assert!((emp - p).abs() < 0.005, "emp={emp} closed={p}");
    }

    #[test]
    fn zero_distance_always_collides() {
        assert_eq!(collision_probability(0.0, 4.0), 1.0);
        assert_eq!(query_aware_collision_probability(0.0, 4.0), 1.0);
    }
}
