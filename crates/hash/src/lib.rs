//! p-stable LSH hash families shared across the PM-LSH workspace.
//!
//! Three kinds of hashing appear in the paper, all built on 2-stable
//! (Gaussian) projections:
//!
//! * [`projector::GaussianProjector`] — the un-bucketed `h*(o) = a·o` of
//!   Eq. 3, producing the *projected space* indexed by PM-LSH (PM-tree),
//!   SRS/R-LSH (R-tree) and QALSH (B+-trees).
//! * [`family::BucketedHash`] / [`family::CompoundHash`] — the classic
//!   `h(o) = ⌊(a·o + b)/w⌋` of Eq. 1, used by Multi-Probe hash tables.
//! * [`collision`] — the collision probabilities (Eq. 2 and the query-aware
//!   variant) from which QALSH derives its parameters.
//! * [`multiprobe`] — the query-directed perturbation sequence of
//!   Multi-Probe LSH.

#![warn(missing_docs)]

pub mod collision;
pub mod family;
pub mod multiprobe;
pub mod projector;

pub use collision::{collision_probability, query_aware_collision_probability, sensitivity_pair};
pub use family::{BucketedHash, CompoundHash};
pub use multiprobe::{Perturbation, ProbeSequence, ProbeSet};
pub use projector::GaussianProjector;
