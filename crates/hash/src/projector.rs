//! Gaussian random projections `h*(o) = a · o` (Eq. 3 of the paper).
//!
//! A [`GaussianProjector`] holds `m` i.i.d. N(0, 1) vectors in `R^d` and maps
//! points into the `m`-dimensional *projected space*. Lemma 1 (the χ²
//! relationship between original and projected distances) holds exactly for
//! this map, which is what PM-LSH, SRS and R-LSH all build on.

use pm_lsh_metric::{dot, Dataset, MatrixView};
use pm_lsh_stats::Rng;

/// A bank of `m` Gaussian hash functions `h*_i(o) = a_i · o`.
#[derive(Clone, Debug)]
pub struct GaussianProjector {
    /// Row-major `m x d` coefficient matrix.
    coeffs: Vec<f32>,
    d: usize,
    m: usize,
}

impl GaussianProjector {
    /// Draws `m` independent N(0, I_d) projection vectors from `rng`.
    pub fn new(d: usize, m: usize, rng: &mut Rng) -> Self {
        assert!(d > 0 && m > 0, "dimensions must be positive");
        let mut coeffs = vec![0.0f32; m * d];
        rng.fill_normal(&mut coeffs);
        Self { coeffs, d, m }
    }

    /// Builds a projector from explicit coefficient rows (used by tests and
    /// by the paper's running example with fixed `a_1`, `a_2`).
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        assert!(!rows.is_empty(), "need at least one hash function");
        let d = rows[0].len();
        assert!(d > 0, "dimension must be positive");
        let m = rows.len();
        let mut coeffs = Vec::with_capacity(m * d);
        for r in &rows {
            assert_eq!(r.len(), d, "inconsistent projection vector length");
            coeffs.extend_from_slice(r);
        }
        Self { coeffs, d, m }
    }

    /// Original dimensionality `d`.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.d
    }

    /// Number of hash functions `m` (the projected dimensionality).
    #[inline]
    pub fn output_dim(&self) -> usize {
        self.m
    }

    /// The coefficient row of hash function `i`.
    #[inline]
    pub fn coeff_row(&self, i: usize) -> &[f32] {
        &self.coeffs[i * self.d..(i + 1) * self.d]
    }

    /// The whole row-major `m x d` coefficient matrix. Together with
    /// [`Self::from_flat`] this round-trips a projector bit-exactly, which
    /// index snapshots rely on.
    #[inline]
    pub fn coeffs_flat(&self) -> &[f32] {
        &self.coeffs
    }

    /// Rebuilds a projector from a row-major `m x d` coefficient matrix
    /// (the inverse of [`Self::coeffs_flat`]).
    ///
    /// # Panics
    /// Panics if `d` or `m` is zero or `coeffs.len() != m * d`.
    pub fn from_flat(coeffs: Vec<f32>, d: usize, m: usize) -> Self {
        assert!(d > 0 && m > 0, "dimensions must be positive");
        assert_eq!(coeffs.len(), m * d, "coefficient matrix has wrong size");
        Self { coeffs, d, m }
    }

    /// Projects one point into the `m`-dimensional space, writing into `out`.
    pub fn project_into(&self, point: &[f32], out: &mut [f32]) {
        assert_eq!(point.len(), self.d, "point has wrong dimensionality");
        assert_eq!(out.len(), self.m, "output buffer has wrong dimensionality");
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(self.coeff_row(i), point);
        }
    }

    /// Projects one point, allocating the output.
    pub fn project(&self, point: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.m];
        self.project_into(point, &mut out);
        out
    }

    /// Projects a whole dataset into a new `m`-dimensional [`Dataset`].
    pub fn project_all(&self, view: MatrixView<'_>) -> Dataset {
        self.project_all_threaded(view, 1)
    }

    /// Projects a whole dataset across `threads` OS threads (0 = available
    /// parallelism), splitting the rows into one contiguous chunk per
    /// worker.
    ///
    /// Every output value is the same `dot(a_i, o_j)` computed in the same
    /// floating-point order as [`Self::project_all`], so the result is
    /// bit-identical for every thread count — parallel builds stay
    /// reproducible.
    pub fn project_all_threaded(&self, view: MatrixView<'_>, threads: usize) -> Dataset {
        assert_eq!(view.dim(), self.d, "dataset has wrong dimensionality");
        let n = view.len();
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(n.max(1));

        let mut flat = vec![0.0f32; n * self.m];
        if threads <= 1 {
            for (p, out_row) in view.iter().zip(flat.chunks_mut(self.m)) {
                self.project_into(p, out_row);
            }
            return Dataset::from_flat(flat, self.m);
        }

        let rows_per_chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, out_chunk) in flat.chunks_mut(rows_per_chunk * self.m).enumerate() {
                let start = c * rows_per_chunk;
                scope.spawn(move || {
                    for (j, out_row) in out_chunk.chunks_mut(self.m).enumerate() {
                        self.project_into(view.point(start + j), out_row);
                    }
                });
            }
        });
        Dataset::from_flat(flat, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::sq_dist;

    #[test]
    fn fixed_rows_project_exactly() {
        // The paper's running example: a1 = [1.0, 0.9], a2 = [0.2, 1.7].
        // Note Fig. 1(c) tabulates a·o + b (with b2 = 2); Eq. 3's h*(o) = a·o
        // omits the shift, so the second coordinate here is 2 lower than the
        // figure's (the shift cancels in every distance computation).
        let proj = GaussianProjector::from_rows(vec![vec![1.0, 0.9], vec![0.2, 1.7]]);
        // q = (5,5) -> a·q = (9.5, 9.5); Fig. 1(c) lists (9.5, 11.5 = 9.5+2)
        assert_eq!(proj.project(&[5.0, 5.0]), vec![9.5, 9.5]);
        // o3 = (9,2) -> (10.8, 5.2); figure lists (10.8, 7.2)
        let p = proj.project(&[9.0, 2.0]);
        assert!((p[0] - 10.8).abs() < 1e-6 && (p[1] - 5.2).abs() < 1e-6);
    }

    #[test]
    fn expected_projected_sq_dist_is_m_times_original() {
        // Lemma 1 consequence: E[r'^2] = m r^2. Average over many projectors.
        let mut rng = Rng::new(21);
        let a = [1.0f32, -2.0, 0.5, 3.0];
        let b = [0.0f32, 1.0, -1.5, 2.0];
        let r2 = sq_dist(&a, &b) as f64;
        let m = 15;
        let trials = 3000;
        let mut acc = 0.0f64;
        for _ in 0..trials {
            let proj = GaussianProjector::new(4, m, &mut rng);
            let pa = proj.project(&a);
            let pb = proj.project(&b);
            acc += sq_dist(&pa, &pb) as f64;
        }
        let mean = acc / trials as f64;
        let want = m as f64 * r2;
        assert!((mean - want).abs() / want < 0.05, "mean={mean} want={want}");
    }

    #[test]
    fn project_all_matches_pointwise() {
        let mut rng = Rng::new(22);
        let proj = GaussianProjector::new(8, 3, &mut rng);
        let ds = Dataset::from_rows(vec![vec![1.0; 8], vec![-1.0; 8], vec![0.5; 8]]);
        let pd = proj.project_all(ds.view());
        assert_eq!(pd.len(), 3);
        assert_eq!(pd.dim(), 3);
        for i in 0..3 {
            assert_eq!(pd.point(i), proj.project(ds.point(i)).as_slice());
        }
    }

    #[test]
    fn threaded_projection_is_bit_identical() {
        let mut rng = Rng::new(23);
        let proj = GaussianProjector::new(12, 5, &mut rng);
        let mut ds = Dataset::with_capacity(12, 97); // deliberately not a multiple of any thread count
        let mut buf = [0.0f32; 12];
        for _ in 0..97 {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        let sequential = proj.project_all(ds.view());
        for threads in [0usize, 1, 2, 3, 4, 8, 128] {
            let parallel = proj.project_all_threaded(ds.view(), threads);
            assert_eq!(
                parallel.as_flat(),
                sequential.as_flat(),
                "{threads}-thread projection diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn dimension_mismatch_rejected() {
        let mut rng = Rng::new(1);
        let proj = GaussianProjector::new(4, 2, &mut rng);
        let _ = proj.project(&[1.0, 2.0]);
    }
}
