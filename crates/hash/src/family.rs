//! Bucketed p-stable LSH functions `h(o) = ⌊(a·o + b) / w⌋` (Eq. 1).
//!
//! These are the hash functions of the basic E2LSH scheme and of Multi-Probe
//! LSH: `a` is drawn from the 2-stable (standard normal) distribution, `b`
//! uniformly from `[0, w)`, and `w` is the user-chosen bucket width.

use pm_lsh_metric::dot;
use pm_lsh_stats::Rng;

/// One bucketed hash function.
#[derive(Clone, Debug)]
pub struct BucketedHash {
    a: Vec<f32>,
    b: f32,
    w: f32,
}

impl BucketedHash {
    /// Draws `a ~ N(0, I_d)` and `b ~ U[0, w)`.
    pub fn new(d: usize, w: f32, rng: &mut Rng) -> Self {
        assert!(d > 0, "dimension must be positive");
        assert!(w > 0.0, "bucket width must be positive");
        let mut a = vec![0.0f32; d];
        rng.fill_normal(&mut a);
        let b = (rng.f64() * w as f64) as f32;
        Self { a, b, w }
    }

    /// Builds a function from explicit parameters (used by the paper's
    /// running example and by tests).
    pub fn from_parts(a: Vec<f32>, b: f32, w: f32) -> Self {
        assert!(!a.is_empty() && w > 0.0);
        Self { a, b, w }
    }

    /// The pre-floor value `(a·o + b) / w`; the bucket id is its floor and
    /// the fractional part is the normalized offset within the bucket
    /// (needed by multi-probe boundary distances).
    #[inline]
    pub fn raw(&self, point: &[f32]) -> f64 {
        (dot(&self.a, point) as f64 + self.b as f64) / self.w as f64
    }

    /// The bucket id `h(o) = ⌊(a·o + b)/w⌋`.
    #[inline]
    pub fn bucket(&self, point: &[f32]) -> i32 {
        self.raw(point).floor() as i32
    }

    /// Bucket width `w`.
    #[inline]
    pub fn width(&self) -> f32 {
        self.w
    }
}

/// A compound hash `G(o) = (h_1(o), …, h_{m'}(o))`: the per-table key of
/// E2LSH / Multi-Probe hash tables.
#[derive(Clone, Debug)]
pub struct CompoundHash {
    funcs: Vec<BucketedHash>,
}

impl CompoundHash {
    /// Draws `m'` independent bucketed functions.
    pub fn new(d: usize, m: usize, w: f32, rng: &mut Rng) -> Self {
        assert!(m > 0, "need at least one function");
        let funcs = (0..m).map(|_| BucketedHash::new(d, w, rng)).collect();
        Self { funcs }
    }

    /// Builds from explicit functions.
    pub fn from_funcs(funcs: Vec<BucketedHash>) -> Self {
        assert!(!funcs.is_empty());
        Self { funcs }
    }

    /// Number of concatenated functions.
    #[inline]
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// `true` if the compound holds no functions (impossible by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Access to the individual functions.
    #[inline]
    pub fn funcs(&self) -> &[BucketedHash] {
        &self.funcs
    }

    /// The bucket key `G(o)`.
    pub fn bucket(&self, point: &[f32]) -> Vec<i32> {
        self.funcs.iter().map(|h| h.bucket(point)).collect()
    }

    /// Bucket key plus the in-bucket offsets `x_i(-1) ∈ [0, w)` (distance
    /// from the point's raw value to the lower bucket boundary, in raw
    /// units): the inputs of query-directed multi-probe.
    pub fn bucket_with_offsets(&self, point: &[f32]) -> (Vec<i32>, Vec<f64>) {
        let mut key = Vec::with_capacity(self.funcs.len());
        let mut offs = Vec::with_capacity(self.funcs.len());
        for h in &self.funcs {
            let raw = h.raw(point);
            let fl = raw.floor();
            key.push(fl as i32);
            offs.push((raw - fl) * h.w as f64);
        }
        (key, offs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 2: h1(o) = ⌊a1·o/4⌋, h2(o) = ⌊(a2·o + 2)/4⌋ with
    /// a1 = [1.0, 0.9], a2 = [0.2, 1.7]; G(q) = (2, 2) for q = (5, 5).
    #[test]
    fn running_example_buckets() {
        let h1 = BucketedHash::from_parts(vec![1.0, 0.9], 0.0, 4.0);
        let h2 = BucketedHash::from_parts(vec![0.2, 1.7], 2.0, 4.0);
        let g = CompoundHash::from_funcs(vec![h1, h2]);
        assert_eq!(g.bucket(&[5.0, 5.0]), vec![2, 2]);
        // o7 = (6,3): h* = (8.7, 8.3) -> h1 = floor(8.7/4) = 2,
        // h2 = floor((8.3+2)/4) = 2 — same bucket as q, as in the example.
        assert_eq!(g.bucket(&[6.0, 3.0]), vec![2, 2]);
        // o1 = (0,1): h* = (0.9, 3.7) -> buckets (0, 0): different from q's.
        assert_eq!(g.bucket(&[0.0, 1.0]), vec![0, 0]);
        // o11 = (6,10): h* = (15.0, 20.2) -> buckets (3, 5).
        assert_eq!(g.bucket(&[6.0, 10.0]), vec![3, 5]);
    }

    #[test]
    fn offsets_lie_in_bucket() {
        let mut rng = Rng::new(5);
        let g = CompoundHash::new(6, 4, 3.0, &mut rng);
        let p = [0.3f32, -1.2, 0.0, 2.2, -0.7, 1.1];
        let (key, offs) = g.bucket_with_offsets(&p);
        assert_eq!(key.len(), 4);
        for (i, &x) in offs.iter().enumerate() {
            assert!((0.0..3.0).contains(&x), "offset {x} out of [0,w)");
            // reconstruct: raw*w = key*w + off
            let raw = g.funcs()[i].raw(&p);
            assert!(((key[i] as f64) * 3.0 + x - raw * 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn close_points_collide_more() {
        let mut rng = Rng::new(6);
        let d = 16;
        let mut same = 0;
        let mut far = 0;
        let trials = 2000;
        for _ in 0..trials {
            let h = BucketedHash::new(d, 4.0, &mut rng);
            let mut base = vec![0.0f32; d];
            rng.fill_normal(&mut base);
            let mut near = base.clone();
            near[0] += 0.1;
            let mut distant = base.clone();
            for v in distant.iter_mut() {
                *v += 3.0;
            }
            if h.bucket(&base) == h.bucket(&near) {
                same += 1;
            }
            if h.bucket(&base) == h.bucket(&distant) {
                far += 1;
            }
        }
        assert!(same > far, "near collisions {same} should exceed far {far}");
        assert!(same as f64 / trials as f64 > 0.9);
    }
}
