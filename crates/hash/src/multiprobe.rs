//! Query-directed multi-probe perturbation sequences (Lv et al., VLDB'07).
//!
//! Given a query's in-bucket offsets, a perturbation set Δ assigns `+1`/`-1`
//! bucket shifts to a subset of the hash functions; its *score* is the sum of
//! squared distances from the query's raw hash values to the corresponding
//! bucket boundaries — a lower score means the perturbed bucket is more
//! likely to contain near neighbors. [`ProbeSequence`] enumerates valid
//! perturbation sets in non-decreasing score order using the classic
//! min-heap with *shift* and *expand* successor operations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One perturbation: shift hash function `func` by `delta` (±1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Perturbation {
    /// Index of the hash function inside the compound hash.
    pub func: usize,
    /// Bucket shift, `-1` or `+1`.
    pub delta: i8,
}

/// A scored perturbation set.
#[derive(Clone, Debug)]
pub struct ProbeSet {
    /// Total score (sum of squared boundary distances); lower is better.
    pub score: f64,
    /// The perturbations to apply to the query's home bucket.
    pub perturbations: Vec<Perturbation>,
}

/// Internal heap entry: a set of 1-based indexes into the score-sorted
/// boundary-distance array, ordered by total score (min-heap via `Reverse`
/// semantics implemented manually).
#[derive(Clone, Debug)]
struct HeapEntry {
    score: f64,
    /// Strictly increasing 1-based positions into the sorted `z` array.
    positions: Vec<u32>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.positions == other.positions
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score for a min-heap; tie-break on positions for
        // determinism.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.positions.cmp(&self.positions))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Enumerator of perturbation sets in non-decreasing score order.
pub struct ProbeSequence {
    /// Boundary distances sorted ascending by score: `(score, func, delta)`.
    sorted: Vec<(f64, usize, i8)>,
    heap: BinaryHeap<HeapEntry>,
}

impl ProbeSequence {
    /// Builds the sequence from the query's in-bucket offsets.
    ///
    /// `offsets[i] = x_i(-1) ∈ [0, w_i)` is the distance from the query's raw
    /// value to the lower boundary of its home bucket for hash function `i`;
    /// the distance to the upper boundary is `w_i − x_i(-1)`.
    pub fn new(offsets: &[f64], widths: &[f64]) -> Self {
        assert_eq!(offsets.len(), widths.len());
        assert!(!offsets.is_empty(), "need at least one hash function");
        let mut sorted: Vec<(f64, usize, i8)> = Vec::with_capacity(offsets.len() * 2);
        for (i, (&x, &w)) in offsets.iter().zip(widths).enumerate() {
            debug_assert!((0.0..=w).contains(&x), "offset outside bucket");
            // Perturbing by -1 means crossing the lower boundary (distance x);
            // +1 crosses the upper boundary (distance w - x).
            sorted.push((x * x, i, -1));
            sorted.push(((w - x) * (w - x), i, 1));
        }
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));

        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            score: sorted[0].0,
            positions: vec![1],
        });
        Self { sorted, heap }
    }

    /// A set is valid when it never perturbs the same hash function twice
    /// (applying both -1 and +1 to one function is contradictory).
    fn is_valid(&self, positions: &[u32]) -> bool {
        let mut seen = 0u64; // functions fit in 64 for every config we use
        let mut seen_large: Option<std::collections::HashSet<usize>> = None;
        for &p in positions {
            let func = self.sorted[(p - 1) as usize].1;
            if func < 64 {
                let bit = 1u64 << func;
                if seen & bit != 0 {
                    return false;
                }
                seen |= bit;
            } else {
                let set = seen_large.get_or_insert_with(Default::default);
                if !set.insert(func) {
                    return false;
                }
            }
        }
        true
    }

    fn set_score(&self, positions: &[u32]) -> f64 {
        positions
            .iter()
            .map(|&p| self.sorted[(p - 1) as usize].0)
            .sum()
    }

    /// Pushes the *shift* and *expand* successors of `entry`.
    fn push_successors(&mut self, entry: &HeapEntry) {
        let max_pos = *entry.positions.last().unwrap();
        if (max_pos as usize) < self.sorted.len() {
            // shift: replace the max element with its successor
            let mut shifted = entry.positions.clone();
            *shifted.last_mut().unwrap() = max_pos + 1;
            let score = self.set_score(&shifted);
            self.heap.push(HeapEntry {
                score,
                positions: shifted,
            });
            // expand: add the successor
            let mut expanded = entry.positions.clone();
            expanded.push(max_pos + 1);
            let score = self.set_score(&expanded);
            self.heap.push(HeapEntry {
                score,
                positions: expanded,
            });
        }
    }
}

impl Iterator for ProbeSequence {
    type Item = ProbeSet;

    fn next(&mut self) -> Option<ProbeSet> {
        loop {
            let entry = self.heap.pop()?;
            self.push_successors(&entry);
            if self.is_valid(&entry.positions) {
                let perturbations = entry
                    .positions
                    .iter()
                    .map(|&p| {
                        let (_, func, delta) = self.sorted[(p - 1) as usize];
                        Perturbation { func, delta }
                    })
                    .collect();
                return Some(ProbeSet {
                    score: entry.score,
                    perturbations,
                });
            }
            // invalid sets still spawn successors (done above) but are skipped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_non_decreasing() {
        let offsets = [0.5, 1.8, 3.2, 0.1];
        let widths = [4.0, 4.0, 4.0, 4.0];
        let seq = ProbeSequence::new(&offsets, &widths);
        let sets: Vec<ProbeSet> = seq.take(50).collect();
        assert!(!sets.is_empty());
        for w in sets.windows(2) {
            assert!(
                w[0].score <= w[1].score + 1e-12,
                "{} > {}",
                w[0].score,
                w[1].score
            );
        }
    }

    #[test]
    fn first_set_is_single_best_perturbation() {
        let offsets = [0.5, 1.8, 3.9];
        let widths = [4.0, 4.0, 4.0];
        let mut seq = ProbeSequence::new(&offsets, &widths);
        let first = seq.next().unwrap();
        // Smallest boundary distance: function 2 upper boundary (4.0-3.9=0.1).
        assert_eq!(first.perturbations.len(), 1);
        assert_eq!(first.perturbations[0], Perturbation { func: 2, delta: 1 });
        assert!((first.score - 0.01).abs() < 1e-9);
    }

    #[test]
    fn no_function_perturbed_twice() {
        let offsets = [1.0, 2.0];
        let widths = [4.0, 4.0];
        let seq = ProbeSequence::new(&offsets, &widths);
        for set in seq.take(100) {
            let mut funcs: Vec<usize> = set.perturbations.iter().map(|p| p.func).collect();
            funcs.sort_unstable();
            funcs.dedup();
            assert_eq!(
                funcs.len(),
                set.perturbations.len(),
                "duplicate function in set"
            );
        }
    }

    #[test]
    fn no_duplicate_sets() {
        let offsets = [0.7, 1.3, 2.9, 3.3, 0.2];
        let widths = [4.0; 5];
        let seq = ProbeSequence::new(&offsets, &widths);
        let mut seen = std::collections::HashSet::new();
        for set in seq.take(200) {
            let mut key: Vec<(usize, i8)> = set
                .perturbations
                .iter()
                .map(|p| (p.func, p.delta))
                .collect();
            key.sort_unstable();
            assert!(seen.insert(key), "duplicate perturbation set emitted");
        }
    }

    #[test]
    fn enumerates_all_valid_sets_eventually() {
        // With m = 2 there are 3^2 - 1 = 8 valid non-empty perturbation sets
        // (each function: -1, +1 or untouched).
        let offsets = [1.0, 3.0];
        let widths = [4.0, 4.0];
        let seq = ProbeSequence::new(&offsets, &widths);
        let sets: Vec<ProbeSet> = seq.take(64).collect();
        assert_eq!(
            sets.len(),
            8,
            "expected all 8 valid sets, got {}",
            sets.len()
        );
    }
}
