//! Property tests for the LSH hash layer.

use pm_lsh_hash::{collision_probability, GaussianProjector, ProbeSequence};
use pm_lsh_metric::euclidean;
use pm_lsh_stats::Rng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn collision_probability_is_a_probability(tau in 0.0f64..50.0, w in 0.1f64..20.0) {
        let p = collision_probability(tau, w);
        prop_assert!((0.0..=1.0).contains(&p), "p={p}");
    }

    #[test]
    fn collision_probability_monotone_in_distance(w in 0.5f64..10.0, a in 0.0f64..20.0, b in 0.0f64..20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(collision_probability(lo, w) >= collision_probability(hi, w) - 1e-12);
    }

    #[test]
    fn collision_probability_monotone_in_width(tau in 0.1f64..10.0, w1 in 0.5f64..10.0, w2 in 0.5f64..10.0) {
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(collision_probability(tau, lo) <= collision_probability(tau, hi) + 1e-12);
    }

    #[test]
    fn projection_is_linear(seed in 0u64..500, scale in 0.1f32..4.0) {
        let mut rng = Rng::new(seed);
        let proj = GaussianProjector::new(8, 3, &mut rng);
        let mut p = vec![0.0f32; 8];
        rng.fill_normal(&mut p);
        let scaled: Vec<f32> = p.iter().map(|v| v * scale).collect();
        let proj_p = proj.project(&p);
        let proj_scaled = proj.project(&scaled);
        for (a, b) in proj_p.iter().zip(&proj_scaled) {
            prop_assert!((a * scale - b).abs() <= 1e-3 * b.abs().max(1.0));
        }
    }

    #[test]
    fn projection_distances_scale_together(seed in 0u64..500) {
        // d(q, o) = 0 in the original space must stay 0 in the projected one.
        let mut rng = Rng::new(seed);
        let proj = GaussianProjector::new(12, 5, &mut rng);
        let mut p = vec![0.0f32; 12];
        rng.fill_normal(&mut p);
        let a = proj.project(&p);
        let b = proj.project(&p);
        prop_assert_eq!(euclidean(&a, &b), 0.0);
    }

    #[test]
    fn probe_sequence_sorted_valid_unique(
        offsets in proptest::collection::vec(0.01f64..3.99, 2..6),
        take in 1usize..40,
    ) {
        let widths = vec![4.0f64; offsets.len()];
        let seq = ProbeSequence::new(&offsets, &widths);
        let sets: Vec<_> = seq.take(take).collect();
        // scores non-decreasing
        for w in sets.windows(2) {
            prop_assert!(w[0].score <= w[1].score + 1e-9);
        }
        // no duplicate sets, no function perturbed twice
        let mut seen = std::collections::HashSet::new();
        for s in &sets {
            let mut key: Vec<(usize, i8)> =
                s.perturbations.iter().map(|p| (p.func, p.delta)).collect();
            key.sort_unstable();
            let mut funcs: Vec<usize> = key.iter().map(|k| k.0).collect();
            funcs.dedup();
            prop_assert_eq!(funcs.len(), key.len());
            prop_assert!(seen.insert(key));
        }
    }
}
