//! Snapshots taken mid-churn: an index that has absorbed an arbitrary
//! interleaving of inserts and deletes must save and load with its full
//! mutation history intact — dead rows, stable external ids, free-list
//! compaction — and the restored index must keep mutating correctly.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_metric::{euclidean, Dataset, Neighbor};
use pm_lsh_persist::{deserialize, serialize};
use pm_lsh_stats::Rng;
use std::collections::HashMap;

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

/// Exact k-NN over the model's live points — the oracle both the churned
/// original and its restored copy are measured against.
fn oracle_knn(model: &HashMap<u32, Vec<f32>>, q: &[f32], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = model
        .iter()
        .map(|(&id, p)| Neighbor::new(euclidean(q, p), id))
        .collect();
    all.sort();
    all.truncate(k);
    all
}

#[test]
fn snapshot_taken_mid_churn_round_trips_with_full_fidelity() {
    let d = 10;
    let data = blob(350, d, 501);
    let mut rng = Rng::new(502);
    let mut index = PmLsh::build(data.clone(), PmLshParams::default());
    // The model: external id -> vector, mirroring every mutation.
    let mut model: HashMap<u32, Vec<f32>> = data
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p.to_vec()))
        .collect();
    let mut live: Vec<u32> = (0..350).collect();
    let mut buf = vec![0.0f32; d];

    // Churn hard enough to exercise dead rows, reused tree slots and
    // non-contiguous external ids before the snapshot is cut.
    for _ in 0..200 {
        if rng.bernoulli(0.45) || live.is_empty() {
            rng.fill_normal(&mut buf);
            let id = index.insert(&buf);
            assert!(model.insert(id, buf.clone()).is_none());
            live.push(id);
        } else {
            let victim = live.swap_remove(rng.below(live.len()));
            model.remove(&victim);
            assert!(index.delete(victim));
        }
    }
    assert!(
        index.data().len() > index.len(),
        "churn must leave dead rows behind for the test to mean anything"
    );

    // Cut the snapshot mid-history and restore it.
    let bytes = serialize(&index);
    let restored = deserialize(&bytes).expect("mid-churn snapshot must load");
    restored.tree().verify_invariants().unwrap();

    // Identity: same live ids, same vectors behind them.
    let mut want: Vec<u32> = live.clone();
    want.sort_unstable();
    let mut got: Vec<u32> = restored.live_ids().to_vec();
    got.sort_unstable();
    assert_eq!(got, want);
    for &id in &live {
        assert_eq!(restored.data().point_id(id), model[&id].as_slice());
    }

    // Fidelity: the restored copy answers *bit-identically* to the
    // original (same neighbors, same work counters), and both track the
    // exact oracle at the usual post-churn recall bar — PM-LSH is
    // c-approximate, so oracle agreement is recall, not equality.
    let mut recall_sum = 0.0;
    let nq = 25u64;
    for qi in 0..nq {
        let mut q = vec![0.0f32; d];
        Rng::new(600 + qi).fill_normal(&mut q);
        let a = index.query(&q, 10);
        let b = restored.query(&q, 10);
        assert_eq!(a.neighbors, b.neighbors, "restored index diverged");
        assert_eq!(a.stats, b.stats, "restored index did different work");
        let truth: Vec<u32> = oracle_knn(&model, &q, 10).iter().map(|n| n.id).collect();
        recall_sum += b.neighbors.iter().filter(|n| truth.contains(&n.id)).count() as f64
            / truth.len() as f64;
    }
    let recall = recall_sum / nq as f64;
    assert!(
        recall >= 0.8,
        "restored-index recall {recall:.3} collapsed vs live-point oracle"
    );

    // The restored index is not a read-only artifact: keep churning both
    // copies in lock step and they stay interchangeable.
    let mut index = index;
    let mut restored = restored;
    for _ in 0..60 {
        if rng.bernoulli(0.5) || live.is_empty() {
            rng.fill_normal(&mut buf);
            let id_a = index.insert(&buf);
            let id_b = restored.insert(&buf);
            assert_eq!(id_a, id_b, "id allocation diverged after restore");
            assert!(model.insert(id_a, buf.clone()).is_none());
            live.push(id_a);
        } else {
            let victim = live.swap_remove(rng.below(live.len()));
            model.remove(&victim);
            assert!(index.delete(victim));
            assert!(restored.delete(victim));
        }
    }
    restored.tree().verify_invariants().unwrap();
    assert_eq!(index.len(), restored.len());
    for qi in 0..10u64 {
        let mut q = vec![0.0f32; d];
        Rng::new(700 + qi).fill_normal(&mut q);
        let a = index.query(&q, 5);
        let b = restored.query(&q, 5);
        assert_eq!(
            a.neighbors, b.neighbors,
            "restored index fell out of lock step after further mutations"
        );
        for n in &b.neighbors {
            assert!(model.contains_key(&n.id), "deleted id {} returned", n.id);
            assert_eq!(n.dist, euclidean(&q, &model[&n.id]));
        }
    }

    // And a snapshot of the mutated restore still round-trips.
    let again = deserialize(&serialize(&restored)).expect("second-generation snapshot");
    again.tree().verify_invariants().unwrap();
    assert_eq!(again.len(), restored.len());
}
