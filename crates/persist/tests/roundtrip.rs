//! Save→load→query parity: a snapshot round-trip must be invisible to
//! every query entry point — same neighbors, same distances, same
//! [`QueryStats`] counters, bit for bit.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::{PaperDataset, Scale};
use pm_lsh_persist::{deserialize, is_pmlsh_file, serialize, Snapshot};

fn audio_smoke() -> (PmLsh, pm_lsh_metric::Dataset) {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let index = PmLsh::build(generator.dataset(), PmLshParams::paper_defaults());
    (index, generator.queries(40))
}

fn assert_query_parity(original: &PmLsh, restored: &PmLsh, queries: &pm_lsh_metric::Dataset) {
    for (qi, q) in queries.iter().enumerate() {
        for k in [1usize, 10, 50] {
            let want = original.query(q, k);
            let got = restored.query(q, k);
            assert_eq!(got.neighbors, want.neighbors, "q{qi} k{k} neighbors");
            assert_eq!(got.stats, want.stats, "q{qi} k{k} stats");
        }
    }

    let base = original.select_rmin(10);
    assert_eq!(base.to_bits(), restored.select_rmin(10).to_bits(), "r_min");
    let mut hits = 0usize;
    for (qi, q) in queries.iter().enumerate().take(20) {
        for scale in [0.25f64, 0.5, 1.0, 2.0] {
            let r = base * scale;
            let want = original.query_bc(q, r);
            let got = restored.query_bc(q, r);
            assert_eq!(got, want, "q{qi} r{r} ball cover");
            hits += want.is_some() as usize;
        }
    }
    assert!(hits > 0, "ball-cover parity never exercised a hit");

    let want = original.query_batch(queries.view(), 10, 4);
    let got = restored.query_batch(queries.view(), 10, 4);
    assert_eq!(got.len(), want.len());
    for (qi, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g.neighbors, w.neighbors, "batch q{qi} neighbors");
        assert_eq!(g.stats, w.stats, "batch q{qi} stats");
    }
}

#[test]
fn in_memory_round_trip_is_bit_identical() {
    let (index, queries) = audio_smoke();
    let restored = deserialize(&serialize(&index)).expect("round trip");
    assert_eq!(restored.len(), index.len());
    restored
        .tree()
        .verify_invariants()
        .expect("tree invariants");
    assert_query_parity(&index, &restored, &queries);
}

#[test]
fn serialization_is_deterministic_and_stable() {
    let (index, _) = audio_smoke();
    let first = serialize(&index);
    assert_eq!(first, serialize(&index), "same index, same bytes");
    let reloaded = deserialize(&first).expect("round trip");
    assert_eq!(
        first,
        serialize(&reloaded),
        "a loaded snapshot re-saves byte-identically"
    );
}

#[test]
fn file_round_trip_via_extension_trait() {
    let (index, queries) = audio_smoke();
    let path = std::env::temp_dir().join(format!(
        "pmlsh-roundtrip-{}-{:x}.pmlsh",
        std::process::id(),
        index.len()
    ));
    let report = index.save(&path).expect("save");
    assert_eq!(report.points, index.len() as u64);
    assert_eq!(report.bytes, std::fs::metadata(&path).unwrap().len());
    assert!(is_pmlsh_file(&path));

    let restored = PmLsh::load(&path).expect("load");
    assert_query_parity(&index, &restored, &queries);
    std::fs::remove_file(&path).unwrap();
    assert!(!is_pmlsh_file(&path), "missing file never sniffs as .pmlsh");
}

#[test]
fn round_trip_preserves_mutation_ability() {
    // A restored index is a first-class citizen: it accepts further
    // inserts/deletes and keeps answering correctly.
    let (index, queries) = audio_smoke();
    let mut restored = deserialize(&serialize(&index)).expect("round trip");
    let probe = queries.point(0).to_vec();
    let id = restored.insert(&probe);
    let hit = restored.query(&probe, 1).neighbors[0];
    assert_eq!(hit.id, id, "fresh insert is its own nearest neighbor");
    assert!(restored.delete(id));
    restored
        .tree()
        .verify_invariants()
        .expect("tree invariants");
}
