//! Corrupt-input hardening: every malformed `.pmlsh` byte stream must map
//! to a typed [`PersistError`] — never a panic, never a silently wrong
//! index. The tamper helpers below re-sign checksums so each test reaches
//! exactly the validation layer it targets.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::{PaperDataset, Scale};
use pm_lsh_persist::{crc32, deserialize, serialize, PersistError, FORMAT_VERSION, MAGIC};

fn snapshot() -> Vec<u8> {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let index = PmLsh::build(generator.dataset(), PmLshParams::paper_defaults());
    serialize(&index)
}

/// Byte offset where a section's payload starts, plus its length.
fn section_bounds(bytes: &[u8], section_id: u32) -> (usize, usize) {
    let mut pos = 12; // magic + version
    loop {
        let id = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        if id == section_id {
            return (pos + 12, len);
        }
        pos += 12 + len + 4;
    }
}

/// Recomputes every section CRC and the whole-file CRC, so a tamper test
/// can target validation layers *behind* the checksums.
fn resign(bytes: &mut [u8]) {
    let mut pos = 12;
    let body_end = bytes.len() - 4;
    while pos < body_end {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let crc = crc32(&bytes[pos + 12..pos + 12 + len]);
        bytes[pos + 12 + len..pos + 16 + len].copy_from_slice(&crc.to_le_bytes());
        pos += 16 + len;
    }
    let crc = crc32(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
}

/// Recomputes only the whole-file CRC, leaving section CRCs untouched.
fn resign_file_only(bytes: &mut [u8]) {
    let body_end = bytes.len() - 4;
    let crc = crc32(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn truncation_at_every_layer() {
    let good = snapshot();
    // Representative cut points: empty, mid-magic, mid-version, mid-header,
    // mid-payload, and one byte short of complete.
    for cut in [0usize, 5, 10, 40, good.len() / 2, good.len() - 1] {
        let err = deserialize(&good[..cut]).expect_err("truncated must fail");
        assert!(
            matches!(err, PersistError::Truncated | PersistError::FileCrc),
            "cut at {cut} gave {err:?}"
        );
    }
    // Cuts that happen before the trailing CRC exists are Truncated
    // specifically, not a checksum complaint.
    assert!(matches!(
        deserialize(&good[..5]),
        Err(PersistError::Truncated)
    ));
    assert!(matches!(deserialize(&[]), Err(PersistError::Truncated)));
}

#[test]
fn wrong_magic() {
    let mut bad = snapshot();
    bad[0] ^= 0xFF;
    assert!(matches!(deserialize(&bad), Err(PersistError::BadMagic)));
    // A different file format entirely (say, fvecs) also reports BadMagic.
    let fvecs = [192u32.to_le_bytes().as_slice(), &[0u8; 768]].concat();
    assert!(matches!(deserialize(&fvecs), Err(PersistError::BadMagic)));
}

#[test]
fn future_version_is_rejected() {
    let mut bad = snapshot();
    bad[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    resign(&mut bad);
    match deserialize(&bad) {
        Err(PersistError::UnsupportedVersion(v)) => assert_eq!(v, FORMAT_VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn bit_flip_fails_the_file_checksum() {
    let good = snapshot();
    // Flip one bit in a spread of positions; all must fail CRC (or the
    // magic/version gate for the first 12 bytes).
    for pos in [
        12usize,
        100,
        good.len() / 3,
        good.len() / 2,
        good.len() - 20,
    ] {
        let mut bad = good.clone();
        bad[pos] ^= 0x10;
        let err = deserialize(&bad).expect_err("bit flip must fail");
        assert!(
            matches!(err, PersistError::FileCrc),
            "flip at {pos} gave {err:?}"
        );
    }
}

#[test]
fn bit_flip_in_each_section_fails_its_section_checksum() {
    let good = snapshot();
    for section in 1u32..=8 {
        let (start, len) = section_bounds(&good, section);
        assert!(len > 0, "section {section} is empty");
        let mut bad = good.clone();
        bad[start + len / 2] ^= 0x01;
        resign_file_only(&mut bad);
        match deserialize(&bad) {
            Err(PersistError::SectionCrc { section: s }) => assert_eq!(s, section),
            other => panic!("section {section} flip gave {other:?}"),
        }
    }
}

#[test]
fn dimension_mismatch_is_corrupt_not_panic() {
    // Tamper the header's declared dimensionality: the projection matrix
    // and point store no longer agree with it.
    let good = snapshot();
    let (hdr, _) = section_bounds(&good, 1);
    let mut bad = good.clone();
    let d = u64::from_le_bytes(bad[hdr..hdr + 8].try_into().unwrap());
    bad[hdr..hdr + 8].copy_from_slice(&(d + 1).to_le_bytes());
    resign(&mut bad);
    assert!(matches!(deserialize(&bad), Err(PersistError::Corrupt(_))));

    // Same for the projected dimensionality m (header offset 16).
    let mut bad = good.clone();
    bad[hdr + 16..hdr + 20].copy_from_slice(&7u32.to_le_bytes());
    resign(&mut bad);
    assert!(matches!(deserialize(&bad), Err(PersistError::Corrupt(_))));
}

#[test]
fn zero_point_snapshot_is_empty_index() {
    let good = snapshot();
    let (hdr, _) = section_bounds(&good, 1);
    // n_rows lives at header offset 8, live at offset 24.
    for offset in [8usize, 24] {
        let mut bad = good.clone();
        bad[hdr + offset..hdr + offset + 8].copy_from_slice(&0u64.to_le_bytes());
        resign(&mut bad);
        assert!(
            matches!(deserialize(&bad), Err(PersistError::EmptyIndex)),
            "zeroing header offset {offset} must report EmptyIndex"
        );
    }
}

#[test]
fn hostile_header_values_never_panic() {
    let good = snapshot();
    let (hdr, hdr_len) = section_bounds(&good, 1);
    // Overwrite each 4-byte window of the header with extreme values and
    // demand a typed error or a successful load — never a panic and never
    // an index that disagrees with its own structure checks.
    for off in (0..hdr_len.saturating_sub(4)).step_by(4) {
        for pattern in [[0xFFu8; 4], [0u8; 4], [0x80, 0x00, 0x00, 0x7F]] {
            let mut bad = good.clone();
            bad[hdr + off..hdr + off + 4].copy_from_slice(&pattern);
            resign(&mut bad);
            if let Ok(index) = deserialize(&bad) {
                index
                    .tree()
                    .verify_invariants()
                    .expect("accepted load must be sound");
            }
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bad = snapshot();
    bad.extend_from_slice(b"extra");
    let err = deserialize(&bad).expect_err("trailing bytes must fail");
    assert!(
        matches!(err, PersistError::FileCrc | PersistError::Corrupt(_)),
        "got {err:?}"
    );
}

#[test]
fn magic_constant_matches_spec() {
    assert_eq!(&MAGIC, b"PMLSHSNP");
    let good = snapshot();
    assert_eq!(&good[..8], b"PMLSHSNP");
}
