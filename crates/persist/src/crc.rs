//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every `.pmlsh` section and the file as a whole. Hand-rolled
//! because the workspace is dependency-free by design; the tables are built
//! at compile time.
//!
//! Snapshot loading checksums every byte of the file twice (once for the
//! whole-file CRC, once per section), so this is the hot loop of a restore
//! and it is dispatched like the distance kernels in `pm-lsh-metric`:
//!
//! * **portable** — a slice-by-8 table kernel (eight 256-entry tables,
//!   one 64-bit load per step) — roughly an order of magnitude faster
//!   than the classic byte-at-a-time loop;
//! * **x86-64 with PCLMULQDQ + SSE4.1** (runtime-detected) — the Intel
//!   carry-less-multiply folding scheme: four 128-bit lanes folded per
//!   64-byte block, then reduced 512 → 128 → 64 → 32 bits via Barrett
//!   reduction. Multiple GB/s on any recent core.
//!
//! Both kernels compute the *same function* — the checksum is part of the
//! on-disk format, so hardware can only change speed, never a single bit
//! of output. Setting `PMLSH_FORCE_SCALAR=1` pins the portable kernel
//! (read once, at first use), matching the metric crate's convention.

const POLY: u32 = 0xEDB8_8320;

/// Eight tables for slice-by-8: `TABLES[k][b]` is the CRC contribution of
/// byte `b` seen `k` positions before the end of an 8-byte block.
/// `TABLES[0]` is the classic single-byte table.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Portable slice-by-8 kernel: folds eight bytes per iteration with one
/// 64-bit load and eight independent table lookups (no loop-carried
/// table-to-table dependency inside the block).
fn update_slice8(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

// ---------------------------------------------------------------------------
// x86-64: PCLMULQDQ folding (runtime-detected).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // intrinsics kernel — the crate is otherwise safe code
mod clmul {
    use core::arch::x86_64::*;

    // Folding constants for the reflected IEEE polynomial (Intel's "Fast
    // CRC Computation Using PCLMULQDQ" scheme): K1/K2 fold 512 bits ahead,
    // K3/K4 fold 128 bits, K5 folds 64 → 32 bits, and P/MU drive the final
    // Barrett reduction back to a 32-bit remainder.
    const K1: i64 = 0x0001_5444_2bd4; // x^(4·128+32) mod P
    const K2: i64 = 0x0001_c6e4_1596; // x^(4·128-32) mod P
    const K3: i64 = 0x0001_7519_97d0; // x^(128+32) mod P
    const K4: i64 = 0x0000_ccaa_009e; // x^(128-32) mod P
    const K5: i64 = 0x0001_63cd_6124; // x^64 mod P
    const P: i64 = 0x0001_db71_0641; // the polynomial, bit-reflected
    const MU: i64 = 0x0001_f701_1641; // floor(x^64 / P), bit-reflected

    /// Folds `bytes` into `crc`. Requires `bytes.len() >= 64`; processes
    /// the longest prefix that is a multiple of 16 bytes and returns the
    /// new state plus the unprocessed tail for the table kernel.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports PCLMULQDQ and SSE4.1.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub(super) unsafe fn update(crc: u32, bytes: &[u8]) -> (u32, &[u8]) {
        debug_assert!(bytes.len() >= 64);
        let (body, tail) = bytes.split_at(bytes.len() & !15);
        let mut p = body.as_ptr() as *const __m128i;
        let mut len = body.len();

        // Four independent 128-bit lanes; the incoming state XORs into the
        // low 32 bits of the first (reflected domain: lowest byte first).
        let mut x1 = _mm_xor_si128(_mm_loadu_si128(p), _mm_cvtsi32_si128(crc as i32));
        let mut x2 = _mm_loadu_si128(p.add(1));
        let mut x3 = _mm_loadu_si128(p.add(2));
        let mut x4 = _mm_loadu_si128(p.add(3));
        p = p.add(4);
        len -= 64;

        let k1k2 = _mm_set_epi64x(K2, K1);
        while len >= 64 {
            let y1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
            let y2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
            let y3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
            let y4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
            x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
            x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
            x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, y1), _mm_loadu_si128(p));
            x2 = _mm_xor_si128(_mm_xor_si128(x2, y2), _mm_loadu_si128(p.add(1)));
            x3 = _mm_xor_si128(_mm_xor_si128(x3, y3), _mm_loadu_si128(p.add(2)));
            x4 = _mm_xor_si128(_mm_xor_si128(x4, y4), _mm_loadu_si128(p.add(3)));
            p = p.add(4);
            len -= 64;
        }

        // Fold the four lanes into one.
        let k3k4 = _mm_set_epi64x(K4, K3);
        for next in [x2, x3, x4] {
            let y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, y), next);
        }

        // Fold any remaining whole 16-byte blocks.
        while len >= 16 {
            let y = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, y), _mm_loadu_si128(p));
            p = p.add(1);
            len -= 16;
        }
        debug_assert_eq!(len, 0);

        // Reduce 128 → 64 bits.
        let mask32 = _mm_set_epi32(0, -1, 0, -1);
        let y = _mm_clmulepi64_si128(x1, k3k4, 0x10);
        x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), y);
        let k5 = _mm_set_epi64x(0, K5);
        let hi = _mm_srli_si128(x1, 4);
        x1 = _mm_clmulepi64_si128(_mm_and_si128(x1, mask32), k5, 0x00);
        x1 = _mm_xor_si128(x1, hi);

        // Barrett reduction 64 → 32 bits.
        let pmu = _mm_set_epi64x(MU, P);
        let mut t = _mm_and_si128(x1, mask32);
        t = _mm_clmulepi64_si128(t, pmu, 0x10);
        t = _mm_and_si128(t, mask32);
        t = _mm_clmulepi64_si128(t, pmu, 0x00);
        x1 = _mm_xor_si128(x1, t);

        (_mm_extract_epi32(x1, 1) as u32, tail)
    }
}

// ---------------------------------------------------------------------------
// Dispatch (detected once, then cached — same shape as pm-lsh-metric).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod dispatch {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNINIT: u8 = 0;
    const PORTABLE: u8 = 1;
    const CLMUL: u8 = 2;

    static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

    /// `true` when the PCLMULQDQ kernel should run (cached after first use).
    #[inline]
    pub(super) fn clmul_active() -> bool {
        match LEVEL.load(Ordering::Relaxed) {
            CLMUL => true,
            PORTABLE => false,
            _ => detect(),
        }
    }

    #[cold]
    fn detect() -> bool {
        let forced_scalar = match std::env::var("PMLSH_FORCE_SCALAR") {
            Ok(v) => !v.is_empty() && v != "0",
            Err(_) => false,
        };
        let use_clmul = !forced_scalar
            && std::is_x86_feature_detected!("pclmulqdq")
            && std::is_x86_feature_detected!("sse4.1");
        LEVEL.store(if use_clmul { CLMUL } else { PORTABLE }, Ordering::Relaxed);
        use_clmul
    }
}

/// Folds `bytes` into the raw (pre-finalize) CRC state.
fn update_dispatch(crc: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    // The folding kernel needs at least 64 bytes to fill its four lanes;
    // shorter inputs go straight to the table kernel.
    if bytes.len() >= 64 && dispatch::clmul_active() {
        // SAFETY: PCLMULQDQ + SSE4.1 were runtime-detected above.
        #[allow(unsafe_code)]
        let (folded, tail) = unsafe { clmul::update(crc, bytes) };
        return update_slice8(folded, tail);
    }
    update_slice8(crc, bytes)
}

/// A streaming CRC-32 accumulator.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update_dispatch(self.state, bytes);
    }

    /// Finishes and returns the checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic one-byte-at-a-time loop — the reference definition both
    /// production kernels must reproduce bit-for-bit.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // The classic check value for this polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn kernels_match_reference_on_every_length() {
        // Cover both sides of the 64-byte folding threshold, every 16-byte
        // block boundary near it, and lengths with every tail size 0..16.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in (0..200).chain([255, 256, 1023, 1024, 4095, 4096]) {
            let expect = crc32_reference(&data[..len]);
            assert_eq!(
                crc32(&data[..len]),
                expect,
                "dispatch diverged at len {len}"
            );
            let mut portable = 0xFFFF_FFFFu32;
            portable = update_slice8(portable, &data[..len]);
            assert_eq!(
                portable ^ 0xFFFF_FFFF,
                expect,
                "slice-by-8 diverged at len {len}"
            );
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 + 7) as u8).collect();
        // Chunk sizes straddling the folding kernel's 64-byte threshold:
        // the split state must carry across updates bit-exactly.
        for chunk in [1usize, 5, 16, 63, 64, 65, 128, 333] {
            let mut crc = Crc32::new();
            for c in data.chunks(chunk) {
                crc.update(c);
            }
            assert_eq!(crc.finish(), crc32(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0xA5u8; 64];
        let base = crc32(&data);
        data[37] ^= 0x04;
        assert_ne!(crc32(&data), base);
    }
}
