//! Persistent `.pmlsh` index snapshots.
//!
//! This crate defines a versioned, little-endian on-disk format for a fully
//! built [`PmLsh`] index — projection matrix, raw point store, projected
//! points, PM-tree node arena and id maps — so a serving process can restart
//! and answer queries *bit-identically* to the index it saved, without
//! re-deriving hashes or rebuilding the tree. Every section carries a CRC-32
//! and the file as a whole carries one more, so torn writes and bit rot are
//! detected at load time instead of surfacing as wrong answers.
//!
//! # File layout (format version 1)
//!
//! ```text
//! magic      8 bytes   b"PMLSHSNP"
//! version    u32 LE    1
//! section ×8           fixed order: HEADER, PROJ, DATA, PROJ_POINTS,
//!                      PIVOTS, NODES, IDMAPS, ECDF
//! file crc   u32 LE    CRC-32 of every preceding byte
//! ```
//!
//! Each section is `id: u32 | payload_len: u64 | payload | crc32(payload):
//! u32`, all little-endian. The full byte layout of each payload is
//! documented in [`mod@format`]. The layout is fixed-offset within each section,
//! so a future version can memory-map the large arrays in place.
//!
//! # What round-trips, what is recomputed
//!
//! Stored: user parameters, the Gaussian projection matrix, the raw dataset
//! (including tombstoned rows — external ids are stable row indexes), the
//! projected live points, the free-list-compacted PM-tree and the sampled
//! distance distribution. Recomputed at load: the Eq. 10 derived parameters
//! and the memoized `r_min` table, both deterministic functions of the
//! stored state — which is what makes save→load→query parity *bitwise*, down
//! to the `QueryStats` counters.
//!
//! # Example
//!
//! ```no_run
//! use pm_lsh_persist::Snapshot;
//!
//! # fn demo(index: pm_lsh_core::PmLsh) -> Result<(), pm_lsh_persist::PersistError> {
//! let report = index.save("audio.pmlsh")?;
//! println!("wrote {} bytes", report.bytes);
//! let restored = pm_lsh_core::PmLsh::load("audio.pmlsh")?;
//! # let _ = restored; Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Parsing and assembly are entirely safe code; the single exception is the
// runtime-detected PCLMULQDQ checksum kernel in `crc`, which opts back in
// with a scoped `allow` the way the SIMD kernels in `pm-lsh-metric` do.
#![deny(unsafe_code)]

use std::fmt;
use std::io::Write as _;
use std::path::Path;

use pm_lsh_core::PmLsh;

pub mod crc;
pub mod format;
pub mod manifest;

pub use crc::{crc32, Crc32};
pub use format::{deserialize, serialize, FORMAT_VERSION, MAGIC};
pub use manifest::{
    is_manifest_file, load_sharded, save_sharded, MANIFEST_MAGIC, MANIFEST_VERSION,
};

/// Why a `.pmlsh` snapshot could not be saved or loaded.
///
/// Every malformed input maps to a typed error — a corrupt file must never
/// panic the loader, whether it arrives via [`PmLsh::load`](Snapshot::load)
/// or over the wire through `ATTACH`.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the `.pmlsh` magic bytes.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ends before the declared structure does.
    Truncated,
    /// A section's payload does not match its stored CRC-32.
    SectionCrc {
        /// Id of the failing section (see the [`mod@format`] module docs).
        section: u32,
    },
    /// The whole-file CRC-32 does not match the file contents.
    FileCrc,
    /// The file is structurally well-formed but internally inconsistent.
    Corrupt(String),
    /// The snapshot declares zero points; an index cannot be empty.
    EmptyIndex,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a .pmlsh snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::SectionCrc { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            PersistError::FileCrc => write!(f, "whole-file checksum mismatch"),
            PersistError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            PersistError::EmptyIndex => write!(f, "snapshot contains no points"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// What [`save`] wrote.
#[derive(Clone, Copy, Debug)]
pub struct SaveReport {
    /// Total size of the snapshot file in bytes.
    pub bytes: u64,
    /// Number of live (queryable) points in the saved index.
    pub points: u64,
}

/// Serializes `index` and atomically writes it to `path`.
///
/// The snapshot is first written to a `.tmp.<pid>` sibling and then renamed
/// into place, so a crash mid-save never leaves a half-written file under
/// the target name. The caller holds only a shared reference: saving a
/// pinned `Arc<PmLsh>` snapshot never blocks concurrent readers.
pub fn save(index: &PmLsh, path: impl AsRef<Path>) -> Result<SaveReport, PersistError> {
    let path = path.as_ref();
    let bytes = serialize(index);
    let tmp = {
        let mut name = path.as_os_str().to_os_string();
        name.push(format!(".tmp.{}", std::process::id()));
        std::path::PathBuf::from(name)
    };
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::Io(e));
    }
    Ok(SaveReport {
        bytes: bytes.len() as u64,
        points: index.len() as u64,
    })
}

/// Reads a `.pmlsh` snapshot from `path` and reassembles the index.
pub fn load(path: impl AsRef<Path>) -> Result<PmLsh, PersistError> {
    let bytes = std::fs::read(path)?;
    deserialize(&bytes)
}

/// `true` if `path` starts with the `.pmlsh` magic bytes.
///
/// Only sniffs the first 8 bytes — cheap enough to auto-detect snapshot
/// files next to fvecs/csv inputs. I/O errors and short files report
/// `false`.
pub fn is_pmlsh_file(path: impl AsRef<Path>) -> bool {
    use std::io::Read as _;
    let mut head = [0u8; 8];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && head == MAGIC,
        Err(_) => false,
    }
}

/// Method-syntax access to snapshot save/load: `index.save(path)` and
/// `PmLsh::load(path)`.
pub trait Snapshot: Sized {
    /// Atomically writes a `.pmlsh` snapshot of `self` to `path`.
    fn save(&self, path: impl AsRef<Path>) -> Result<SaveReport, PersistError>;
    /// Loads a `.pmlsh` snapshot from `path`.
    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError>;
}

impl Snapshot for PmLsh {
    fn save(&self, path: impl AsRef<Path>) -> Result<SaveReport, PersistError> {
        save(self, path)
    }

    fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        load(path)
    }
}
