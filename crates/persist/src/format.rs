//! The `.pmlsh` byte format: [`serialize`] and [`deserialize`].
//!
//! Everything is little-endian. The file is `MAGIC | version u32 | eight
//! sections | whole-file crc32 u32`, each section being `id u32 |
//! payload_len u64 | payload | crc32(payload) u32`. Sections appear in this
//! fixed order:
//!
//! | id | name        | payload                                                        |
//! |----|-------------|----------------------------------------------------------------|
//! | 1  | HEADER      | dimensions, counts and build parameters (see below)            |
//! | 2  | PROJ        | Gaussian projection matrix, `m·d` f32 row-major                |
//! | 3  | DATA        | raw point store, `n_rows·d` f32 (tombstoned rows included)     |
//! | 4  | PROJ_POINTS | projected live points, `live·m` f32                            |
//! | 5  | PIVOTS      | the `s` global pivots, `s·m` f32                               |
//! | 6  | NODES       | compacted PM-tree arena, variable-length records               |
//! | 7  | IDMAPS      | `live` external ids (u32) then `live` holding-leaf ids (u32)   |
//! | 8  | ECDF        | sampled distance distribution, `ecdf_len` f64 ascending        |
//!
//! HEADER payload, in order: `d u64, n_rows u64, m u32, s u32, live u64,
//! c f64, alpha1 f64, beta_flag u8, beta f64, rmin_shrink f64,
//! capacity u64, pivot_sample u64, distance_samples u64, seed u64,
//! build_dist_computations u64, node_count u64, root u32, ecdf_len u64`.
//!
//! NODES payload, per node: `tag u8` (0 = leaf, 1 = inner),
//! `entry_count u32`, then the entries. An inner entry is `center m·f32,
//! radius f32, parent_dist f32, child u32, rings s·(min f32, max f32)`; a
//! leaf entry is `internal u32, external u32, parent_dist f32,
//! pivot_dists s·f32`.

use std::sync::Arc;

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_hash::GaussianProjector;
use pm_lsh_metric::Dataset;
use pm_lsh_pmtree::{InnerEntry, LeafEntry, PmTree, PmTreeConfig, PmTreeParts, RawNode, Ring};
use pm_lsh_stats::{chi2_cdf, chi2_upper_quantile, Ecdf};

use crate::crc::crc32;
use crate::PersistError;

/// First 8 bytes of every `.pmlsh` file.
pub const MAGIC: [u8; 8] = *b"PMLSHSNP";

/// The snapshot format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

const SEC_HEADER: u32 = 1;
const SEC_PROJ: u32 = 2;
const SEC_DATA: u32 = 3;
const SEC_PROJ_POINTS: u32 = 4;
const SEC_PIVOTS: u32 = 5;
const SEC_NODES: u32 = 6;
const SEC_IDMAPS: u32 = 7;
const SEC_ECDF: u32 = 8;

const SECTION_ORDER: [u32; 8] = [
    SEC_HEADER,
    SEC_PROJ,
    SEC_DATA,
    SEC_PROJ_POINTS,
    SEC_PIVOTS,
    SEC_NODES,
    SEC_IDMAPS,
    SEC_ECDF,
];

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    out.reserve(vs.len() * 4);
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_section(out: &mut Vec<u8>, id: u32, payload: &[u8]) {
    put_u32(out, id);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Serializes `index` into an in-memory `.pmlsh` image.
///
/// Deterministic: the same index always produces the same bytes (the tree
/// export compacts the node free list with a stable renumbering, and no
/// hash-map iteration order leaks into the output).
pub fn serialize(index: &PmLsh) -> Vec<u8> {
    let parts = index.tree().to_parts();
    let params = index.params();
    let data = index.data();
    let ecdf = index.distance_distribution().sorted_samples();
    let live = parts.externals.len();

    let mut header = Vec::with_capacity(128);
    put_u64(&mut header, data.dim() as u64);
    put_u64(&mut header, data.len() as u64);
    put_u32(&mut header, params.m);
    put_u32(&mut header, parts.cfg.num_pivots as u32);
    put_u64(&mut header, live as u64);
    put_f64(&mut header, params.c);
    put_f64(&mut header, params.alpha1);
    header.push(params.beta_override.is_some() as u8);
    put_f64(&mut header, params.beta_override.unwrap_or(0.0));
    put_f64(&mut header, params.rmin_shrink);
    put_u64(&mut header, parts.cfg.capacity as u64);
    put_u64(&mut header, parts.cfg.pivot_sample as u64);
    put_u64(&mut header, params.distance_samples as u64);
    put_u64(&mut header, params.seed);
    put_u64(&mut header, parts.build_dist_computations);
    put_u64(&mut header, parts.nodes.len() as u64);
    put_u32(&mut header, parts.root);
    put_u64(&mut header, ecdf.len() as u64);

    let mut proj = Vec::new();
    put_f32s(&mut proj, index.projector().coeffs_flat());

    let mut raw = Vec::new();
    put_f32s(&mut raw, data.as_flat());

    let mut proj_points = Vec::new();
    put_f32s(&mut proj_points, parts.points.as_flat());

    let mut pivots = Vec::new();
    for p in &parts.pivots {
        put_f32s(&mut pivots, p);
    }

    let mut nodes = Vec::new();
    for node in &parts.nodes {
        match node {
            RawNode::Leaf(entries) => {
                nodes.push(0u8);
                put_u32(&mut nodes, entries.len() as u32);
                for e in entries {
                    put_u32(&mut nodes, e.internal);
                    put_u32(&mut nodes, e.external);
                    put_f32(&mut nodes, e.parent_dist);
                    put_f32s(&mut nodes, &e.pivot_dists);
                }
            }
            RawNode::Inner(entries) => {
                nodes.push(1u8);
                put_u32(&mut nodes, entries.len() as u32);
                for e in entries {
                    put_f32s(&mut nodes, &e.center);
                    put_f32(&mut nodes, e.radius);
                    put_f32(&mut nodes, e.parent_dist);
                    put_u32(&mut nodes, e.child);
                    for ring in e.rings.iter() {
                        put_f32(&mut nodes, ring.min);
                        put_f32(&mut nodes, ring.max);
                    }
                }
            }
        }
    }

    let mut idmaps = Vec::with_capacity(live * 8);
    for &ext in &parts.externals {
        put_u32(&mut idmaps, ext);
    }
    for &leaf in &parts.leaf_of {
        put_u32(&mut idmaps, leaf);
    }

    let mut ecdf_bytes = Vec::with_capacity(ecdf.len() * 8);
    for &v in ecdf {
        put_f64(&mut ecdf_bytes, v);
    }

    let mut out = Vec::with_capacity(
        32 + header.len()
            + proj.len()
            + raw.len()
            + proj_points.len()
            + pivots.len()
            + nodes.len()
            + idmaps.len()
            + ecdf_bytes.len()
            + 8 * 16,
    );
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_section(&mut out, SEC_HEADER, &header);
    put_section(&mut out, SEC_PROJ, &proj);
    put_section(&mut out, SEC_DATA, &raw);
    put_section(&mut out, SEC_PROJ_POINTS, &proj_points);
    put_section(&mut out, SEC_PIVOTS, &pivots);
    put_section(&mut out, SEC_NODES, &nodes);
    put_section(&mut out, SEC_IDMAPS, &idmaps);
    put_section(&mut out, SEC_ECDF, &ecdf_bytes);
    let file_crc = crc32(&out);
    put_u32(&mut out, file_crc);
    out
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over untrusted bytes; every overrun is a
/// [`PersistError::Truncated`], never a slice panic.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if n > self.remaining() {
            return Err(PersistError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, PersistError> {
        let bytes = self.take(n.checked_mul(4).ok_or(PersistError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn corrupt(why: impl Into<String>) -> PersistError {
    PersistError::Corrupt(why.into())
}

fn to_usize(v: u64, what: &str) -> Result<usize, PersistError> {
    usize::try_from(v).map_err(|_| corrupt(format!("{what} {v} overflows this platform")))
}

/// `a * b` as an element count, with overflow mapped to a typed error —
/// hostile headers can declare counts whose product exceeds `usize`.
fn counted(a: usize, b: usize) -> Result<usize, PersistError> {
    a.checked_mul(b)
        .ok_or_else(|| corrupt(format!("element count {a}x{b} overflows")))
}

/// The HEADER section, decoded.
struct Header {
    d: usize,
    n_rows: usize,
    m: usize,
    s: usize,
    live: usize,
    params: PmLshParams,
    build_dist_computations: u64,
    node_count: usize,
    root: u32,
    ecdf_len: usize,
}

fn parse_header(payload: &[u8]) -> Result<Header, PersistError> {
    let mut r = ByteReader::new(payload);
    let d = to_usize(r.u64()?, "dimension")?;
    let n_rows = to_usize(r.u64()?, "row count")?;
    let m = r.u32()?;
    let s = to_usize(r.u32()? as u64, "pivot count")?;
    let live = to_usize(r.u64()?, "live count")?;
    let c = r.f64()?;
    let alpha1 = r.f64()?;
    let beta_flag = r.u8()?;
    let beta = r.f64()?;
    let rmin_shrink = r.f64()?;
    let capacity = to_usize(r.u64()?, "node capacity")?;
    let pivot_sample = to_usize(r.u64()?, "pivot sample size")?;
    let distance_samples = to_usize(r.u64()?, "distance sample count")?;
    let seed = r.u64()?;
    let build_dist_computations = r.u64()?;
    let node_count = to_usize(r.u64()?, "node count")?;
    let root = r.u32()?;
    let ecdf_len = to_usize(r.u64()?, "ECDF sample count")?;
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes in header"));
    }

    if n_rows == 0 || live == 0 {
        return Err(PersistError::EmptyIndex);
    }
    if d == 0 {
        return Err(corrupt("zero dimension"));
    }
    if m == 0 {
        return Err(corrupt("zero hash functions"));
    }
    if live > n_rows {
        return Err(corrupt(format!(
            "{live} live points but only {n_rows} rows"
        )));
    }
    if !(c.is_finite() && c > 1.0) {
        return Err(corrupt(format!(
            "approximation ratio c={c} not in (1, inf)"
        )));
    }
    // `1.0 - alpha1` must stay strictly inside (0,1) after rounding: a
    // subnormal alpha1 rounds it to exactly 1.0, which the χ² quantile
    // rejects with an assert. Catch that here as a typed error.
    if !(alpha1.is_finite() && alpha1 > 0.0 && alpha1 < 1.0 && 1.0 - alpha1 < 1.0) {
        return Err(corrupt(format!("alpha1={alpha1} not in (0, 1)")));
    }
    if beta_flag > 1 {
        return Err(corrupt(format!("beta flag {beta_flag} not 0 or 1")));
    }
    // Re-run the Eq. 10 derivation up front: `PmLshParams::derive` asserts
    // its outputs are sane, and a checksum-valid but hand-crafted header
    // must fail with a typed error, not a panic.
    let t_sq = chi2_upper_quantile(alpha1, m);
    if !(t_sq.is_finite() && t_sq > 0.0) {
        return Err(corrupt(format!("parameters derive t²={t_sq}")));
    }
    let beta_override = if beta_flag == 1 {
        if !(beta.is_finite() && beta > 0.0 && beta < 1.0) {
            return Err(corrupt(format!("beta override {beta} not in (0, 1)")));
        }
        Some(beta)
    } else {
        let derived_beta = 2.0 * chi2_cdf(t_sq / (c * c), m);
        if !(derived_beta.is_finite() && derived_beta > 0.0 && derived_beta < 1.0) {
            return Err(corrupt(format!(
                "parameters derive beta={derived_beta}, outside (0, 1)"
            )));
        }
        None
    };
    if !(rmin_shrink.is_finite() && rmin_shrink > 0.0) {
        return Err(corrupt(format!(
            "rmin shrink factor {rmin_shrink} not positive"
        )));
    }
    if capacity < 2 {
        return Err(corrupt(format!("node capacity {capacity} below 2")));
    }
    if node_count == 0 {
        return Err(corrupt("empty node arena"));
    }
    if (root as usize) >= node_count {
        return Err(corrupt(format!(
            "root {root} outside {node_count}-node arena"
        )));
    }
    if ecdf_len == 0 {
        return Err(corrupt("distance distribution has no samples"));
    }

    Ok(Header {
        d,
        n_rows,
        m: m as usize,
        s,
        live,
        params: PmLshParams {
            m,
            c,
            alpha1,
            beta_override,
            rmin_shrink,
            tree: PmTreeConfig {
                capacity,
                num_pivots: s,
                pivot_sample,
            },
            distance_samples,
            seed,
        },
        build_dist_computations,
        node_count,
        root,
        ecdf_len,
    })
}

/// Checks that `payload` holds exactly `count` elements of `elem_size`
/// bytes, then returns it.
fn sized_section<'a>(
    payload: &'a [u8],
    count: usize,
    elem_size: usize,
    what: &str,
) -> Result<&'a [u8], PersistError> {
    let want = count
        .checked_mul(elem_size)
        .ok_or_else(|| corrupt(format!("{what} size overflows")))?;
    if payload.len() != want {
        return Err(corrupt(format!(
            "{what} section holds {} bytes, header implies {want}",
            payload.len()
        )));
    }
    Ok(payload)
}

fn f32s_exact(payload: &[u8], count: usize, what: &str) -> Result<Vec<f32>, PersistError> {
    let bytes = sized_section(payload, count, 4, what)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn parse_nodes(payload: &[u8], h: &Header) -> Result<Vec<RawNode>, PersistError> {
    let mut r = ByteReader::new(payload);
    let mut nodes = Vec::with_capacity(h.node_count.min(payload.len()));
    let leaf_entry_size = 4 + 4 + 4 + h.s * 4;
    let inner_entry_size = h.m * 4 + 4 + 4 + 4 + h.s * 8;
    for _ in 0..h.node_count {
        let tag = r.u8()?;
        let count = r.u32()? as usize;
        let node = match tag {
            0 => {
                if count.saturating_mul(leaf_entry_size) > r.remaining() {
                    return Err(PersistError::Truncated);
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let internal = r.u32()?;
                    let external = r.u32()?;
                    let parent_dist = r.f32()?;
                    let pivot_dists = r.f32s(h.s)?.into_boxed_slice();
                    entries.push(LeafEntry {
                        internal,
                        external,
                        parent_dist,
                        pivot_dists,
                    });
                }
                RawNode::Leaf(entries)
            }
            1 => {
                if count.saturating_mul(inner_entry_size) > r.remaining() {
                    return Err(PersistError::Truncated);
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let center = r.f32s(h.m)?.into_boxed_slice();
                    let radius = r.f32()?;
                    let parent_dist = r.f32()?;
                    let child = r.u32()?;
                    let mut rings = Vec::with_capacity(h.s);
                    for _ in 0..h.s {
                        let min = r.f32()?;
                        let max = r.f32()?;
                        rings.push(Ring { min, max });
                    }
                    entries.push(InnerEntry {
                        center,
                        radius,
                        parent_dist,
                        child,
                        rings: rings.into_boxed_slice(),
                    });
                }
                RawNode::Inner(entries)
            }
            other => return Err(corrupt(format!("unknown node tag {other}"))),
        };
        nodes.push(node);
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes in node section"));
    }
    Ok(nodes)
}

/// Reassembles a [`PmLsh`] from an in-memory `.pmlsh` image.
pub fn deserialize(bytes: &[u8]) -> Result<PmLsh, PersistError> {
    if bytes.len() < MAGIC.len() {
        return Err(PersistError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 {
        return Err(PersistError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if bytes.len() < 12 + 4 {
        return Err(PersistError::Truncated);
    }
    let body_end = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(PersistError::FileCrc);
    }

    let mut r = ByteReader::new(&bytes[12..body_end]);
    let mut sections: [&[u8]; 8] = [&[]; 8];
    for (slot, &expected_id) in sections.iter_mut().zip(&SECTION_ORDER) {
        let id = r.u32()?;
        if id != expected_id {
            return Err(corrupt(format!(
                "expected section {expected_id}, found {id}"
            )));
        }
        let len = to_usize(r.u64()?, "section length")?;
        let payload = r.take(len)?;
        let declared = r.u32()?;
        if crc32(payload) != declared {
            return Err(PersistError::SectionCrc { section: id });
        }
        *slot = payload;
    }
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after last section"));
    }

    let h = parse_header(sections[0])?;

    let coeffs = f32s_exact(sections[1], counted(h.m, h.d)?, "projection matrix")?;
    let raw = f32s_exact(sections[2], counted(h.n_rows, h.d)?, "point store")?;
    let proj_points = f32s_exact(sections[3], counted(h.live, h.m)?, "projected points")?;
    let pivot_flat = f32s_exact(sections[4], counted(h.s, h.m)?, "pivots")?;
    let nodes = parse_nodes(sections[5], &h)?;

    let idmaps = sized_section(sections[6], h.live, 8, "id maps")?;
    let mut externals = Vec::with_capacity(h.live);
    let mut leaf_of = Vec::with_capacity(h.live);
    {
        let mut r = ByteReader::new(idmaps);
        for _ in 0..h.live {
            externals.push(r.u32()?);
        }
        for _ in 0..h.live {
            leaf_of.push(r.u32()?);
        }
    }

    let ecdf_bytes = sized_section(sections[7], h.ecdf_len, 8, "distance distribution")?;
    let mut ecdf_samples = Vec::with_capacity(h.ecdf_len);
    {
        let mut r = ByteReader::new(ecdf_bytes);
        for _ in 0..h.ecdf_len {
            let v = r.f64()?;
            if v.is_nan() {
                return Err(corrupt("NaN in distance distribution"));
            }
            ecdf_samples.push(v);
        }
    }

    let pivots: Vec<Box<[f32]>> = pivot_flat
        .chunks_exact(h.m)
        .map(|p| p.to_vec().into_boxed_slice())
        .collect();

    let tree = PmTree::from_parts(PmTreeParts {
        dim: h.m,
        cfg: h.params.tree,
        pivots,
        nodes,
        root: h.root,
        points: Dataset::from_flat(proj_points, h.m),
        externals,
        leaf_of,
        build_dist_computations: h.build_dist_computations,
    })
    .map_err(corrupt)?;

    let data = Arc::new(Dataset::from_flat(raw, h.d));
    let projector = GaussianProjector::from_flat(coeffs, h.d, h.m);
    let dist_f = Ecdf::new(ecdf_samples);

    PmLsh::from_parts(data, projector, tree, h.params, dist_f).map_err(corrupt)
}
