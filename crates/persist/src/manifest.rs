//! Multi-shard snapshot sets: one `.pmlsh` file per shard plus a small
//! checksummed manifest.
//!
//! A sharded engine's state is `S` independent [`PmLsh`] indexes whose
//! *order* is id-significant (shard `s` owns global ids `≡ s (mod S)`).
//! [`save_sharded`] writes each shard through the ordinary single-file
//! [`save`] path as a `<manifest>.s<k>` sibling, then
//! atomically writes the manifest naming them in order — so every shard
//! file is independently CRC-protected and loadable, and the manifest
//! pins the set's cardinality and order.
//!
//! # Manifest layout (version 1)
//!
//! ```text
//! magic      8 bytes   b"PMLSHMAN"
//! version    u32 LE    1
//! shards     u32 LE    S >= 1
//! entry × S            name_len: u16 LE | name: UTF-8 (relative, no
//!                      path separators — resolved beside the manifest)
//! crc        u32 LE    CRC-32 of every preceding byte
//! ```
//!
//! The manifest magic differs from the single-file snapshot magic, so
//! [`is_pmlsh_file`](crate::is_pmlsh_file) and [`is_manifest_file`] can
//! cheaply dispatch `ATTACH`/CLI paths to the right loader.

use crate::{crc32, load, save, PersistError, SaveReport, MAGIC};
use pm_lsh_core::PmLsh;
use std::io::Write as _;
use std::path::Path;

/// First 8 bytes of every sharded-snapshot manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"PMLSHMAN";

/// Manifest format version this build writes and reads.
pub const MANIFEST_VERSION: u32 = 1;

/// `true` if `path` starts with the sharded-manifest magic bytes (the
/// sibling of [`is_pmlsh_file`](crate::is_pmlsh_file); I/O errors and
/// short files report `false`).
pub fn is_manifest_file(path: impl AsRef<Path>) -> bool {
    use std::io::Read as _;
    let mut head = [0u8; 8];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut head).is_ok() && head == MANIFEST_MAGIC,
        Err(_) => false,
    }
}

/// Writes `shards` as a sharded snapshot set rooted at `path`: shard `k`
/// goes to the sibling file `<path>.s<k>` (ordinary single-file format),
/// then the manifest is atomically written to `path` itself. The report
/// sums bytes and live points over the manifest and every shard file.
///
/// Shard files are written before the manifest, so a crash mid-save never
/// leaves a manifest naming files that do not exist; stale `.s<k>` files
/// from a previous, wider save are harmless (the manifest pins the set).
///
/// # Panics
/// Panics when `shards` is empty — an index set cannot be empty.
pub fn save_sharded(
    shards: &[impl AsRef<PmLsh>],
    path: impl AsRef<Path>,
) -> Result<SaveReport, PersistError> {
    assert!(!shards.is_empty(), "cannot save zero shards");
    let path = path.as_ref();
    let base_name = path
        .file_name()
        .ok_or_else(|| PersistError::Corrupt("manifest path has no file name".into()))?
        .to_string_lossy()
        .into_owned();

    let mut bytes_total = 0u64;
    let mut points_total = 0u64;
    let mut names: Vec<String> = Vec::with_capacity(shards.len());
    for (k, shard) in shards.iter().enumerate() {
        let name = format!("{base_name}.s{k}");
        let report = save(shard.as_ref(), path.with_file_name(&name))?;
        bytes_total += report.bytes;
        points_total += report.points;
        names.push(name);
    }

    let mut manifest = Vec::with_capacity(64 + shards.len() * (base_name.len() + 8));
    manifest.extend_from_slice(&MANIFEST_MAGIC);
    manifest.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    manifest.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    for name in &names {
        manifest.extend_from_slice(&(name.len() as u16).to_le_bytes());
        manifest.extend_from_slice(name.as_bytes());
    }
    let crc = crc32(&manifest);
    manifest.extend_from_slice(&crc.to_le_bytes());

    // Same atomic tmp+rename discipline as the single-file save.
    let tmp = {
        let mut name = path.as_os_str().to_os_string();
        name.push(format!(".tmp.{}", std::process::id()));
        std::path::PathBuf::from(name)
    };
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&manifest)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::Io(e));
    }
    Ok(SaveReport {
        bytes: bytes_total + manifest.len() as u64,
        points: points_total,
    })
}

/// Reads a sharded-snapshot manifest from `path` and loads every shard
/// file beside it, in manifest (= id) order.
pub fn load_sharded(path: impl AsRef<Path>) -> Result<Vec<PmLsh>, PersistError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let names = parse_manifest(&bytes)?;
    names
        .into_iter()
        .map(|name| load(path.with_file_name(name)))
        .collect()
}

/// Validates a manifest's structure and checksum, returning the shard
/// file names in order.
fn parse_manifest(bytes: &[u8]) -> Result<Vec<String>, PersistError> {
    if bytes.len() < 8 {
        return Err(if bytes.starts_with(&MANIFEST_MAGIC[..bytes.len()]) {
            PersistError::Truncated
        } else {
            PersistError::BadMagic
        });
    }
    if bytes[..8] != MANIFEST_MAGIC {
        // A single-file snapshot offered to the manifest loader is the
        // most likely confusion; BadMagic covers both it and junk.
        let _ = MAGIC;
        return Err(PersistError::BadMagic);
    }
    if bytes.len() < 20 {
        return Err(PersistError::Truncated);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(PersistError::FileCrc);
    }
    let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    if version != MANIFEST_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let shards = u32::from_le_bytes(body[12..16].try_into().expect("4 bytes")) as usize;
    if shards == 0 {
        return Err(PersistError::EmptyIndex);
    }
    let mut names = Vec::with_capacity(shards);
    let mut at = 16;
    for _ in 0..shards {
        if body.len() < at + 2 {
            return Err(PersistError::Truncated);
        }
        let len = u16::from_le_bytes(body[at..at + 2].try_into().expect("2 bytes")) as usize;
        at += 2;
        if body.len() < at + len {
            return Err(PersistError::Truncated);
        }
        let name = std::str::from_utf8(&body[at..at + len])
            .map_err(|_| PersistError::Corrupt("shard file name is not UTF-8".into()))?;
        if name.is_empty() || name.contains(['/', '\\']) || name == ".." {
            return Err(PersistError::Corrupt(format!(
                "shard file name '{name}' must be a plain sibling file name"
            )));
        }
        names.push(name.to_string());
        at += len;
    }
    if at != body.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after the last manifest entry",
            body.len() - at
        )));
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_core::PmLshParams;
    use pm_lsh_metric::Dataset;
    use pm_lsh_stats::Rng;
    use std::sync::Arc;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "pmlsh-manifest-{tag}-{}-{:?}.pmlsh",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn cleanup(path: &Path, shards: usize) {
        let _ = std::fs::remove_file(path);
        for k in 0..shards {
            let name = format!("{}.s{k}", path.file_name().unwrap().to_string_lossy());
            let _ = std::fs::remove_file(path.with_file_name(name));
        }
    }

    fn build_shards(n_per: usize, shards: usize, seed: u64) -> Vec<Arc<PmLsh>> {
        (0..shards)
            .map(|k| {
                Arc::new(PmLsh::build(
                    blob(n_per, 8, seed + k as u64),
                    PmLshParams::default(),
                ))
            })
            .collect()
    }

    #[test]
    fn sharded_set_round_trips_in_order() {
        let shards = build_shards(120, 3, 500);
        let path = temp_path("roundtrip");
        let report = save_sharded(&shards, &path).expect("save");
        assert_eq!(report.points, 360);
        assert!(is_manifest_file(&path));
        assert!(!crate::is_pmlsh_file(&path));

        let loaded = load_sharded(&path).expect("load");
        assert_eq!(loaded.len(), 3);
        for (k, (orig, back)) in shards.iter().zip(&loaded).enumerate() {
            let q = orig.data().point(5);
            let a = orig.query(q, 7);
            let b = back.query(q, 7);
            assert_eq!(a.neighbors, b.neighbors, "shard {k} diverged");
            assert_eq!(a.stats, b.stats, "shard {k} did different work");
        }
        cleanup(&path, 3);
    }

    #[test]
    fn each_shard_file_is_an_ordinary_snapshot() {
        let shards = build_shards(80, 2, 600);
        let path = temp_path("plain-shard");
        save_sharded(&shards, &path).expect("save");
        let s0 = path.with_file_name(format!(
            "{}.s0",
            path.file_name().unwrap().to_string_lossy()
        ));
        assert!(crate::is_pmlsh_file(&s0));
        let alone = load(&s0).expect("single-shard load");
        assert_eq!(alone.len(), shards[0].len());
        cleanup(&path, 2);
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let shards = build_shards(60, 2, 700);
        let path = temp_path("corrupt");
        save_sharded(&shards, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read manifest");

        // Flip one body byte: whole-file CRC must catch it.
        bytes[10] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            load_sharded(&path).unwrap_err(),
            PersistError::FileCrc
        ));
        bytes[10] ^= 0xff;

        // Truncation mid-entry.
        std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("write");
        assert!(matches!(
            load_sharded(&path).unwrap_err(),
            PersistError::FileCrc | PersistError::Truncated
        ));

        // Wrong magic entirely.
        std::fs::write(&path, b"NOTAMANI000").expect("write");
        assert!(matches!(
            load_sharded(&path).unwrap_err(),
            PersistError::BadMagic
        ));

        // A single-file snapshot is not a manifest.
        std::fs::write(&path, bytes).expect("restore");
        let single = temp_path("corrupt-single");
        save(&shards[0], &single).expect("single save");
        assert!(!is_manifest_file(&single));
        assert!(matches!(
            load_sharded(&single).unwrap_err(),
            PersistError::BadMagic
        ));
        let _ = std::fs::remove_file(&single);
        cleanup(&path, 2);
    }

    #[test]
    fn missing_shard_file_fails_the_set() {
        let shards = build_shards(60, 2, 800);
        let path = temp_path("missing");
        save_sharded(&shards, &path).expect("save");
        let s1 = path.with_file_name(format!(
            "{}.s1",
            path.file_name().unwrap().to_string_lossy()
        ));
        std::fs::remove_file(&s1).expect("remove shard file");
        assert!(matches!(
            load_sharded(&path).unwrap_err(),
            PersistError::Io(_)
        ));
        cleanup(&path, 2);
    }

    #[test]
    fn unsupported_version_is_reported() {
        let shards = build_shards(60, 1, 900);
        let path = temp_path("version");
        save_sharded(&shards, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[8] = 99; // version field
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            load_sharded(&path).unwrap_err(),
            PersistError::UnsupportedVersion(99)
        ));
        cleanup(&path, 1);
    }
}
