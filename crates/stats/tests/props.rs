//! Property tests for the numerics layer: distribution functions must be
//! proper CDFs, quantiles must invert them, and the RNG streams must be
//! independent and reproducible.

use pm_lsh_stats::{
    chi2_cdf, chi2_pdf, chi2_quantile, chi2_sf, normal_cdf, normal_quantile, Ecdf, Rng,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn chi2_cdf_is_monotone(m in 1u32..64, a in 0.01f64..80.0, b in 0.01f64..80.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(chi2_cdf(lo, m) <= chi2_cdf(hi, m) + 1e-12);
        prop_assert!((chi2_cdf(lo, m) + chi2_sf(lo, m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chi2_quantile_roundtrip(m in 1u32..64, p in 0.001f64..0.999) {
        let x = chi2_quantile(p, m);
        prop_assert!(x > 0.0);
        prop_assert!((chi2_cdf(x, m) - p).abs() < 1e-8, "m={m} p={p} x={x}");
    }

    #[test]
    fn chi2_pdf_nonnegative(m in 1u32..64, x in 0.0f64..100.0) {
        prop_assert!(chi2_pdf(x, m) >= 0.0);
    }

    #[test]
    fn normal_quantile_is_monotone(a in 0.001f64..0.999, b in 0.001f64..0.999) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_quantile(lo) <= normal_quantile(hi) + 1e-12);
    }

    #[test]
    fn normal_cdf_quantile_roundtrip(p in 0.0001f64..0.9999) {
        prop_assert!((normal_cdf(normal_quantile(p)) - p).abs() < 1e-10);
    }

    #[test]
    fn ecdf_matches_exact_counts(mut samples in proptest::collection::vec(-100.0f64..100.0, 1..200), x in -120.0f64..120.0) {
        let e = Ecdf::new(samples.clone());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let below = samples.iter().filter(|&&s| s <= x).count();
        let frac = below as f64 / samples.len() as f64;
        // interpolated ECDF within one step of the exact count
        prop_assert!((e.cdf(x) - frac).abs() <= 1.0 / samples.len() as f64 + 1e-9);
    }

    #[test]
    fn ecdf_quantile_within_range(samples in proptest::collection::vec(-50.0f64..50.0, 1..100), p in 0.0f64..1.0) {
        let e = Ecdf::new(samples);
        let q = e.quantile(p);
        prop_assert!(q >= e.min() - 1e-9 && q <= e.max() + 1e-9);
    }

    #[test]
    fn rng_reproducible_and_forks_disjoint(seed in 0u64..u64::MAX / 2, stream in 1u64..1000) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        prop_assert_eq!(a.next_u64(), b.next_u64());
        let mut f1 = Rng::new(seed).fork(stream);
        let mut f2 = Rng::new(seed).fork(stream + 1);
        // different streams should differ immediately (probabilistically
        // certain; a collision would indicate broken mixing)
        prop_assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn rng_below_in_range(seed in 0u64..1000, n in 1usize..10_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }
}
