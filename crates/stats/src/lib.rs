//! Statistical machinery for the PM-LSH workspace.
//!
//! Everything in the paper that is "math rather than data structure" lives
//! here:
//!
//! * [`mod@gamma`] / [`normal`] / [`chi2`] — the special functions behind
//!   Lemmas 1–3 and Eq. 10 (no maintained special-function crate is on the
//!   offline allow-list, so these are implemented and pinned to references).
//! * [`rng`] — a seeded xoshiro256++ generator with Gaussian sampling
//!   (Box–Muller), the single source of randomness for the workspace.
//! * [`ecdf`] — empirical CDFs: the distance distribution `F(x)` of Eq. 4
//!   and the per-dimension marginals `G_i(x)` of Eq. 8.
//! * [`lemmas`] — the unbiased distance estimator (Lemma 2) and the tunable
//!   confidence interval (Lemma 3).
//! * [`dataset_stats`] — RC / LID / HV, the Table 3 difficulty statistics.

#![warn(missing_docs)]

pub mod chi2;
pub mod dataset_stats;
pub mod ecdf;
pub mod gamma;
pub mod lemmas;
pub mod normal;
pub mod rng;

pub use chi2::{chi2_cdf, chi2_pdf, chi2_quantile, chi2_sf, chi2_upper_quantile};
pub use ecdf::{dimension_marginals, distance_distribution, Ecdf};
pub use gamma::{gamma, gamma_p, gamma_q, ln_gamma};
pub use lemmas::{estimate_original_distance, median_projection_factor, ProjectedInterval};
pub use normal::{erf, erfc, normal_cdf, normal_pdf, normal_quantile};
pub use rng::Rng;
