//! Standard normal distribution: CDF, quantile and error functions.
//!
//! Needed by QALSH's collision probability `p(s) = 2Φ(w/2s) − 1`, by the
//! Wilson–Hilferty initial guess of the χ² quantile, and by SRS parameter
//! derivations.

use crate::gamma::{gamma_p, gamma_q};

/// The error function `erf(x)`, via the identity `erf(x) = P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, computed through
/// the upper incomplete gamma so the positive tail keeps relative precision.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal pdf `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation (relative error < 1.15e-9) followed by one
/// Halley refinement step against [`normal_cdf`], which brings the result to
/// near machine precision.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile: p={p} must be in (0,1)"
    );

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: x <- x - e/(φ(x) + e·x/2) where e = Φ(x) − p.
    let e = normal_cdf(x) - p;
    let u = e / normal_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference: Abramowitz & Stegun
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(0.5) - 0.520_499_877_813_046_5).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
    }

    #[test]
    fn erfc_tail_precision() {
        // erfc(3) = 2.209049699858544e-5
        assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() / 2.2e-5 < 1e-9);
        // erfc(-x) + erfc(x) = 2
        for x in [0.1, 0.7, 1.9, 3.3] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((normal_cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-10);
        assert!((normal_cdf(2.326_347_874_040_841) - 0.99).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [
            1e-6,
            0.001,
            0.025,
            0.1405,
            0.3679,
            0.5,
            0.8107,
            0.975,
            0.999,
            1.0 - 1e-6,
        ] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-12, "p={p} x={x}");
        }
    }

    #[test]
    fn quantile_reference_values() {
        assert!((normal_quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((normal_quantile(0.5)).abs() < 1e-12);
        assert!((normal_quantile(0.841_344_746_068_542_9) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(1.0);
    }
}
