//! Statistical results from Section 3.2 and 4.3 of the paper.
//!
//! * Lemma 1 — for Gaussian projections with `m` hash functions, the ratio
//!   `r'²/r²` of squared projected to squared original distance is χ²(m).
//! * Lemma 2 — `r̂ = r'/√m` is an unbiased estimator of the original
//!   distance `r` (also the MLE).
//! * Lemma 3 — a tunable confidence interval on the projected distance for a
//!   given original distance, built from χ² quantiles.

use crate::chi2::{chi2_quantile, chi2_upper_quantile};

/// Lemma 2: the unbiased / maximum-likelihood estimate `r̂ = r'/√m` of the
/// original distance given the projected distance `proj_dist` under `m`
/// Gaussian hash functions.
#[inline]
pub fn estimate_original_distance(proj_dist: f64, m: u32) -> f64 {
    assert!(m > 0, "need at least one hash function");
    proj_dist / (m as f64).sqrt()
}

/// Lemma 3: the two-sided confidence interval for the projected distance.
///
/// For points at original distance `r`, the projected distance `r'` falls in
/// `[r·sqrt(χ²_{1−α}(m)), r·sqrt(χ²_α(m))]` with probability `1 − 2α`
/// (each tail has mass `α`; `χ²_α` is the paper's upper quantile).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProjectedInterval {
    /// Multiplier for the lower end: `r' >= r * lo_factor` w.p. `1 - α`.
    pub lo_factor: f64,
    /// Multiplier for the upper end: `r' <= r * hi_factor` w.p. `1 - α`.
    pub hi_factor: f64,
}

impl ProjectedInterval {
    /// Derives the interval multipliers for `m` hash functions and per-tail
    /// probability `alpha`.
    pub fn derive(m: u32, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 0.5,
            "per-tail alpha must be in (0, 0.5)"
        );
        Self {
            lo_factor: chi2_upper_quantile(1.0 - alpha, m).sqrt(),
            hi_factor: chi2_upper_quantile(alpha, m).sqrt(),
        }
    }

    /// The concrete interval `[r·lo, r·hi]` for an original distance `r`.
    pub fn for_distance(&self, r: f64) -> (f64, f64) {
        (r * self.lo_factor, r * self.hi_factor)
    }
}

/// The median-based calibration factor `sqrt(χ²_{0.5}(m))`: projected
/// distances concentrate around `r·sqrt(m)`, and the median of `r'/r` is
/// this value. Used by diagnostics and tests.
pub fn median_projection_factor(m: u32) -> f64 {
    chi2_quantile(0.5, m).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn estimator_is_unbiased_empirically() {
        // Draw ρ_i ~ N(0, r²) for m = 15 and check E[r̂] ≈ r within 1%.
        let m = 15;
        let r = 3.0f64;
        let mut rng = Rng::new(11);
        let trials = 20_000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let mut sq = 0.0;
            for _ in 0..m {
                let rho = r * rng.normal();
                sq += rho * rho;
            }
            sum += estimate_original_distance(sq.sqrt(), m as u32);
        }
        let mean = sum / trials as f64;
        // The estimator r'/√m is unbiased for r·E[sqrt(χ²m/m)] ≈ r(1 − 1/(4m));
        // Lemma 2's proof computes E[r'] through E[ρ²] (i.e., on the squared
        // scale). Empirically the bias is below 2% for m = 15.
        assert!((mean - r).abs() / r < 0.02, "mean={mean}");
    }

    #[test]
    fn interval_coverage_matches_alpha() {
        // Simulate Lemma 3: count tail violations on both sides.
        let m = 15u32;
        let alpha = 0.1;
        let iv = ProjectedInterval::derive(m, alpha);
        let r = 2.5f64;
        let (lo, hi) = iv.for_distance(r);
        let mut rng = Rng::new(12);
        let trials = 40_000;
        let (mut below, mut above) = (0usize, 0usize);
        for _ in 0..trials {
            let mut sq = 0.0;
            for _ in 0..m {
                let rho = r * rng.normal();
                sq += rho * rho;
            }
            let rp = sq.sqrt();
            if rp < lo {
                below += 1;
            }
            if rp > hi {
                above += 1;
            }
        }
        let below_frac = below as f64 / trials as f64;
        let above_frac = above as f64 / trials as f64;
        assert!((below_frac - alpha).abs() < 0.01, "below={below_frac}");
        assert!((above_frac - alpha).abs() < 0.01, "above={above_frac}");
    }

    #[test]
    fn interval_is_ordered_and_monotone_in_alpha() {
        let tight = ProjectedInterval::derive(15, 0.25);
        let wide = ProjectedInterval::derive(15, 0.01);
        assert!(tight.lo_factor < tight.hi_factor);
        assert!(wide.lo_factor < tight.lo_factor);
        assert!(wide.hi_factor > tight.hi_factor);
    }

    #[test]
    fn median_factor_close_to_sqrt_m() {
        // median of χ²(m) ≈ m(1-2/(9m))³, so the factor is slightly below √m.
        let f = median_projection_factor(15);
        assert!(f < 15f64.sqrt());
        assert!(f > 0.95 * 15f64.sqrt());
    }
}
