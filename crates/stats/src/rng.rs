//! Deterministic random number generation.
//!
//! Everything in this workspace that draws randomness — Gaussian projection
//! matrices, synthetic dataset generation, query sampling — must be exactly
//! reproducible from a `u64` seed so experiments can be re-run bit-for-bit.
//! `rand` offers no Gaussian sampler without the (not allow-listed)
//! `rand_distr` crate, so we carry a small self-contained generator:
//! xoshiro256++ seeded through SplitMix64, plus a Box–Muller normal sampler.

/// A seeded xoshiro256++ generator with convenience samplers.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Different seeds give independent
    /// streams; the same seed always yields the same sequence.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Self {
            state,
            gauss_spare: None,
        }
    }

    /// Derives an independent child stream. `fork(i) != fork(j)` for `i != j`,
    /// and forking does not perturb the parent's sequence.
    pub fn fork(&self, stream: u64) -> Rng {
        // Mix the parent state with the stream id through SplitMix64.
        let mut s = self.state[0]
            ^ self.state[1].rotate_left(17)
            ^ self.state[2].rotate_left(31)
            ^ self.state[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng {
            state,
            gauss_spare: None,
        }
    }

    /// Next raw 64 random bits (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` (Lemire's nearly-divisionless method).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Box–Muller, polar form, with spare caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Standard normal draw as `f32`.
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        self.normal() as f32
    }

    /// Fills a slice with i.i.d. standard normal `f32` values.
    pub fn fill_normal(&mut self, out: &mut [f32]) {
        for v in out {
            *v = self.normal_f32();
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// `k` distinct indices sampled uniformly from `[0, n)`, in random order.
    ///
    /// Uses a partial Fisher–Yates over an index vector for small `n`, or
    /// Floyd's algorithm when `k << n` to avoid materializing `0..n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        if k * 8 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = self.range_usize(i, n);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Floyd's: guarantees distinctness with k iterations.
            let mut chosen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            for j in n - k..n {
                let t = self.below(j + 1);
                let pick = if chosen.contains(&t) { j } else { t };
                chosen.insert(pick);
                out.push(pick);
            }
            self.shuffle(&mut out);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn fork_streams_differ() {
        let root = Rng::new(7);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
        // forking again with the same id reproduces the stream
        let mut f1b = root.fork(1);
        assert_eq!(Rng::new(7).fork(1).next_u64(), f1b.next_u64());
    }

    #[test]
    fn uniform_moments() {
        let mut rng = Rng::new(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var={var}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(2);
        let n = 200_000;
        let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            s1 += x;
            s2 += x * x;
            s3 += x * x * x;
            s4 += x * x * x * x;
        }
        let nf = n as f64;
        assert!((s1 / nf).abs() < 0.02, "mean {}", s1 / nf);
        assert!((s2 / nf - 1.0).abs() < 0.03, "var {}", s2 / nf);
        assert!((s3 / nf).abs() < 0.05, "skew numerator {}", s3 / nf);
        assert!(
            (s4 / nf - 3.0).abs() < 0.15,
            "kurtosis numerator {}",
            s4 / nf
        );
    }

    #[test]
    fn below_is_unbiased_over_small_range() {
        let mut rng = Rng::new(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::new(4);
        for (n, k) in [(10, 10), (100, 3), (1000, 50), (5, 0)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
