//! χ² distribution: CDF, survival function, pdf and quantiles.
//!
//! Lemma 1 of the paper shows that for Gaussian projections the ratio
//! `r'²/r²` between squared projected and original distances follows χ²(m);
//! Lemma 3 and Eq. 10 turn χ² quantiles into the tunable confidence interval
//! that drives PM-LSH's search radius. This module provides exactly those
//! quantities, including the paper's *upper quantile* convention
//! `χ²_α(m)` defined by `∫_{χ²_α(m)}^∞ f(x; m) dx = α`.

use crate::gamma::{gamma_p, gamma_q, ln_gamma};
use crate::normal::normal_quantile;

/// χ²(m) cumulative distribution function `Pr[X ≤ x]`.
pub fn chi2_cdf(x: f64, m: u32) -> f64 {
    assert!(m > 0, "χ² needs at least one degree of freedom");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(m as f64 / 2.0, x / 2.0)
}

/// χ²(m) survival function `Pr[X > x] = 1 − CDF`.
pub fn chi2_sf(x: f64, m: u32) -> f64 {
    assert!(m > 0, "χ² needs at least one degree of freedom");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(m as f64 / 2.0, x / 2.0)
}

/// χ²(m) probability density function.
pub fn chi2_pdf(x: f64, m: u32) -> f64 {
    assert!(m > 0, "χ² needs at least one degree of freedom");
    if x <= 0.0 {
        return 0.0;
    }
    let a = m as f64 / 2.0;
    ((a - 1.0) * x.ln() - x / 2.0 - a * std::f64::consts::LN_2 - ln_gamma(a)).exp()
}

/// χ²(m) quantile: the `x` with `CDF(x) = p`, for `p ∈ (0, 1)`.
///
/// Wilson–Hilferty initial guess refined by safeguarded Newton iterations on
/// the CDF; converges to ~1e-12 absolute in a handful of steps for every
/// `m` used in this workspace (1..=64).
pub fn chi2_quantile(p: f64, m: u32) -> f64 {
    assert!(m > 0, "χ² needs at least one degree of freedom");
    assert!(p > 0.0 && p < 1.0, "chi2_quantile: p={p} must be in (0,1)");
    let md = m as f64;

    // Wilson–Hilferty: X ≈ m (1 − 2/(9m) + z sqrt(2/(9m)))³
    let z = normal_quantile(p);
    let t = 2.0 / (9.0 * md);
    let mut x = md * (1.0 - t + z * t.sqrt()).powi(3);
    if x <= 0.0 || !x.is_finite() {
        x = md; // fall back to the mean, bisection below will fix it
    }

    // Safeguarded Newton: keep a bracket [lo, hi] with CDF(lo) < p < CDF(hi).
    let (mut lo, mut hi) = (0.0f64, f64::MAX);
    for _ in 0..100 {
        let f = chi2_cdf(x, m) - p;
        if f.abs() < 1e-13 {
            break;
        }
        if f > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        let d = chi2_pdf(x, m);
        let mut next = if d > 0.0 { x - f / d } else { x };
        if next <= lo || next >= hi || !next.is_finite() {
            // Newton left the bracket; bisect instead.
            next = if hi.is_finite() {
                (lo + hi) / 2.0
            } else {
                lo * 2.0 + 1.0
            };
        }
        if (next - x).abs() < 1e-14 * x.max(1.0) {
            x = next;
            break;
        }
        x = next;
    }
    x
}

/// The paper's **upper** quantile `χ²_α(m)`: the `x` with `Pr[X > x] = α`.
///
/// Equivalent to [`chi2_quantile`]`(1 − α, m)`; used verbatim in Eq. 10:
/// `t = sqrt(χ²_{α₁}(m))`.
pub fn chi2_upper_quantile(alpha: f64, m: u32) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    chi2_quantile(1.0 - alpha, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from standard χ² tables.
    #[test]
    fn quantile_reference_values() {
        // (p, m, x)
        let cases = [
            (0.95, 10, 18.307),
            (0.95, 15, 24.996),
            (0.99, 15, 30.578),
            (0.05, 15, 7.261),
            (0.50, 15, 14.339),
            (0.75, 15, 18.245),
            (0.90, 1, 2.706),
            (0.95, 1, 3.841),
            (0.50, 2, 1.386),
        ];
        for (p, m, want) in cases {
            let got = chi2_quantile(p, m);
            assert!(
                (got - want).abs() < 2e-3,
                "chi2_quantile({p}, {m}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn cdf_inverts_quantile() {
        for m in [1u32, 2, 5, 15, 30, 64] {
            for p in [
                0.001,
                0.05,
                0.1405,
                1.0 / std::f64::consts::E,
                0.5,
                0.8107,
                0.99,
                0.9999,
            ] {
                let x = chi2_quantile(p, m);
                let back = chi2_cdf(x, m);
                assert!((back - p).abs() < 1e-10, "m={m} p={p} x={x} back={back}");
            }
        }
    }

    #[test]
    fn upper_quantile_convention() {
        // ∫_{χ²_α}^∞ f = α  ⇔  SF(χ²_α) = α
        let x = chi2_upper_quantile(0.05, 15);
        assert!((chi2_sf(x, 15) - 0.05).abs() < 1e-10);
        assert!((x - 24.996).abs() < 2e-3);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid integration of the pdf should match the CDF.
        let m = 15;
        let (a, b) = (0.0, 20.0);
        let steps = 20_000;
        let h = (b - a) / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            let x0 = a + i as f64 * h;
            let x1 = x0 + h;
            acc += (chi2_pdf(x0, m) + chi2_pdf(x1, m)) * h / 2.0;
        }
        assert!((acc - chi2_cdf(b, m)).abs() < 1e-6);
    }

    #[test]
    fn mean_and_median_sanity() {
        // mean = m, median ≈ m(1-2/(9m))³
        for m in [5u32, 15, 40] {
            let med = chi2_quantile(0.5, m);
            let approx = m as f64 * (1.0 - 2.0 / (9.0 * m as f64)).powi(3);
            assert!((med - approx).abs() / approx < 0.01, "m={m}");
        }
    }
}
