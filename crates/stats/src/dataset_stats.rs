//! Dataset difficulty statistics from Table 3 of the paper.
//!
//! * **RC** (relative contrast, He et al.): ratio of the mean distance to the
//!   NN distance. Small RC ⇒ hard dataset.
//! * **LID** (local intrinsic dimensionality, Amsaleg et al.): MLE from the
//!   k-NN distance profile. Large LID ⇒ hard dataset.
//! * **HV** (homogeneity of viewpoints, Ciaccia et al.): how similar the
//!   distance distributions observed from different points are; values near 1
//!   justify using one global distance distribution in the cost models of
//!   Section 4.2.

use pm_lsh_metric::{euclidean, MatrixView, TopK};

use crate::ecdf::Ecdf;
use crate::rng::Rng;

/// Exact k-NN distances (ascending, self excluded) of point `q_id`, by brute
/// force over the whole dataset. Shared by the statistics below.
pub fn exact_knn_dists(view: MatrixView<'_>, q_id: usize, k: usize) -> Vec<f32> {
    let q = view.point(q_id);
    let mut top = TopK::new(k);
    for (i, p) in view.iter().enumerate() {
        if i == q_id {
            continue;
        }
        top.push(euclidean(q, p), i as u32);
    }
    top.into_sorted_vec().into_iter().map(|n| n.dist).collect()
}

/// Relative contrast: `RC = E[dist(q, o)] / E[dist(q, NN(q))]` estimated over
/// `n_queries` sampled query points.
pub fn relative_contrast(view: MatrixView<'_>, n_queries: usize, rng: &mut Rng) -> f64 {
    let n = view.len();
    assert!(n >= 2, "need at least two points");
    let queries = rng.sample_indices(n, n_queries.min(n));
    let mut mean_sum = 0.0f64;
    let mut nn_sum = 0.0f64;
    for &qi in &queries {
        let q = view.point(qi);
        let mut acc = 0.0f64;
        let mut nn = f32::INFINITY;
        for (i, p) in view.iter().enumerate() {
            if i == qi {
                continue;
            }
            let d = euclidean(q, p);
            acc += d as f64;
            if d < nn {
                nn = d;
            }
        }
        mean_sum += acc / (n - 1) as f64;
        nn_sum += nn as f64;
    }
    let q = queries.len() as f64;
    let mean_nn = nn_sum / q;
    if mean_nn <= 0.0 {
        return f64::INFINITY;
    }
    (mean_sum / q) / mean_nn
}

/// Local intrinsic dimensionality via the MLE of Amsaleg et al.:
/// `LID(q) = -[ (1/k) Σ_{i=1..k} ln(r_i / r_k) ]^{-1}`,
/// averaged over `n_queries` sampled queries using their exact `k` NNs.
pub fn lid_mle(view: MatrixView<'_>, n_queries: usize, k: usize, rng: &mut Rng) -> f64 {
    let n = view.len();
    assert!(n > k, "need more points than k");
    let queries = rng.sample_indices(n, n_queries.min(n));
    let mut acc = 0.0f64;
    let mut used = 0usize;
    for &qi in &queries {
        let dists = exact_knn_dists(view, qi, k);
        let rk = *dists.last().unwrap() as f64;
        if rk <= 0.0 {
            continue; // all-duplicate neighborhood carries no information
        }
        let mut s = 0.0f64;
        let mut m = 0usize;
        for &r in &dists {
            let r = r as f64;
            if r > 0.0 {
                s += (r / rk).ln();
                m += 1;
            }
        }
        if m == 0 || s == 0.0 {
            continue;
        }
        acc += -(m as f64) / s;
        used += 1;
    }
    if used == 0 {
        0.0
    } else {
        acc / used as f64
    }
}

/// Homogeneity of viewpoints: `1 − E[ W₁(F̃_o1, F̃_o2) ] / range` where
/// `F̃_o` is the *relative* distance profile of viewpoint `o` — its
/// empirical distance distribution to a common target sample, normalized by
/// its own median — `W₁` the Wasserstein-1 distance between two profiles
/// (mean quantile displacement), and `range` the robust (5–95 %) spread of
/// the pooled normalized distances.
///
/// Following Ciaccia et al.'s cost model, homogeneity is a statement about
/// *relative* distance distributions: a viewpoint sitting farther from the
/// mass sees all distances scaled up, which the paper's uses of HV tolerate
/// (the `r_min` rule of §4.5 reads a quantile whose per-query scale error
/// is absorbed by Algorithm 2's geometric radius growth, and the §4.2 cost
/// models average over queries anyway). What must agree across viewpoints
/// is the *shape* of the profile, which is exactly what this index scores:
/// 1 means every viewpoint would pick the same radius at every quantile
/// after its scale correction; heterogeneous data (e.g., cluster cores vs
/// shell outliers) scores visibly lower.
pub fn homogeneity_of_viewpoints(
    view: MatrixView<'_>,
    n_viewpoints: usize,
    n_targets: usize,
    rng: &mut Rng,
) -> f64 {
    let n = view.len();
    assert!(n >= 4, "need at least four points");
    let vps = rng.sample_indices(n, n_viewpoints.min(n / 2));
    let targets = rng.sample_indices(n, n_targets.min(n));

    // Distance profiles from each viewpoint to the shared target sample.
    let mut profiles: Vec<Ecdf> = Vec::with_capacity(vps.len());
    let mut pooled: Vec<f64> = Vec::with_capacity(vps.len() * targets.len());
    for &v in &vps {
        let vp = view.point(v);
        let mut ds = Vec::with_capacity(targets.len());
        for &t in &targets {
            if t == v {
                continue;
            }
            let d = euclidean(vp, view.point(t)) as f64;
            ds.push(d);
            pooled.push(d);
        }
        profiles.push(Ecdf::new(ds));
    }

    // Normalize every profile by its own median (relative distances), then
    // compare on a quantile grid: W₁ ≈ mean |F̃₁⁻¹(p) − F̃₂⁻¹(p)|.
    const GRID: usize = 64;
    let ps: Vec<f64> = (0..GRID).map(|i| (i as f64 + 0.5) / GRID as f64).collect();
    let quantiles: Vec<Vec<f64>> = profiles
        .iter()
        .map(|f| {
            let med = f.quantile(0.5).max(1e-12);
            ps.iter().map(|&p| f.quantile(p) / med).collect()
        })
        .collect();
    let pooled_med = Ecdf::new(pooled).quantile(0.5).max(1e-12);
    let pooled_norm: Vec<f64> = profiles
        .iter()
        .flat_map(|f| ps.iter().map(move |&p| f.quantile(p) / pooled_med))
        .collect();
    let pooled_norm = Ecdf::new(pooled_norm);
    let range = (pooled_norm.quantile(0.95) - pooled_norm.quantile(0.05)).max(1e-12);

    let mut acc = 0.0f64;
    let mut pairs = 0usize;
    const MAX_PAIRS: usize = 512;
    'outer: for i in 0..quantiles.len() {
        for j in i + 1..quantiles.len() {
            let w1: f64 = quantiles[i]
                .iter()
                .zip(&quantiles[j])
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / GRID as f64;
            acc += w1 / range;
            pairs += 1;
            if pairs >= MAX_PAIRS {
                break 'outer;
            }
        }
    }
    if pairs == 0 {
        return 1.0;
    }
    (1.0 - acc / pairs as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::Dataset;

    fn gaussian_blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn knn_dists_are_sorted_and_self_free() {
        let ds = gaussian_blob(200, 8, 1);
        let d = exact_knn_dists(ds.view(), 5, 10);
        assert_eq!(d.len(), 10);
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert!(d[0] > 0.0, "self must be excluded");
    }

    #[test]
    fn rc_larger_for_clustered_data() {
        // A dataset of tight, well separated clusters has much higher RC
        // than an i.i.d. Gaussian blob of the same size.
        let blob = gaussian_blob(400, 16, 2);
        let mut rng = Rng::new(3);
        let mut clustered = Dataset::with_capacity(16, 400);
        let mut buf = [0.0f32; 16];
        for i in 0..400 {
            let center = (i % 8) as f32 * 100.0;
            for v in buf.iter_mut() {
                *v = center + 0.01 * rng.normal_f32();
            }
            clustered.push(&buf);
        }
        let mut r1 = Rng::new(4);
        let mut r2 = Rng::new(4);
        let rc_blob = relative_contrast(blob.view(), 30, &mut r1);
        let rc_clust = relative_contrast(clustered.view(), 30, &mut r2);
        assert!(rc_blob > 1.0);
        assert!(rc_clust > rc_blob, "clustered={rc_clust} blob={rc_blob}");
    }

    #[test]
    fn lid_tracks_true_dimension() {
        // LID of an i.i.d. Gaussian in R^d concentrates near d for moderate d.
        let d2 = gaussian_blob(2_000, 2, 5);
        let d8 = gaussian_blob(2_000, 8, 6);
        let mut r1 = Rng::new(7);
        let mut r2 = Rng::new(7);
        let lid2 = lid_mle(d2.view(), 30, 50, &mut r1);
        let lid8 = lid_mle(d8.view(), 30, 50, &mut r2);
        assert!(lid2 > 1.0 && lid2 < 4.0, "lid2={lid2}");
        assert!(lid8 > 5.0 && lid8 < 12.0, "lid8={lid8}");
        assert!(lid8 > lid2);
    }

    #[test]
    fn hv_near_one_for_homogeneous_data() {
        // Distance concentration grows with dimensionality, so an i.i.d.
        // Gaussian blob in d = 64 already shows strongly homogeneous
        // viewpoints (the paper's real datasets, d >= 192, all have HV >= 0.9).
        let ds = gaussian_blob(600, 64, 8);
        let mut rng = Rng::new(9);
        let hv = homogeneity_of_viewpoints(ds.view(), 20, 200, &mut rng);
        assert!(hv > 0.85, "hv={hv}");
        assert!(hv <= 1.0);
    }

    #[test]
    fn hv_lower_for_heterogeneous_data() {
        // Mix a tight cluster with a huge-radius shell: viewpoints inside the
        // cluster and on the shell see very different distance profiles.
        let mut rng = Rng::new(10);
        let mut ds = Dataset::with_capacity(8, 600);
        let mut buf = [0.0f32; 8];
        for i in 0..600 {
            if i % 2 == 0 {
                for v in buf.iter_mut() {
                    *v = 0.05 * rng.normal_f32();
                }
            } else {
                rng.fill_normal(&mut buf);
                let norm: f32 = buf.iter().map(|x| x * x).sum::<f32>().sqrt();
                let scale = 50.0 + 50.0 * rng.f32();
                for v in buf.iter_mut() {
                    *v = *v / norm * scale;
                }
            }
            ds.push(&buf);
        }
        let homog = gaussian_blob(600, 8, 11);
        let mut r1 = Rng::new(12);
        let mut r2 = Rng::new(12);
        let hv_hetero = homogeneity_of_viewpoints(ds.view(), 20, 200, &mut r1);
        let hv_homog = homogeneity_of_viewpoints(homog.view(), 20, 200, &mut r2);
        assert!(hv_hetero < hv_homog, "hetero={hv_hetero} homog={hv_homog}");
    }
}
