//! Gamma-family special functions.
//!
//! The χ² machinery of PM-LSH (Lemmas 1–3, Eq. 10) needs the regularized
//! incomplete gamma function and its inverse; no maintained crate providing
//! them is on the offline allow-list, so they are implemented here following
//! the classic Lanczos / series / continued-fraction recipes and pinned to
//! reference values in the tests.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0` (Lanczos, g = 7).
///
/// Relative error is below 1e-13 over the range used by this workspace
/// (half-integer arguments up to a few hundred).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos approximation, g = 7, 9 coefficients.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x.is_finite(), "ln_gamma: non-finite argument");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0, x >= 0`.
///
/// `P(a, x) = γ(a, x) / Γ(a)` rises from 0 at `x = 0` to 1 as `x → ∞`.
/// The χ²(m) CDF is `P(m/2, x/2)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p: shape must be positive");
    assert!(x >= 0.0, "gamma_p: argument must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cont_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// Computed directly (not as `1 - P`) when `x` is large so the right tail
/// keeps full relative precision — this matters for small `α` quantiles.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q: shape must be positive");
    assert!(x >= 0.0, "gamma_q: argument must be non-negative");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cont_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`, accurate for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut term = 1.0 / a;
    let mut sum = term;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified-Lentz continued fraction for `Q(a, x)`, accurate for `x >= a + 1`.
fn gamma_q_cont_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// `Γ(x)` itself, via [`ln_gamma`]. Used by the R-tree cost model's
/// isochoric-cube side length `l = r_q (2π^{m/2} / (m Γ(m/2)))^{1/m}`.
pub fn gamma(x: f64) -> f64 {
    if x > 0.5 {
        ln_gamma(x).exp()
    } else {
        let pi = std::f64::consts::PI;
        pi / ((pi * x).sin() * ln_gamma(1.0 - x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn ln_gamma_at_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!(
                (ln_gamma(x) - f.ln()).abs() < TOL,
                "ln_gamma({x}) = {} want {}",
                ln_gamma(x),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_at_half() {
        // Γ(1/2) = sqrt(pi)
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < TOL);
        // Γ(3/2) = sqrt(pi)/2
        let want = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - want).abs() < TOL);
        // Γ(7.5) = 1871.2543057977884... (reference value)
        #[allow(clippy::inconsistent_digit_grouping)]
        let g75 = 1_871.254_305_797_788_4_f64;
        assert!((gamma(7.5) - g75).abs() < 1e-8);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for x in [0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let want = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - want).abs() < TOL, "x={x}");
        }
        // P(0.5, x) = erf(sqrt(x)); erf(1) = 0.8427007929497149
        assert!((gamma_p(0.5, 1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for a in [0.5, 1.0, 2.5, 7.5, 50.0] {
            for x in [0.01, 0.5, 1.0, 3.0, 10.0, 60.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x} sum={s}");
            }
        }
    }

    #[test]
    fn gamma_p_is_monotone_in_x() {
        let a = 7.5; // m = 15 in χ² terms
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.25;
            let p = gamma_p(a, x);
            assert!(p >= prev, "P must be non-decreasing");
            prev = p;
        }
        assert!(prev > 0.999_999);
    }

    #[test]
    fn extreme_tails_behave() {
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert_eq!(gamma_q(3.0, 0.0), 1.0);
        assert!(gamma_q(7.5, 200.0) < 1e-30);
        assert!(gamma_p(7.5, 200.0) > 1.0 - 1e-12);
    }
}
