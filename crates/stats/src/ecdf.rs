//! Empirical cumulative distribution functions.
//!
//! The paper's cost models (Section 4.2) and the `r_min` selection rule of
//! Algorithm 2 both consume the *distance distribution*
//! `F(x) = Pr[||o_i, o_j|| ≤ x]` of a dataset (Eq. 4), estimated from sampled
//! point pairs. The R-tree cost model additionally needs the per-dimension
//! marginals `G_i(x) = Pr[X_i ≤ x]` (Eq. 8).

use pm_lsh_metric::{euclidean, MatrixView};

use crate::rng::Rng;

/// An empirical CDF built from a finite sample, with linear interpolation
/// between order statistics.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from (not necessarily sorted) samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF needs at least one sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not be NaN"
        );
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        Self { sorted: samples }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the ECDF was built from zero samples (impossible by
    /// construction, kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of mass at or below `x`, linearly interpolated.
    pub fn cdf(&self, x: f64) -> f64 {
        let s = &self.sorted;
        let n = s.len();
        if x < s[0] {
            return 0.0;
        }
        if x >= s[n - 1] {
            return 1.0;
        }
        // rank = #samples <= x, then interpolate toward the next sample.
        let hi = s.partition_point(|&v| v <= x);
        // s[hi-1] <= x < s[hi]
        let x0 = s[hi - 1];
        let x1 = s[hi];
        let frac = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
        (hi as f64 + frac - 1.0) / (n as f64 - 1.0).max(1.0)
    }

    /// `F⁻¹(p)`: the value below which a `p` fraction of the mass lies.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile: p={p} outside [0,1]");
        let s = &self.sorted;
        let n = s.len();
        if n == 1 {
            return s[0];
        }
        let pos = p * (n - 1) as f64;
        let i = pos.floor() as usize;
        let frac = pos - i as f64;
        if i + 1 >= n {
            s[n - 1]
        } else {
            s[i] * (1.0 - frac) + s[i + 1] * frac
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The underlying samples in ascending order. Feeding these back into
    /// [`Ecdf::new`] reconstructs a bit-identical ECDF (sorting already
    /// sorted data is a no-op), which is what index snapshots rely on.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// The pairwise distance distribution `F(x)` of Eq. 4, estimated from
/// `pairs` uniformly sampled point pairs.
pub fn distance_distribution(view: MatrixView<'_>, pairs: usize, rng: &mut Rng) -> Ecdf {
    let n = view.len();
    assert!(n >= 2, "need at least two points to sample pairs");
    let mut dists = Vec::with_capacity(pairs);
    while dists.len() < pairs {
        let i = rng.below(n);
        let j = rng.below(n);
        if i == j {
            continue;
        }
        dists.push(euclidean(view.point(i), view.point(j)) as f64);
    }
    Ecdf::new(dists)
}

/// Per-dimension marginal distributions `G_i(x)` of Eq. 8, estimated from a
/// uniform point sample (or all points if `sample >= n`).
pub fn dimension_marginals(view: MatrixView<'_>, sample: usize, rng: &mut Rng) -> Vec<Ecdf> {
    let n = view.len();
    let dim = view.dim();
    let ids: Vec<usize> = if sample >= n {
        (0..n).collect()
    } else {
        rng.sample_indices(n, sample)
    };
    let mut per_dim: Vec<Vec<f64>> = vec![Vec::with_capacity(ids.len()); dim];
    for &i in &ids {
        let p = view.point(i);
        for (d, &v) in p.iter().enumerate() {
            per_dim[d].push(v as f64);
        }
    }
    per_dim.into_iter().map(Ecdf::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::Dataset;

    #[test]
    fn cdf_step_positions() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(5.0), 1.0);
        assert_eq!(e.cdf(6.0), 1.0);
        assert!((e.cdf(3.0) - 0.5).abs() < 1e-12);
        // halfway between samples 2 and 3 -> between 0.25 and 0.5
        assert!((e.cdf(2.5) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        for p in [0.0, 0.25, 0.33, 0.5, 0.9, 1.0] {
            let x = e.quantile(p);
            assert!((e.cdf(x) - p).abs() < 1e-9, "p={p} x={x} cdf={}", e.cdf(x));
        }
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn mean_min_max() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_distribution_on_unit_square_grid() {
        // 100 points on a 10x10 grid: the distance CDF should put
        // F(1.0) noticeably above 0 and F(13) == 1 (max distance ~12.7).
        let mut rows = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push(vec![i as f32, j as f32]);
            }
        }
        let ds = Dataset::from_rows(rows);
        let mut rng = Rng::new(9);
        let f = distance_distribution(ds.view(), 4000, &mut rng);
        assert!(f.cdf(0.5) < 0.05);
        assert!(f.cdf(13.0) == 1.0);
        assert!(f.cdf(5.0) > 0.2 && f.cdf(5.0) < 0.8);
    }

    #[test]
    fn marginals_capture_per_dim_ranges() {
        let ds = Dataset::from_rows(vec![
            vec![0.0, 100.0],
            vec![1.0, 200.0],
            vec![2.0, 300.0],
            vec![3.0, 400.0],
        ]);
        let mut rng = Rng::new(1);
        let gs = dimension_marginals(ds.view(), 10, &mut rng);
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].max(), 3.0);
        assert_eq!(gs[1].min(), 100.0);
        assert!(gs[1].cdf(250.0) > 0.3 && gs[1].cdf(250.0) < 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_rejected() {
        let _ = Ecdf::new(vec![]);
    }
}
