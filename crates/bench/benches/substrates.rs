//! Microbenchmarks of the substrates: distance kernels, χ² quantiles, tree
//! construction and traversal primitives. These back the engineering claims
//! (unrolled kernels, lazy lower bounds) rather than a specific paper
//! artifact.

use pm_lsh_bench::micro::{BenchmarkId, Criterion, Throughput};
use pm_lsh_bptree::BPlusTree;
use pm_lsh_metric::sq_dist;
use pm_lsh_pmtree::{PmTree, PmTreeConfig};
use pm_lsh_rtree::{RTree, RTreeConfig};
use pm_lsh_stats::{chi2_quantile, Rng};
use std::hint::black_box;
use std::time::Duration;

fn random_matrix(n: usize, d: usize, seed: u64) -> pm_lsh_metric::Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = pm_lsh_metric::Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn bench_substrates(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("substrates");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    // distance kernel at the paper's dimensionalities
    for d in [15usize, 192, 960, 4096] {
        let m = random_matrix(2, d, 1);
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("sq_dist", d), &d, |bencher, _| {
            bencher.iter(|| black_box(sq_dist(black_box(m.point(0)), black_box(m.point(1)))));
        });
    }

    // χ² quantile (the Eq. 10 derivation path)
    group.bench_function("chi2_quantile_m15", |bencher| {
        bencher.iter(|| black_box(chi2_quantile(black_box(0.6321), 15)));
    });

    // index construction over 2k projected points
    let projected = random_matrix(2000, 15, 2);
    group.bench_function("pmtree_build_2k", |bencher| {
        bencher.iter(|| {
            let mut rng = Rng::new(3);
            black_box(PmTree::build(
                projected.view(),
                PmTreeConfig::default(),
                &mut rng,
            ))
        });
    });
    group.bench_function("rtree_build_2k", |bencher| {
        bencher.iter(|| black_box(RTree::build(projected.view(), RTreeConfig::default())));
    });
    group.bench_function("bptree_bulk_load_2k", |bencher| {
        let mut pairs: Vec<(f32, u32)> = projected
            .iter()
            .enumerate()
            .map(|(i, p)| (p[0], i as u32))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        bencher.iter(|| black_box(BPlusTree::bulk_load(black_box(&pairs))));
    });

    // incremental NN traversal
    let mut rng = Rng::new(4);
    let pm = PmTree::build(projected.view(), PmTreeConfig::default(), &mut rng);
    let rt = RTree::build(projected.view(), RTreeConfig::default());
    let q: Vec<f32> = projected.point(7).to_vec();
    group.bench_function("pmtree_knn50", |bencher| {
        bencher.iter(|| black_box(pm.knn(black_box(&q), 50)));
    });
    group.bench_function("rtree_knn50", |bencher| {
        bencher.iter(|| black_box(rt.knn(black_box(&q), 50)));
    });

    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_substrates(&mut criterion);
}
