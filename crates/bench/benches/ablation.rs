//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Lazy vs eager lower-bound refinement** in the PM-tree cursor — the
//!   lazy discipline is what makes the PM-tree's filtering pay off.
//! * **Pivot count s = 0 (plain M-tree) vs s = 5 (PM-tree)** — the paper's
//!   headline structural claim (Table 2 / Fig. 6a).
//! * **Incremental cursor vs restarted range queries** for Algorithm 2's
//!   radius enlargement — why PM-LSH's "combination of RE and MI" wins.

use pm_lsh_bench::micro::Criterion;
use pm_lsh_data::{PaperDataset, Scale};
use pm_lsh_hash::GaussianProjector;
use pm_lsh_pmtree::{PmTree, PmTreeConfig, RefineMode};
use pm_lsh_stats::{distance_distribution, Rng};
use std::hint::black_box;
use std::time::Duration;

fn bench_ablation(criterion: &mut Criterion) {
    let generator = PaperDataset::Cifar.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(8);
    let mut rng = Rng::new(77);
    let projector = GaussianProjector::new(data.dim(), 15, &mut rng);
    let projected = projector.project_all(data.view());
    let proj_queries = projector.project_all(queries.view());
    let f = distance_distribution(projected.view(), 20_000, &mut rng);
    let rq = f.quantile(0.08) as f32;

    let pm5 = PmTree::build(projected.view(), PmTreeConfig::default(), &mut rng);
    let pm0 = PmTree::build(
        projected.view(),
        PmTreeConfig {
            num_pivots: 0,
            ..Default::default()
        },
        &mut rng,
    );

    let mut group = criterion.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("refine_lazy", |bencher| {
        let mut qi = 0usize;
        bencher.iter(|| {
            let q = proj_queries.point(qi % proj_queries.len());
            qi += 1;
            let mut cur = pm5.cursor_with_mode(black_box(q), RefineMode::Lazy);
            let mut count = 0u32;
            while cur.next_within(rq).is_some() {
                count += 1;
            }
            black_box(count)
        });
    });
    group.bench_function("refine_eager", |bencher| {
        let mut qi = 0usize;
        bencher.iter(|| {
            let q = proj_queries.point(qi % proj_queries.len());
            qi += 1;
            let mut cur = pm5.cursor_with_mode(black_box(q), RefineMode::Eager);
            let mut count = 0u32;
            while cur.next_within(rq).is_some() {
                count += 1;
            }
            black_box(count)
        });
    });

    group.bench_function("pivots_s5", |bencher| {
        let mut qi = 0usize;
        bencher.iter(|| {
            let q = proj_queries.point(qi % proj_queries.len());
            qi += 1;
            black_box(pm5.range(black_box(q), rq))
        });
    });
    group.bench_function("pivots_s0_mtree", |bencher| {
        let mut qi = 0usize;
        bencher.iter(|| {
            let q = proj_queries.point(qi % proj_queries.len());
            qi += 1;
            black_box(pm0.range(black_box(q), rq))
        });
    });

    // Radius enlargement: one surviving cursor vs restarting a range query
    // per round (what a naive RE implementation does).
    let radii: Vec<f32> = (0..4).map(|i| rq * 0.4 * 1.5f32.powi(i)).collect();
    group.bench_function("enlarge_incremental", |bencher| {
        let mut qi = 0usize;
        bencher.iter(|| {
            let q = proj_queries.point(qi % proj_queries.len());
            qi += 1;
            let mut cur = pm5.cursor(black_box(q));
            let mut count = 0u32;
            for &r in &radii {
                while cur.next_within(r).is_some() {
                    count += 1;
                }
            }
            black_box(count)
        });
    });
    group.bench_function("enlarge_restarting", |bencher| {
        let mut qi = 0usize;
        bencher.iter(|| {
            let q = proj_queries.point(qi % proj_queries.len());
            qi += 1;
            let mut count = 0u32;
            for &r in &radii {
                count += pm5.range(black_box(q), r).len() as u32;
            }
            black_box(count)
        });
    });

    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_ablation(&mut criterion);
}
