//! Batch-mutation bench: amortized [`Engine::apply`] against a
//! lock-step single-op twin issuing the identical ops through
//! [`Engine::insert`]/[`Engine::delete`].
//!
//! Every single-op mutation pays a full copy-on-write clone of the
//! snapshot — O(n·d) plus the tree — so `W` ops cost O(W·n). A batch
//! takes the writer lock once, clones once, patches all `W` ops into
//! the clone, and publishes once: O(n) + O(W). This bench measures that
//! amortization at batch widths `W ∈ {4, 16, 64, 256}` over a fixed op
//! budget, on the Audio paper dataset.
//!
//! Parity comes before performance: for every width, an untimed pass
//! runs the exact op schedule through `apply` on one engine and one op
//! at a time on a twin built over the identical data, asserting per-op
//! outcomes, live counts, epoch discipline (one bump per batch vs one
//! per op), and bit-identical k-NN answers at every batch boundary.
//! Only then are fresh engines timed. The wide-batch speedup must clear
//! 5× — the floor the amortization argument promises.
//!
//! Results go to `BENCH_mutation_batch.json` at the workspace root
//! (override with `PMLSH_BENCH_OUT`). Knobs: `PMLSH_SCALE`
//! (smoke|bench|full), `PMLSH_FORCE_SCALAR=1`.

use pm_lsh_bench::{f, scale_from_env, Table};
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::PaperDataset;
use pm_lsh_engine::{Engine, EngineConfig, MutOp};
use pm_lsh_stats::Rng;
use std::time::Instant;

const K: usize = 10;
const REPEATS: usize = 3;
const WIDTHS: [usize; 4] = [4, 16, 64, 256];
/// Mutations per width: every width replays this many ops, split into
/// `TOTAL_OPS / W` batches, so each row times the same amount of work.
const TOTAL_OPS: usize = 512;
/// Widths at or above this must show the promised ≥5× amortization.
const SPEEDUP_FLOOR_WIDTH: usize = 64;
const SPEEDUP_FLOOR: f64 = 5.0;

struct Row {
    width: usize,
    batches: usize,
    batched_us: f64,
    single_us: f64,
    speedup: f64,
}

fn main() {
    let scale = scale_from_env();
    let ds = PaperDataset::Audio;
    let generator = ds.generator(scale);
    let data = generator.dataset();
    let (n, d) = (data.len(), data.dim());
    println!(
        "batched vs single-op mutations — {} at scale {scale:?}, n = {n}, d = {d}, \
         {TOTAL_OPS} ops per width, W ∈ {WIDTHS:?}\n",
        ds.name()
    );

    // One build; timed runs restart from clones of this immutable base.
    let base = PmLsh::build(data, PmLshParams::paper_defaults());

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "width",
        "batches",
        "batched (µs/op)",
        "single (µs/op)",
        "speedup",
    ]);
    for width in WIDTHS {
        let batches = plan_schedule(n, d, width);
        assert_parity(&base, &batches, width);

        // --- timing: min-of-REPEATS over fresh engines ----------------------
        let mut batched_best = f64::INFINITY;
        let mut single_best = f64::INFINITY;
        for _ in 0..REPEATS {
            let engine = Engine::new(base.clone(), EngineConfig::default());
            let start = Instant::now();
            for batch in &batches {
                let report = engine.apply(batch).expect("bench batch apply");
                assert_eq!(report.failed(), 0, "planned op refused during timing");
            }
            batched_best = batched_best.min(start.elapsed().as_secs_f64() * 1e6);

            let engine = Engine::new(base.clone(), EngineConfig::default());
            let start = Instant::now();
            for batch in &batches {
                for op in batch {
                    match op {
                        MutOp::Insert(p) => {
                            engine.insert(p).expect("bench single insert");
                        }
                        MutOp::Delete(id) => {
                            engine.delete(*id).expect("bench single delete");
                        }
                    }
                }
            }
            single_best = single_best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        let batched_us = batched_best / TOTAL_OPS as f64;
        let single_us = single_best / TOTAL_OPS as f64;
        let speedup = single_best / batched_best;
        if width >= SPEEDUP_FLOOR_WIDTH {
            assert!(
                speedup >= SPEEDUP_FLOOR,
                "W={width}: batched speedup {speedup:.2}× below the {SPEEDUP_FLOOR}× floor"
            );
        }

        table.row(vec![
            width.to_string(),
            batches.len().to_string(),
            f(batched_us, 1),
            f(single_us, 1),
            format!("{speedup:.1}x"),
        ]);
        rows.push(Row {
            width,
            batches: batches.len(),
            batched_us,
            single_us,
            speedup,
        });
    }
    print!("{}", table.render());
    println!();

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"width\": {}, \"batches\": {}, \"batched_us_per_op\": {:.2}, \"single_us_per_op\": {:.2}, \"speedup\": {:.2} }}",
                r.width, r.batches, r.batched_us, r.single_us, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"mutation_batch\",\n  \"scale\": \"{scale:?}\",\n  \"parity\": true,\n  \"dataset\": \"{}\",\n  \"n\": {n},\n  \"d\": {d},\n  \"k\": {K},\n  \"ops_per_width\": {TOTAL_OPS},\n  \"speedup_floor\": {{ \"min_width\": {SPEEDUP_FLOOR_WIDTH}, \"ratio\": {SPEEDUP_FLOOR} }},\n  \"rows\": [\n{}\n  ]\n}}\n",
        ds.name(),
        json_rows.join(",\n"),
    );
    let out_path = std::env::var("PMLSH_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_mutation_batch.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => println!("could not write {out_path}: {e}"),
    }
}

/// Plans `TOTAL_OPS / width` batches of `width` mixed ops. Deletes are
/// drawn from a live-id model that evolves as the schedule is planned
/// (external ids are assigned sequentially and never reused, so the
/// model predicts every insert's id), which makes every op valid on
/// both the batched and the single-op path — timing never branches
/// into failure handling.
fn plan_schedule(n: usize, d: usize, width: usize) -> Vec<Vec<MutOp>> {
    let mut rng = Rng::new(0xBA7C_0000 + width as u64);
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut next_id = n as u32;
    let mut buf = vec![0.0f32; d];
    let mut batches = Vec::with_capacity(TOTAL_OPS / width);
    for _ in 0..TOTAL_OPS / width {
        let mut batch = Vec::with_capacity(width);
        for _ in 0..width {
            if rng.bernoulli(0.5) || live.len() < n / 2 {
                rng.fill_normal(&mut buf);
                batch.push(MutOp::Insert(buf.clone()));
                live.push(next_id);
                next_id += 1;
            } else {
                let victim = live.swap_remove(rng.below(live.len()));
                batch.push(MutOp::Delete(victim));
            }
        }
        batches.push(batch);
    }
    batches
}

/// The untimed lock-step pass: `apply` on one engine, one op at a time
/// on a twin over identical data. Identical build → identical
/// projections → answers must match bit for bit at every boundary.
fn assert_parity(base: &PmLsh, batches: &[Vec<MutOp>], width: usize) {
    let batched = Engine::new(base.clone(), EngineConfig::default());
    let single = Engine::new(base.clone(), EngineConfig::default());
    let mut rng = Rng::new(0xC0FFEE + width as u64);
    let mut probe = vec![0.0f32; base.data().dim()];
    let mut ops_done = 0u64;

    for (round, batch) in batches.iter().enumerate() {
        let report = batched.apply(batch).expect("parity batch apply");
        assert_eq!(report.failed(), 0, "W={width} round {round}: op refused");
        for (i, op) in batch.iter().enumerate() {
            let got = match op {
                MutOp::Insert(p) => single.insert(p).expect("parity single insert"),
                MutOp::Delete(id) => single.delete(*id).expect("parity single delete"),
            };
            assert_eq!(
                report.results[i],
                Ok(got.id),
                "W={width} round {round} op {i}: outcomes diverged"
            );
        }
        ops_done += batch.len() as u64;

        // Epoch discipline: one bump per batch vs one per op.
        assert_eq!(batched.epoch(), round as u64 + 1, "W={width}: batch epochs");
        assert_eq!(single.epoch(), ops_done, "W={width}: single-op epochs");
        assert_eq!(
            report.points,
            single.info().points,
            "W={width}: live counts"
        );

        rng.fill_normal(&mut probe);
        let a = batched.query(&probe, K);
        let b = single.query(&probe, K);
        assert_eq!(
            a.neighbors, b.neighbors,
            "W={width} round {round}: answers diverged"
        );
        assert_eq!(
            a.stats, b.stats,
            "W={width} round {round}: query counters diverged"
        );
    }
}
