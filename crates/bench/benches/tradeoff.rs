//! Bench (std-only `micro` harness) behind Figs. 10–11: PM-LSH latency as the approximation
//! ratio c varies (the time axis of the trade-off curves). The
//! `fig10_11_tradeoff` binary produces the recall/ratio series.

use pm_lsh_bench::micro::{BenchmarkId, Criterion};
use pm_lsh_bench::Workbench;
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::{PaperDataset, Scale};
use std::hint::black_box;
use std::time::Duration;

fn bench_tradeoff(criterion: &mut Criterion) {
    let wb = Workbench::prepare(PaperDataset::Deep, Scale::Smoke, 8, 50);
    let pm = PmLsh::build(wb.data.clone(), PmLshParams::default());

    let mut group = criterion.benchmark_group("fig10_11_tradeoff");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for c in [1.1f64, 1.5, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("PM-LSH_c", format!("{c:.1}")),
            &c,
            |bencher, &c| {
                let mut qi = 0usize;
                bencher.iter(|| {
                    let q = wb.queries.point(qi % wb.queries.len());
                    qi += 1;
                    black_box(pm.query_with_c(black_box(q), 50, c))
                });
            },
        );
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_tradeoff(&mut criterion);
}
