//! Bench (std-only `micro` harness) behind Figs. 7–9: PM-LSH and SRS latency across k on the
//! Cifar stand-in (the paper's observation is that time is ~flat in k).
//! The `fig7_9_vary_k` binary sweeps all algorithms and datasets.

use pm_lsh_baselines::{AnnIndex, Srs, SrsParams};
use pm_lsh_bench::micro::{BenchmarkId, Criterion};
use pm_lsh_bench::Workbench;
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::{PaperDataset, Scale};
use std::hint::black_box;
use std::time::Duration;

fn bench_vary_k(criterion: &mut Criterion) {
    let wb = Workbench::prepare(PaperDataset::Cifar, Scale::Smoke, 8, 100);
    let pm = PmLsh::build(wb.data.clone(), PmLshParams::paper_defaults());
    let srs = Srs::build(wb.data.clone(), SrsParams::default());

    let mut group = criterion.benchmark_group("fig7_9_vary_k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for k in [1usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("PM-LSH", k), &k, |bencher, &k| {
            let mut qi = 0usize;
            bencher.iter(|| {
                let q = wb.queries.point(qi % wb.queries.len());
                qi += 1;
                black_box(AnnIndex::query(&pm, black_box(q), k))
            });
        });
        group.bench_with_input(BenchmarkId::new("SRS", k), &k, |bencher, &k| {
            let mut qi = 0usize;
            bencher.iter(|| {
                let q = wb.queries.point(qi % wb.queries.len());
                qi += 1;
                black_box(srs.query(black_box(q), k))
            });
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_vary_k(&mut criterion);
}
