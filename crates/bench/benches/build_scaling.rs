//! Build scaling bench: `PmLsh::build_with_opts` wall-clock at 1/2/4/8
//! threads against the classic incremental `PmLsh::build`, on the Audio
//! stand-in (`PMLSH_SCALE` picks the size; default `bench` = the full
//! Audio n).
//!
//! Parallel builds must stay reproducible, so before any timing is
//! reported every thread count's index is checked for *neighbor-set
//! parity*: identical `k`-NN answers (ids, distances, and traversal
//! counters) to the 1-thread build on every probe query. The incremental
//! build is a different (also deterministic) construction, so only its
//! wall-clock is compared, not its neighbor sets.
//!
//! Speedup is bounded by the machine and by the pivot-region partition
//! (s = 5 regions at the paper's operating point, so ≥ 8 threads cannot
//! help more than 5-ish ways); on `available_parallelism() == 1` every
//! configuration necessarily lands near 1× and the run says so.

use pm_lsh_bench::{f, queries_from_env, scale_from_env, Table};
use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams, QueryResult};
use pm_lsh_data::PaperDataset;
use std::sync::Arc;
use std::time::Instant;

const K: usize = 10;
const REPEATS: usize = 3;

fn main() {
    let scale = scale_from_env();
    let generator = PaperDataset::Audio.generator(scale);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(queries_from_env());
    let params = PmLshParams::paper_defaults();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "index build scaling — Audio {scale:?}: n = {}, d = {}, m = {}, {} probe queries, {cores} core(s)\n",
        data.len(),
        data.dim(),
        params.m,
        queries.len()
    );

    // Incremental baseline (the paper-faithful single-threaded path).
    let mut incremental_s = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let index = PmLsh::build(Arc::clone(&data), params);
        incremental_s = incremental_s.min(start.elapsed().as_secs_f64());
        drop(index);
    }

    // 1-thread bulk-load: the parity reference for every other count.
    let mut reference: Option<(PmLsh, Vec<QueryResult>)> = None;
    let mut table = Table::new(&["configuration", "build s", "speedup", "identical"]);
    table.row(vec![
        "incremental (PmLsh::build)".into(),
        f(incremental_s, 3),
        "-".into(),
        "n/a".into(),
    ]);

    let mut one_thread_s = f64::INFINITY;
    for threads in [1usize, 2, 4, 8] {
        let mut best_s = f64::INFINITY;
        let mut index = None;
        for _ in 0..REPEATS {
            let start = Instant::now();
            let built = PmLsh::build_with_opts(
                Arc::clone(&data),
                params,
                BuildOptions::with_threads(threads),
            );
            best_s = best_s.min(start.elapsed().as_secs_f64());
            index = Some(built);
        }
        let index = index.expect("at least one build repeat ran");
        let answers: Vec<QueryResult> = queries.iter().map(|q| index.query(q, K)).collect();

        // Parity is a hard assertion — a diverging build aborts the bench
        // before any timing is reported, so a rendered row implies "yes".
        match &reference {
            None => {
                one_thread_s = best_s;
                reference = Some((index, answers));
            }
            Some((_, ref_answers)) => {
                let same = answers
                    .iter()
                    .zip(ref_answers)
                    .all(|(a, b)| a.neighbors == b.neighbors && a.stats == b.stats);
                assert!(
                    same,
                    "{threads}-thread build diverged from the 1-thread build"
                );
            }
        }
        table.row(vec![
            format!("bulk-load x{threads}"),
            f(best_s, 3),
            format!("{:.2}x", one_thread_s / best_s),
            "yes".into(),
        ]);
    }

    print!("{}", table.render());
    if cores < 4 {
        println!(
            "\nnote: only {cores} core(s) available — speedup is pinned near 1x here; \
             on >= 4 cores the 4-thread row approaches the pivot-region bound."
        );
    }
}
