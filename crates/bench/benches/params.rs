//! Bench (std-only `micro` harness) behind Fig. 6: PM-LSH query latency at different pivot
//! counts `s` and hash counts `m`. The `fig6_params` binary reports the
//! accompanying recall/ratio sweep.

use pm_lsh_baselines::AnnIndex;
use pm_lsh_bench::micro::{BenchmarkId, Criterion};
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::{PaperDataset, Scale};
use pm_lsh_pmtree::PmTreeConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_params(criterion: &mut Criterion) {
    let generator = PaperDataset::Trevi.generator(Scale::Smoke);
    let data = std::sync::Arc::new(generator.dataset());
    let queries = generator.queries(8);

    let mut group = criterion.benchmark_group("fig6_params");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for s in [0usize, 5, 9] {
        let params = PmLshParams {
            tree: PmTreeConfig {
                num_pivots: s,
                ..Default::default()
            },
            ..PmLshParams::paper_defaults()
        };
        let index = PmLsh::build(data.clone(), params);
        group.bench_with_input(BenchmarkId::new("pivots", s), &index, |bencher, index| {
            let mut qi = 0usize;
            bencher.iter(|| {
                let q = queries.point(qi % queries.len());
                qi += 1;
                black_box(AnnIndex::query(index, black_box(q), 50))
            });
        });
    }
    for m in [5u32, 15, 25] {
        let params = PmLshParams {
            m,
            ..PmLshParams::paper_defaults()
        };
        let index = PmLsh::build(data.clone(), params);
        group.bench_with_input(BenchmarkId::new("hashes", m), &index, |bencher, index| {
            let mut qi = 0usize;
            bencher.iter(|| {
                let q = queries.point(qi % queries.len());
                qi += 1;
                black_box(AnnIndex::query(index, black_box(q), 50))
            });
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_params(&mut criterion);
}
