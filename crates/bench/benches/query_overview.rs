//! Bench (std-only `micro` harness) behind Table 4: per-query latency of all six algorithms
//! on two contrasting datasets (easy Audio vs hard NUS stand-ins) at
//! smoke scale. The `table4_overview` binary produces the full table.

use pm_lsh_bench::micro::{BenchmarkId, Criterion};
use pm_lsh_bench::{build_all, Workbench};
use pm_lsh_data::{PaperDataset, Scale};
use std::hint::black_box;
use std::time::Duration;

fn bench_query_overview(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("table4_query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for ds in [PaperDataset::Audio, PaperDataset::Nus] {
        let wb = Workbench::prepare(ds, Scale::Smoke, 8, 50);
        let algos = build_all(wb.data.clone(), 1.5);
        for algo in &algos {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), ds.name()),
                &wb,
                |bencher, wb| {
                    let mut qi = 0usize;
                    bencher.iter(|| {
                        let q = wb.queries.point(qi % wb.queries.len());
                        qi += 1;
                        black_box(algo.query(black_box(q), 50))
                    });
                },
            );
        }
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_query_overview(&mut criterion);
}
