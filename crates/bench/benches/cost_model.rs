//! Bench (std-only `micro` harness) behind Table 2: measured (not modeled) range-query cost
//! on the PM-tree vs the R-tree over the same projected points — the
//! empirical counterpart of the Eq. 7 / Eq. 9 estimates printed by the
//! `table2_cost_model` binary.

use pm_lsh_bench::micro::{BenchmarkId, Criterion};
use pm_lsh_data::{PaperDataset, Scale};
use pm_lsh_hash::GaussianProjector;
use pm_lsh_pmtree::{PmTree, PmTreeConfig};
use pm_lsh_rtree::{RTree, RTreeConfig};
use pm_lsh_stats::{distance_distribution, Rng};
use std::hint::black_box;
use std::time::Duration;

fn bench_cost_model(criterion: &mut Criterion) {
    let generator = PaperDataset::Cifar.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(8);
    let mut rng = Rng::new(42);
    let projector = GaussianProjector::new(data.dim(), 15, &mut rng);
    let projected = projector.project_all(data.view());
    let proj_queries = projector.project_all(queries.view());

    let pm = PmTree::build(projected.view(), PmTreeConfig::default(), &mut rng);
    let rt = RTree::build(projected.view(), RTreeConfig::default());
    let f = distance_distribution(projected.view(), 20_000, &mut rng);
    let rq = f.quantile(0.08) as f32;

    let mut group = criterion.benchmark_group("table2_range_query");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group.bench_with_input(
        BenchmarkId::new("pm_tree", "range8pct"),
        &rq,
        |bencher, &rq| {
            let mut qi = 0usize;
            bencher.iter(|| {
                let q = proj_queries.point(qi % proj_queries.len());
                qi += 1;
                black_box(pm.range(black_box(q), rq))
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("r_tree", "range8pct"),
        &rq,
        |bencher, &rq| {
            let mut qi = 0usize;
            bencher.iter(|| {
                let q = proj_queries.point(qi % proj_queries.len());
                qi += 1;
                black_box(rt.range(black_box(q), rq))
            });
        },
    );
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_cost_model(&mut criterion);
}
