//! Query hot-path bench: before/after the allocation-free, SIMD,
//! early-abandoning verification refactor.
//!
//! Two workloads bracket the hot path's regimes: Audio (d = 192,
//! traversal-heavy) and Trevi (d = 4096, where candidate verification in
//! the original space dominates — the `βn` term of Theorem 2). For each,
//! three configurations answer the identical query stream:
//!
//! * `reference` — the pre-refactor path kept verbatim in
//!   `pm_lsh_core::reference` (fresh allocations per query, full
//!   distance + sqrt for every candidate);
//! * `fresh-context` — the refactored path through `PmLsh::query`
//!   (early-abandoning squared-distance verification, but a new
//!   `QueryContext` per call);
//! * `reused-context` — the refactored path through
//!   `PmLsh::query_with_context` with one long-lived context (the engine
//!   worker configuration: zero steady-state allocation).
//!
//! Every configuration's `neighbors` **and** `QueryStats` are asserted
//! bit-identical to the reference before any number is reported — the
//! refactor must buy speed, never answers. Besides the table, the run
//! writes machine-readable results to `BENCH_query_hotpath.json` at the
//! workspace root (override with `PMLSH_BENCH_OUT`) so the perf
//! trajectory of this path is recorded PR over PR.
//!
//! Knobs: `PMLSH_SCALE` (smoke|bench|full), `PMLSH_QUERIES`,
//! `PMLSH_FORCE_SCALAR=1` (pin the scalar kernels).

use pm_lsh_bench::{f, queries_from_env, scale_from_env, Table};
use pm_lsh_core::{PmLsh, PmLshParams, QueryContext, QueryResult};
use pm_lsh_data::PaperDataset;
use pm_lsh_metric::simd;
use std::sync::Arc;
use std::time::Instant;

const K: usize = 10;
const REPEATS: usize = 3;

struct DatasetReport {
    dataset: &'static str,
    n: usize,
    d: usize,
    queries: usize,
    qps_reference: f64,
    qps_fresh: f64,
    qps_reused: f64,
    ns_per_cand_reference: f64,
    ns_per_cand_reused: f64,
    mean_candidates: f64,
}

fn main() {
    let scale = scale_from_env();
    println!(
        "query hot path — scale {scale:?}, k = {K}, simd = {}\n",
        simd::active_level()
    );

    let reports: Vec<DatasetReport> = [PaperDataset::Audio, PaperDataset::Trevi]
        .into_iter()
        .map(|ds| run_dataset(ds, scale))
        .collect();

    let json_entries: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"dataset\": \"{}\",\n      \"n\": {},\n      \"d\": {},\n      \"k\": {K},\n      \"queries\": {},\n      \"qps_reference\": {:.1},\n      \"qps_fresh_context\": {:.1},\n      \"qps_reused_context\": {:.1},\n      \"speedup_fresh_context\": {:.3},\n      \"speedup_reused_context\": {:.3},\n      \"ns_per_candidate_reference\": {:.1},\n      \"ns_per_candidate_reused\": {:.1},\n      \"mean_candidates_verified\": {:.1}\n    }}",
                r.dataset,
                r.n,
                r.d,
                r.queries,
                r.qps_reference,
                r.qps_fresh,
                r.qps_reused,
                r.qps_fresh / r.qps_reference,
                r.qps_reused / r.qps_reference,
                r.ns_per_cand_reference,
                r.ns_per_cand_reused,
                r.mean_candidates,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"query_hotpath\",\n  \"scale\": \"{:?}\",\n  \"simd_level\": \"{}\",\n  \"parity\": true,\n  \"datasets\": [\n{}\n  ]\n}}\n",
        scale,
        simd::active_level(),
        json_entries.join(",\n"),
    );
    let out_path = std::env::var("PMLSH_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_query_hotpath.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => println!("could not write {out_path}: {e}"),
    }
}

fn run_dataset(ds: PaperDataset, scale: pm_lsh_data::Scale) -> DatasetReport {
    let generator = ds.generator(scale);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(queries_from_env());
    println!(
        "{} — n = {}, d = {}, {} queries",
        ds.name(),
        data.len(),
        data.dim(),
        queries.len()
    );

    let index = PmLsh::build(Arc::clone(&data), PmLshParams::paper_defaults());

    // --- reference (pre-refactor) -----------------------------------------
    let mut reference: Vec<QueryResult> = Vec::new();
    let mut ref_best_s = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let r: Vec<QueryResult> = queries
            .iter()
            .map(|q| index.query_reference(q, K))
            .collect();
        ref_best_s = ref_best_s.min(start.elapsed().as_secs_f64());
        reference = r;
    }

    // --- refactored, fresh context per query ------------------------------
    let mut fresh_best_s = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let r: Vec<QueryResult> = queries.iter().map(|q| index.query(q, K)).collect();
        fresh_best_s = fresh_best_s.min(start.elapsed().as_secs_f64());
        assert_parity(&r, &reference, "fresh-context");
    }

    // --- refactored, one reused context (engine-worker configuration) -----
    let mut reused_best_s = f64::INFINITY;
    let mut ctx = QueryContext::new();
    for _ in 0..REPEATS {
        let start = Instant::now();
        let r: Vec<QueryResult> = queries
            .iter()
            .map(|q| index.query_with_context(q, K, &mut ctx))
            .collect();
        reused_best_s = reused_best_s.min(start.elapsed().as_secs_f64());
        assert_parity(&r, &reference, "reused-context");
    }

    let nq = queries.len() as f64;
    let total_candidates: usize = reference.iter().map(|r| r.stats.candidates_verified).sum();
    // Per-candidate verification cost: whole-query time over verified
    // candidates. The refactor attacks exactly this number (early
    // abandonment + no allocation between candidates).
    let ns_per_cand = |secs: f64| secs * 1e9 / total_candidates as f64;
    let (ref_qps, fresh_qps, reused_qps) = (nq / ref_best_s, nq / fresh_best_s, nq / reused_best_s);

    let mut table = Table::new(&[
        "configuration",
        "queries/s",
        "speedup",
        "ns/candidate",
        "identical",
    ]);
    table.row(vec![
        "reference (pre-refactor)".into(),
        f(ref_qps, 0),
        "1.00x".into(),
        f(ns_per_cand(ref_best_s), 0),
        "-".into(),
    ]);
    table.row(vec![
        "fresh-context".into(),
        f(fresh_qps, 0),
        format!("{:.2}x", fresh_qps / ref_qps),
        f(ns_per_cand(fresh_best_s), 0),
        "yes".into(),
    ]);
    table.row(vec![
        "reused-context".into(),
        f(reused_qps, 0),
        format!("{:.2}x", reused_qps / ref_qps),
        f(ns_per_cand(reused_best_s), 0),
        "yes".into(),
    ]);
    print!("{}", table.render());
    println!(
        "mean candidates verified per query: {:.1}\n",
        total_candidates as f64 / nq
    );

    DatasetReport {
        dataset: ds.name(),
        n: data.len(),
        d: data.dim(),
        queries: queries.len(),
        qps_reference: ref_qps,
        qps_fresh: fresh_qps,
        qps_reused: reused_qps,
        ns_per_cand_reference: ns_per_cand(ref_best_s),
        ns_per_cand_reused: ns_per_cand(reused_best_s),
        mean_candidates: total_candidates as f64 / nq,
    }
}

fn assert_parity(got: &[QueryResult], reference: &[QueryResult], label: &str) {
    for (qi, (g, r)) in got.iter().zip(reference).enumerate() {
        assert_eq!(
            g.neighbors, r.neighbors,
            "{label}: neighbors diverged from reference at query {qi}"
        );
        assert_eq!(
            g.stats, r.stats,
            "{label}: stats diverged from reference at query {qi}"
        );
    }
}
