//! Cold-start bench: loading a `.pmlsh` snapshot vs rebuilding from the
//! fvecs it came from.
//!
//! The scenario is a server (re)start: the index must be in memory and
//! answering before the first query. Path A reads the dataset file and
//! runs the paper build (`pmlsh serve --data name=file.fvecs`); path B
//! deserializes a previously saved snapshot (`--data name=file.pmlsh`).
//! Both start from the filesystem, so the comparison is end to end —
//! file read included.
//!
//! Before any number is reported, the loaded index's `neighbors` **and**
//! `QueryStats` are asserted bit-identical to the rebuilt index's on the
//! whole query stream (the build is deterministic, so rebuild and
//! snapshot describe the same index — the snapshot must not change a
//! single answer). The run asserts load ≥ 10x faster than rebuild and
//! writes `BENCH_persist_load.json` at the workspace root (override
//! with `PMLSH_BENCH_OUT`).
//!
//! Knobs: `PMLSH_SCALE` (smoke|bench|full), `PMLSH_QUERIES`,
//! `PMLSH_FORCE_SCALAR=1` (pin the scalar kernels).

use pm_lsh_bench::{f, queries_from_env, scale_from_env, Table};
use pm_lsh_core::{PmLsh, PmLshParams, QueryResult};
use pm_lsh_data::{read_auto, write_fvecs, PaperDataset};
use pm_lsh_persist::Snapshot;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const K: usize = 10;
const REPEATS: usize = 3;
const MIN_SPEEDUP: f64 = 10.0;

struct Report {
    dataset: &'static str,
    n: usize,
    d: usize,
    queries: usize,
    build_s: f64,
    load_s: f64,
    snapshot_bytes: u64,
}

fn temp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pmlsh-bench-{tag}-{}-{}.{ext}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

fn main() {
    let scale = scale_from_env();
    println!("snapshot load vs fvecs rebuild — scale {scale:?}, k = {K}\n");

    let reports: Vec<Report> = [PaperDataset::Audio, PaperDataset::Trevi]
        .into_iter()
        .map(|ds| run_dataset(ds, scale))
        .collect();

    let json_entries: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"dataset\": \"{}\",\n      \"n\": {},\n      \"d\": {},\n      \"k\": {K},\n      \"queries\": {},\n      \"fvecs_rebuild_s\": {:.4},\n      \"pmlsh_load_s\": {:.4},\n      \"load_speedup\": {:.1},\n      \"snapshot_bytes\": {}\n    }}",
                r.dataset,
                r.n,
                r.d,
                r.queries,
                r.build_s,
                r.load_s,
                r.build_s / r.load_s,
                r.snapshot_bytes,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"persist_load\",\n  \"scale\": \"{:?}\",\n  \"parity\": true,\n  \"min_speedup_asserted\": {MIN_SPEEDUP},\n  \"datasets\": [\n{}\n  ]\n}}\n",
        scale,
        json_entries.join(",\n"),
    );
    let out_path = std::env::var("PMLSH_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_persist_load.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => println!("could not write {out_path}: {e}"),
    }
}

fn run_dataset(ds: PaperDataset, scale: pm_lsh_data::Scale) -> Report {
    let generator = ds.generator(scale);
    let data = generator.dataset();
    let queries = generator.queries(queries_from_env());
    println!(
        "{} — n = {}, d = {}, {} queries",
        ds.name(),
        data.len(),
        data.dim(),
        queries.len()
    );

    let fvecs = temp_path(ds.name(), "fvecs");
    let snap = temp_path(ds.name(), "pmlsh");
    write_fvecs(&fvecs, &data).expect("write fvecs");

    // --- path A: cold start from the dataset file --------------------------
    let mut built: Option<PmLsh> = None;
    let mut build_best_s = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let data = Arc::new(read_auto(&fvecs, None).expect("read fvecs"));
        let index = PmLsh::build(data, PmLshParams::paper_defaults());
        build_best_s = build_best_s.min(start.elapsed().as_secs_f64());
        built = Some(index);
    }
    let built = built.unwrap();
    let reference: Vec<QueryResult> = queries.iter().map(|q| built.query(q, K)).collect();

    let snapshot_bytes = built.save(&snap).expect("save snapshot").bytes;

    // --- path B: cold start from the snapshot -------------------------------
    let mut loaded: Option<PmLsh> = None;
    let mut load_best_s = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let index = PmLsh::load(&snap).expect("load snapshot");
        load_best_s = load_best_s.min(start.elapsed().as_secs_f64());
        loaded = Some(index);
    }
    let loaded = loaded.unwrap();

    // Parity before performance: the snapshot must not change one answer.
    for (qi, q) in queries.iter().enumerate() {
        let got = loaded.query(q, K);
        assert_eq!(
            got.neighbors,
            reference[qi].neighbors,
            "{}: loaded index diverged on query {qi}",
            ds.name()
        );
        assert_eq!(
            got.stats,
            reference[qi].stats,
            "{}: loaded index did different work on query {qi}",
            ds.name()
        );
    }

    let speedup = build_best_s / load_best_s;
    let mut table = Table::new(&["cold-start path", "seconds", "speedup", "identical"]);
    table.row(vec![
        "fvecs read + build".into(),
        f(build_best_s, 3),
        "1.00x".into(),
        "-".into(),
    ]);
    table.row(vec![
        ".pmlsh load".into(),
        f(load_best_s, 3),
        format!("{speedup:.1}x"),
        "yes".into(),
    ]);
    print!("{}", table.render());
    println!(
        "snapshot: {:.2} MiB on disk\n",
        snapshot_bytes as f64 / (1024.0 * 1024.0)
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "{}: snapshot load is only {speedup:.1}x faster than rebuild (gate: {MIN_SPEEDUP}x)",
        ds.name()
    );

    let _ = std::fs::remove_file(&fvecs);
    let _ = std::fs::remove_file(&snap);

    Report {
        dataset: ds.name(),
        n: data.len(),
        d: data.dim(),
        queries: queries.len(),
        build_s: build_best_s,
        load_s: load_best_s,
        snapshot_bytes,
    }
}
