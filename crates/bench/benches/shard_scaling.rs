//! Shard-scaling bench: build time and copy-on-write mutation latency of
//! the scatter-gather [`ShardedEngine`] at `S ∈ {1, 2, 4, 8}`.
//!
//! The sharded engine's two structural promises are (a) build
//! parallelism beyond the `s ≈ 5` pivot regions — `S` shard trees build
//! on `S` OS threads — and (b) `O(n/S)` single-point mutations, because
//! copy-on-write publication clones only the owning shard. This bench
//! measures both against the `S = 1` monolith on the paper datasets.
//!
//! Parity comes before performance: for every `S`, the per-shard fan-out
//! budgets must sum to at least the monolithic `⌈β·n⌉ + k` and the
//! scatter-gather answers must recall at least as much as the monolith's
//! against the linear-scan oracle on the measured query stream — the
//! same inequalities `crates/engine/tests/sharded_parity.rs` enforces —
//! before any timing is reported.
//!
//! Results go to `BENCH_shard_scaling.json` at the workspace root
//! (override with `PMLSH_BENCH_OUT`). Knobs: `PMLSH_SCALE`
//! (smoke|bench|full), `PMLSH_QUERIES`, `PMLSH_FORCE_SCALAR=1`.

use pm_lsh_bench::{f, queries_from_env, scale_from_env, Table};
use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
use pm_lsh_data::{exact_knn_batch, recall, PaperDataset};
use pm_lsh_engine::{Engine, EngineConfig, ShardedEngine};
use std::time::Instant;

const K: usize = 10;
const REPEATS: usize = 3;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Insert/delete pairs timed per repeat.
const MUTATION_PAIRS: usize = 25;

struct Row {
    shards: usize,
    build_s: f64,
    insert_us: f64,
    delete_us: f64,
    recall: f64,
}

struct Report {
    dataset: &'static str,
    n: usize,
    d: usize,
    queries: usize,
    mono_recall: f64,
    rows: Vec<Row>,
}

fn main() {
    let scale = scale_from_env();
    println!("sharded engine scaling — scale {scale:?}, k = {K}, S ∈ {SHARD_COUNTS:?}\n");

    let reports: Vec<Report> = [PaperDataset::Audio, PaperDataset::Trevi]
        .into_iter()
        .map(|ds| run_dataset(ds, scale))
        .collect();

    let json_entries: Vec<String> = reports
        .iter()
        .map(|r| {
            let rows: Vec<String> = r
                .rows
                .iter()
                .map(|row| {
                    format!(
                        "        {{ \"shards\": {}, \"build_s\": {:.4}, \"insert_us\": {:.1}, \"delete_us\": {:.1}, \"recall\": {:.4} }}",
                        row.shards, row.build_s, row.insert_us, row.delete_us, row.recall
                    )
                })
                .collect();
            format!(
                "    {{\n      \"dataset\": \"{}\",\n      \"n\": {},\n      \"d\": {},\n      \"k\": {K},\n      \"queries\": {},\n      \"monolithic_recall\": {:.4},\n      \"per_shard_count\": [\n{}\n      ]\n    }}",
                r.dataset,
                r.n,
                r.d,
                r.queries,
                r.mono_recall,
                rows.join(",\n"),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"scale\": \"{:?}\",\n  \"parity\": true,\n  \"datasets\": [\n{}\n  ]\n}}\n",
        scale,
        json_entries.join(",\n"),
    );
    let out_path = std::env::var("PMLSH_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_shard_scaling.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => println!("could not write {out_path}: {e}"),
    }
}

fn run_dataset(ds: PaperDataset, scale: pm_lsh_data::Scale) -> Report {
    let generator = ds.generator(scale);
    let data = generator.dataset();
    let queries = generator.queries(queries_from_env());
    println!(
        "{} — n = {}, d = {}, {} queries",
        ds.name(),
        data.len(),
        data.dim(),
        queries.len()
    );

    let params = PmLshParams::paper_defaults();
    let truth = exact_knn_batch(data.view(), queries.view(), K, 0);
    let avg_recall = |engine: &ShardedEngine| -> f64 {
        queries
            .iter()
            .zip(&truth)
            .map(|(q, t)| recall(&engine.query(q, K).neighbors, t))
            .sum::<f64>()
            / queries.len() as f64
    };

    // The monolithic reference: built once, queried for the recall floor.
    let mono: ShardedEngine =
        Engine::new(PmLsh::build(data.clone(), params), EngineConfig::default()).into();
    let mono_budget = mono.candidate_budget(K);
    let mono_recall = avg_recall(&mono);

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "shards",
        "build (s)",
        "insert (µs)",
        "delete (µs)",
        "recall",
    ]);
    for shards in SHARD_COUNTS {
        // --- build: min-of-REPEATS wall clock --------------------------------
        let mut engine: Option<ShardedEngine> = None;
        let mut build_best_s = f64::INFINITY;
        for _ in 0..REPEATS {
            let start = Instant::now();
            let built = ShardedEngine::build(
                &data,
                params,
                BuildOptions::default(),
                shards,
                EngineConfig::default(),
            );
            build_best_s = build_best_s.min(start.elapsed().as_secs_f64());
            engine = Some(built);
        }
        let engine = engine.unwrap();

        // --- parity before performance ---------------------------------------
        assert!(
            engine.candidate_budget(K) >= mono_budget,
            "{} S={shards}: summed fan-out budget {} below monolithic {mono_budget}",
            ds.name(),
            engine.candidate_budget(K)
        );
        let sharded_recall = avg_recall(&engine);
        assert!(
            sharded_recall >= mono_recall - 1e-6,
            "{} S={shards}: recall {sharded_recall:.4} below monolithic {mono_recall:.4}",
            ds.name()
        );

        // --- mutation latency: O(n/S) copy-on-write clones -------------------
        let probe = data.point(0).to_vec();
        let mut insert_best_us = f64::INFINITY;
        let mut delete_best_us = f64::INFINITY;
        for _ in 0..REPEATS {
            let mut inserted = Vec::with_capacity(MUTATION_PAIRS);
            let start = Instant::now();
            for _ in 0..MUTATION_PAIRS {
                inserted.push(engine.insert(&probe).expect("bench insert").id);
            }
            let insert_us = start.elapsed().as_secs_f64() * 1e6 / MUTATION_PAIRS as f64;
            let start = Instant::now();
            for id in inserted {
                engine.delete(id).expect("bench delete");
            }
            let delete_us = start.elapsed().as_secs_f64() * 1e6 / MUTATION_PAIRS as f64;
            insert_best_us = insert_best_us.min(insert_us);
            delete_best_us = delete_best_us.min(delete_us);
        }

        table.row(vec![
            shards.to_string(),
            f(build_best_s, 3),
            f(insert_best_us, 1),
            f(delete_best_us, 1),
            format!("{sharded_recall:.4}"),
        ]);
        rows.push(Row {
            shards,
            build_s: build_best_s,
            insert_us: insert_best_us,
            delete_us: delete_best_us,
            recall: sharded_recall,
        });
    }
    print!("{}", table.render());
    println!();

    Report {
        dataset: ds.name(),
        n: data.len(),
        d: data.dim(),
        queries: queries.len(),
        mono_recall,
        rows,
    }
}
