//! Bench (std-only `micro` harness) behind Fig. 3: cost of ranking candidates with each
//! distance estimator. The `fig3_estimators` binary produces the full
//! recall/ratio curves.

use pm_lsh_bench::micro::{BenchmarkId, Criterion};
use pm_lsh_core::{estimator_study, Estimator};
use pm_lsh_data::{PaperDataset, Scale};
use std::hint::black_box;
use std::time::Duration;

fn bench_estimators(criterion: &mut Criterion) {
    let generator = PaperDataset::Trevi.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(4);

    let mut group = criterion.benchmark_group("fig3_estimators");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for est in [
        Estimator::L2,
        Estimator::L1,
        Estimator::Qd(8.0),
        Estimator::Rand,
    ] {
        group.bench_with_input(
            BenchmarkId::new("study", est.name()),
            &est,
            |bencher, &est| {
                bencher.iter(|| {
                    black_box(estimator_study(
                        black_box(&data),
                        &queries,
                        15,
                        20,
                        &[100, 200],
                        &[est],
                        7,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_estimators(&mut criterion);
}
