//! Engine scaling bench: `Engine::query_batch` throughput at 1/2/4/8
//! workers against the sequential `PmLsh::query` baseline, on the Audio
//! smoke stand-in. The engine must add concurrency without changing
//! answers, so every configuration's neighbor sets are checked for bit
//! equality against the sequential run before its throughput is reported.
//!
//! Speedup is bounded by the machine: on `available_parallelism() == 1`
//! (a single-core CI box) every configuration necessarily lands near 1×,
//! and the run reports that instead of pretending to scale.

use pm_lsh_bench::{f, Table};
use pm_lsh_core::{PmLsh, PmLshParams, QueryResult};
use pm_lsh_data::{PaperDataset, Scale};
use pm_lsh_engine::{Engine, EngineConfig};
use std::sync::Arc;
use std::time::Instant;

const K: usize = 10;
const N_QUERIES: usize = 200;
const REPEATS: usize = 3;

fn main() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(N_QUERIES);
    let query_vecs: Vec<&[f32]> = queries.iter().collect();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "engine throughput — Audio smoke: n = {}, d = {}, {} queries, k = {K}, {cores} core(s)\n",
        data.len(),
        data.dim(),
        queries.len()
    );

    let index = Arc::new(PmLsh::build(
        Arc::clone(&data),
        PmLshParams::paper_defaults(),
    ));

    // Sequential baseline: best of REPEATS full passes.
    let mut sequential: Vec<QueryResult> = Vec::new();
    let mut seq_best_s = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let results: Vec<QueryResult> = query_vecs.iter().map(|q| index.query(q, K)).collect();
        seq_best_s = seq_best_s.min(start.elapsed().as_secs_f64());
        sequential = results;
    }
    let seq_qps = queries.len() as f64 / seq_best_s;

    // p50/p99 are enqueue-to-completion latencies: the whole burst enters
    // the engine at once, so they reflect queue position under the burst
    // (and shrink with worker count), not bare per-query execution time.
    let mut table = Table::new(&[
        "configuration",
        "queries/s",
        "speedup",
        "p50 ms",
        "p99 ms",
        "identical",
    ]);
    table.row(vec![
        "sequential".into(),
        f(seq_qps, 0),
        "1.00x".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(
            Arc::clone(&index),
            EngineConfig {
                threads: workers,
                ..Default::default()
            },
        );
        let mut best_s = f64::INFINITY;
        let mut results: Vec<QueryResult> = Vec::new();
        for _ in 0..REPEATS {
            let start = Instant::now();
            let r = engine.query_batch(&query_vecs, K);
            best_s = best_s.min(start.elapsed().as_secs_f64());
            results = r;
        }
        let identical = results
            .iter()
            .zip(&sequential)
            .all(|(a, b)| a.neighbors == b.neighbors && a.stats == b.stats);
        assert!(
            identical,
            "{workers}-worker batch diverged from the sequential answers"
        );
        let stats = engine.stats();
        let qps = queries.len() as f64 / best_s;
        table.row(vec![
            format!("engine x{workers}"),
            f(qps, 0),
            format!("{:.2}x", qps / seq_qps),
            f(stats.p50_ms, 3),
            f(stats.p99_ms, 3),
            "yes".into(),
        ]);
    }

    print!("{}", table.render());
    if cores < 4 {
        println!(
            "\nnote: only {cores} core(s) available — speedup is pinned near 1x here; \
             on >= 4 cores the 4-worker row exceeds 2x."
        );
    }
}
