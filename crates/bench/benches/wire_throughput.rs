//! Wire-protocol throughput: newline text vs length-prefixed binary
//! framing against a live serving reactor, at 1 / 64 / 1000 concurrent
//! connections.
//!
//! The scenario is a query client fleet: the server runs in-process on a
//! loopback listener, every connection is a real non-blocking socket
//! registered with the epoll reactor, and a small pool of client threads
//! drives round-trip QUERYs across the open connections (serving 1000
//! connections does not take 1000 threads on either side — the bench
//! asserts the process's total thread count stays far below the
//! connection count while the 1000-connection level is live).
//!
//! Before any number is reported, text and binary replies are asserted
//! bit-identical — same neighbor ids, same f32 distance bits — on a
//! shared query prefix. The timed loop then measures end-to-end protocol
//! cost per framing: request encode, server decode, engine query, reply
//! encode, client decode. On Trevi (d = 4096) a text QUERY renders and
//! reparses ~4096 ASCII floats per round trip where the binary frame
//! moves the same 16 KiB as raw little-endian bytes; the run asserts
//! binary achieves at least 2x the text throughput there, and writes
//! `BENCH_wire_throughput.json` at the workspace root (override with
//! `PMLSH_BENCH_OUT`).
//!
//! Knobs: `PMLSH_SCALE` (smoke|bench|full), `PMLSH_FORCE_SCALAR=1`.

use pm_lsh_bench::{f, scale_from_env, Table};
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::PaperDataset;
use pm_lsh_engine::router::Router;
use pm_lsh_engine::server::parse_ok_response;
use pm_lsh_engine::{frame, serve_router, Engine, EngineConfig, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

const K: usize = 10;
const QUERY_POOL: usize = 64;
const PARITY_QUERIES: usize = 32;
/// Timed round trips per (framing, connection-level) run.
const REQUESTS_PER_RUN: usize = 384;
const CLIENT_THREADS: usize = 8;
/// Ceiling on the whole process's thread count while 1000 connections
/// are live — the reactor must not scale threads with connections.
const MAX_PROCESS_THREADS: usize = 100;
const MIN_TREVI_SPEEDUP: f64 = 2.0;

struct Run {
    framing: &'static str,
    conns: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

struct Report {
    dataset: &'static str,
    n: usize,
    d: usize,
    runs: Vec<Run>,
}

/// One client connection; in binary mode it has already negotiated
/// `HELLO binary`.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(handle: &ServerHandle, binary: bool) -> Conn {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.set_nodelay(true).ok();
        let mut conn = Conn {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        };
        if binary {
            assert_eq!(conn.text_roundtrip("HELLO binary"), "OK binary");
        }
        conn
    }

    fn text_roundtrip(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        assert!(!reply.is_empty(), "server closed the connection");
        reply.trim_end().to_string()
    }

    /// One timed text QUERY round trip; returns the neighbor count.
    fn query_text(&mut self, k: usize, q: &[f32]) -> usize {
        let mut line = String::with_capacity(16 + q.len() * 10);
        line.push_str("QUERY ");
        line.push_str(&k.to_string());
        for v in q {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        line.push('\n');
        let reply = self.text_roundtrip(line.trim_end());
        parse_ok_response(&reply)
            .unwrap_or_else(|_| panic!("bad reply: {reply}"))
            .len()
    }

    /// One timed binary QUERY round trip; returns the neighbor count.
    fn query_binary(&mut self, k: usize, q: &[f32]) -> usize {
        let mut framed = Vec::with_capacity(16 + q.len() * 4);
        frame::encode_query(k as u32, q, &mut framed);
        self.writer.write_all(&framed).expect("send frame");
        let mut prefix = [0u8; 4];
        self.reader.read_exact(&mut prefix).expect("frame length");
        let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
        self.reader.read_exact(&mut payload).expect("frame payload");
        match frame::decode_reply(&payload).expect("well-formed reply") {
            frame::Reply::Ok(pairs) => pairs.len(),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}

/// Soft fd limit, minus headroom, split two ways: each loopback
/// connection burns two descriptors in this single-process bench
/// (client end + server end).
fn max_conns_by_fd_limit() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    let soft = limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1024);
    (soft.saturating_sub(128) / 2).max(1)
}

/// `Threads:` from /proc/self/status (0 when unavailable).
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap_or_default()
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let scale = scale_from_env();
    let conn_cap = max_conns_by_fd_limit();
    let mut levels: Vec<usize> = [1usize, 64, 1000]
        .into_iter()
        .map(|l| l.min(conn_cap))
        .collect();
    levels.dedup();
    if conn_cap < 1000 {
        println!("fd soft limit clamps the top level to {conn_cap} connections");
    }
    println!(
        "wire throughput, text vs binary framing — scale {scale:?}, k = {K}, \
         {REQUESTS_PER_RUN} round trips per run, levels {levels:?}\n"
    );

    let reports: Vec<Report> = [PaperDataset::Audio, PaperDataset::Trevi]
        .into_iter()
        .map(|ds| run_dataset(ds, scale, &levels))
        .collect();

    // The headline gate: on the widest dataset the binary framing must
    // at least halve the protocol cost. Compared at one connection,
    // where the measurement is a pure serial round-trip cost.
    let trevi = reports.iter().find(|r| r.dataset == "Trevi").unwrap();
    let text_qps = best_qps(trevi, "text", 1);
    let binary_qps = best_qps(trevi, "binary", 1);
    let speedup = binary_qps / text_qps;
    println!("Trevi d=4096, 1 connection: binary {speedup:.2}x text throughput");
    assert!(
        speedup >= MIN_TREVI_SPEEDUP,
        "binary framing is only {speedup:.2}x text on Trevi (gate: {MIN_TREVI_SPEEDUP}x)"
    );

    let json_reports: Vec<String> = reports
        .iter()
        .map(|r| {
            let runs: Vec<String> = r
                .runs
                .iter()
                .map(|run| {
                    format!(
                        "        {{ \"framing\": \"{}\", \"connections\": {}, \"qps\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}",
                        run.framing, run.conns, run.qps, run.p50_ms, run.p99_ms
                    )
                })
                .collect();
            format!(
                "    {{\n      \"dataset\": \"{}\",\n      \"n\": {},\n      \"d\": {},\n      \"runs\": [\n{}\n      ]\n    }}",
                r.dataset,
                r.n,
                r.d,
                runs.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"wire_throughput\",\n  \"scale\": \"{:?}\",\n  \"k\": {K},\n  \"requests_per_run\": {REQUESTS_PER_RUN},\n  \"client_threads\": {CLIENT_THREADS},\n  \"parity\": true,\n  \"trevi_binary_speedup_1conn\": {:.2},\n  \"min_trevi_speedup_asserted\": {MIN_TREVI_SPEEDUP},\n  \"datasets\": [\n{}\n  ]\n}}\n",
        scale,
        speedup,
        json_reports.join(",\n"),
    );
    let out_path = std::env::var("PMLSH_BENCH_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_wire_throughput.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => println!("could not write {out_path}: {e}"),
    }
}

fn best_qps(report: &Report, framing: &str, conns: usize) -> f64 {
    report
        .runs
        .iter()
        .find(|r| r.framing == framing && r.conns == conns)
        .map(|r| r.qps)
        .expect("run present")
}

fn run_dataset(ds: PaperDataset, scale: pm_lsh_data::Scale, levels: &[usize]) -> Report {
    let generator = ds.generator(scale);
    let data = generator.dataset();
    let (n, d) = (data.len(), data.dim());
    let queries: Arc<Vec<Vec<f32>>> = Arc::new(
        generator
            .queries(QUERY_POOL)
            .iter()
            .map(|q| q.to_vec())
            .collect(),
    );
    println!("{} — n = {n}, d = {d}", ds.name());

    let engine = Engine::new(
        PmLsh::build(data, PmLshParams::paper_defaults()),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let router = Router::new();
    router.attach(ds.name(), engine).expect("attach");
    let handle = serve_router(
        router,
        ("127.0.0.1", 0),
        ServerConfig {
            max_connections: 2048,
            ..Default::default()
        },
    )
    .expect("bind port 0");

    // Parity before performance: text and binary replies must carry the
    // same ids and the same f32 distance bits for the same queries.
    {
        let mut text = Conn::open(&handle, false);
        let mut binary = Conn::open(&handle, true);
        for (qi, q) in queries.iter().take(PARITY_QUERIES).enumerate() {
            let mut line = format!("QUERY {K}");
            for v in q {
                line.push(' ');
                line.push_str(&v.to_string());
            }
            let reply = text.text_roundtrip(&line);
            let text_pairs = parse_ok_response(&reply).expect("OK reply");

            let mut framed = Vec::new();
            frame::encode_query(K as u32, q, &mut framed);
            binary.writer.write_all(&framed).expect("send frame");
            let mut prefix = [0u8; 4];
            binary.reader.read_exact(&mut prefix).expect("frame length");
            let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
            binary.reader.read_exact(&mut payload).expect("payload");
            let bin_pairs = match frame::decode_reply(&payload).expect("reply") {
                frame::Reply::Ok(pairs) => pairs,
                other => panic!("query {qi}: unexpected {other:?}"),
            };

            assert_eq!(bin_pairs.len(), text_pairs.len(), "query {qi}: count");
            for (b, t) in bin_pairs.iter().zip(&text_pairs) {
                assert_eq!(b.0, u64::from(t.0), "query {qi}: id diverged");
                assert_eq!(
                    b.1.to_bits(),
                    t.1.to_bits(),
                    "query {qi}: distance bits diverged"
                );
            }
        }
    }

    let mut runs = Vec::new();
    let mut table = Table::new(&["framing", "conns", "qps", "p50 ms", "p99 ms"]);
    for &framing in &["text", "binary"] {
        for &level in levels {
            let run = run_level(&handle, framing, level, Arc::clone(&queries));
            table.row(vec![
                framing.into(),
                run.conns.to_string(),
                f(run.qps, 0),
                f(run.p50_ms, 3),
                f(run.p99_ms, 3),
            ]);
            runs.push(run);
        }
    }
    print!("{}", table.render());
    println!();

    let report = handle.shutdown_within(std::time::Duration::from_secs(10));
    assert!(
        report.drained,
        "bench connections did not drain: {report:?}"
    );
    Report {
        dataset: ds.name(),
        n,
        d,
        runs,
    }
}

fn run_level(
    handle: &ServerHandle,
    framing: &'static str,
    level: usize,
    queries: Arc<Vec<Vec<f32>>>,
) -> Run {
    let binary = framing == "binary";
    // All connections open before the timer; each stays open for the
    // whole run so the reactor holds `level` registered sockets.
    let conns: Vec<Conn> = (0..level).map(|_| Conn::open(handle, binary)).collect();

    if level >= 1000 {
        let threads = process_threads();
        assert!(
            threads > 0 && threads < MAX_PROCESS_THREADS,
            "{threads} process threads while serving {level} connections \
             (reactor must not scale threads with connections)"
        );
        println!("  {level} live connections served by a {threads}-thread process");
    }

    // Split the connections across a fixed client pool; every thread
    // owns its slice exclusively and round-robins requests over it.
    let workers = CLIENT_THREADS.min(level);
    let mut slices: Vec<Vec<Conn>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, conn) in conns.into_iter().enumerate() {
        slices[i % workers].push(conn);
    }
    let per_worker = REQUESTS_PER_RUN.div_ceil(workers);

    let wall = Instant::now();
    let handles: Vec<std::thread::JoinHandle<Vec<f64>>> = slices
        .into_iter()
        .enumerate()
        .map(|(w, mut slice)| {
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_worker);
                let span = slice.len();
                for i in 0..per_worker {
                    let conn = &mut slice[i % span];
                    let q = &queries[(w * per_worker + i) % queries.len()];
                    let start = Instant::now();
                    let got = if binary {
                        conn.query_binary(K, q)
                    } else {
                        conn.query_text(K, q)
                    };
                    latencies.push(start.elapsed().as_secs_f64() * 1e3);
                    assert!(got > 0, "empty result set");
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = wall.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    Run {
        framing,
        conns: level,
        qps: latencies.len() as f64 / elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}
