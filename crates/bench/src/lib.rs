//! Shared machinery of the PM-LSH experiment harness.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the experiment index); this library holds
//! what they share: workload preparation (dataset + queries + exact ground
//! truth), the algorithm roster of Section 6.1, timed workload execution,
//! and plain-text table rendering.
//!
//! Environment knobs honored by every binary:
//!
//! * `PMLSH_SCALE` — `smoke` | `bench` (default) | `full`
//! * `PMLSH_QUERIES` — queries per dataset (default 100; paper uses 200)

#![warn(missing_docs)]

pub mod micro;

use pm_lsh_baselines::{
    AnnIndex, LScan, LScanParams, MultiProbe, MultiProbeParams, Qalsh, QalshParams, RLsh, Srs,
    SrsParams,
};
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::{exact_knn_batch, MetricsAccumulator, PaperDataset, Scale, WorkloadMetrics};
use pm_lsh_metric::{Dataset, Neighbor};
use std::sync::Arc;
use std::time::Instant;

/// A prepared workload: shared dataset, query set and exact ground truth.
pub struct Workbench {
    /// Which paper dataset this stands in for.
    pub dataset: PaperDataset,
    /// The data points (shared across all indexes).
    pub data: Arc<Dataset>,
    /// The query points.
    pub queries: Dataset,
    /// Exact `k_max`-NN per query; prefixes give the truth for smaller `k`.
    pub truth: Vec<Vec<Neighbor>>,
}

impl Workbench {
    /// Generates the dataset and queries and computes exact ground truth up
    /// to `k_max` neighbors.
    pub fn prepare(dataset: PaperDataset, scale: Scale, n_queries: usize, k_max: usize) -> Self {
        let generator = dataset.generator(scale);
        let data = Arc::new(generator.dataset());
        let queries = generator.queries(n_queries);
        let truth = exact_knn_batch(data.view(), queries.view(), k_max, 0);
        Self {
            dataset,
            data,
            queries,
            truth,
        }
    }

    /// Runs `algo` over every query at depth `k`, timing each query and
    /// scoring it against the ground-truth prefix.
    pub fn run(&self, algo: &dyn AnnIndex, k: usize) -> WorkloadMetrics {
        assert!(
            self.truth.iter().all(|t| t.len() >= k),
            "ground truth shallower than k = {k}"
        );
        let mut acc = MetricsAccumulator::new();
        for (qi, q) in self.queries.iter().enumerate() {
            let start = Instant::now();
            let res = algo.query(q, k);
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            acc.record(
                elapsed_ms,
                &res.neighbors,
                &self.truth[qi][..k],
                res.candidates_verified,
            );
        }
        acc.finish()
    }
}

/// The full algorithm roster of Section 6.1, built over one shared dataset.
///
/// All LSH-based algorithms use `m = 15` hash functions and the given
/// approximation ratio `c`; PM-LSH runs at the paper's published operating
/// point (β = 0.2809 at c = 1.5, Eq. 10-derived otherwise).
pub fn build_all(data: Arc<Dataset>, c: f64) -> Vec<Box<dyn AnnIndex>> {
    let pm_params = if (c - 1.5).abs() < 1e-9 {
        PmLshParams::paper_defaults()
    } else {
        PmLshParams::default().with_c(c)
    };
    vec![
        Box::new(PmLsh::build(data.clone(), pm_params)),
        Box::new(Srs::build(
            data.clone(),
            SrsParams {
                c,
                ..SrsParams::paper_operating_point()
            },
        )),
        Box::new(Qalsh::build(
            data.clone(),
            QalshParams {
                c,
                ..Default::default()
            },
        )),
        Box::new(MultiProbe::build(data.clone(), MultiProbeParams::default())),
        Box::new(RLsh::build(data.clone(), pm_params)),
        Box::new(LScan::build(data, LScanParams::default())),
    ]
}

/// Reads the `PMLSH_SCALE` environment knob.
pub fn scale_from_env() -> Scale {
    match std::env::var("PMLSH_SCALE").as_deref() {
        Ok("smoke") => Scale::Smoke,
        Ok("full") => Scale::Full,
        Ok("bench") | Err(_) => Scale::Bench,
        Ok(other) => panic!("unknown PMLSH_SCALE '{other}' (use smoke|bench|full)"),
    }
}

/// Reads the `PMLSH_QUERIES` environment knob (default 100).
pub fn queries_from_env() -> usize {
    std::env::var("PMLSH_QUERIES")
        .ok()
        .map(|s| s.parse().expect("PMLSH_QUERIES must be an integer"))
        .unwrap_or(100)
}

/// Minimal fixed-width table printer for paper-style output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Convenience: `format!`-style float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_smoke_runs_all_algorithms() {
        let wb = Workbench::prepare(PaperDataset::Audio, Scale::Smoke, 5, 10);
        assert_eq!(wb.queries.len(), 5);
        assert_eq!(wb.truth.len(), 5);
        let algos = build_all(wb.data.clone(), 1.5);
        assert_eq!(algos.len(), 6);
        for algo in &algos {
            let m = wb.run(algo.as_ref(), 10);
            assert!(m.recall >= 0.0 && m.recall <= 1.0, "{}", algo.name());
            assert!(m.overall_ratio >= 1.0, "{}", algo.name());
            assert!(m.avg_query_ms >= 0.0);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1.00".into()]);
        t.row(vec!["b".into(), "23.50".into()]);
        let s = t.render();
        assert!(s.contains("alpha"));
        assert!(s.lines().count() == 4);
        // numeric column right-aligned
        assert!(s.lines().last().unwrap().ends_with("23.50"));
    }
}
