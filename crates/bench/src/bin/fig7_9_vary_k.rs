//! Figs. 7–9 — query time, recall and overall ratio when varying
//! `k ∈ {1, 10, 20, …, 100}` on the Cifar, Deep and Trevi stand-ins.
//!
//! ```text
//! cargo run -p pm-lsh-bench --release --bin fig7_9_vary_k
//! ```

use pm_lsh_bench::{build_all, f, queries_from_env, scale_from_env, Table, Workbench};
use pm_lsh_data::{PaperDataset, WorkloadMetrics};

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let ks: Vec<usize> = std::iter::once(1).chain((1..=10).map(|i| i * 10)).collect();
    let k_max = *ks.last().unwrap();

    for (fig, ds) in [
        ("Fig. 7", PaperDataset::Cifar),
        ("Fig. 8", PaperDataset::Deep),
        ("Fig. 9", PaperDataset::Trevi),
    ] {
        let wb = Workbench::prepare(ds, scale, n_queries, k_max);
        eprintln!("{fig}: {} prepared (n = {})", ds.name(), wb.data.len());
        let algos = build_all(wb.data.clone(), 1.5);

        // One run per (k, algorithm); all three figures read the same runs.
        let mut grid: Vec<Vec<WorkloadMetrics>> = Vec::with_capacity(ks.len());
        for &k in &ks {
            let row: Vec<WorkloadMetrics> = algos.iter().map(|a| wb.run(a.as_ref(), k)).collect();
            eprintln!("  k = {k} done");
            grid.push(row);
        }

        let mut headers = vec!["k".to_string()];
        headers.extend(algos.iter().map(|a| a.name().to_string()));
        let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

        for (metric, select) in [("time(ms)", 0usize), ("recall", 1), ("ratio", 2)] {
            let mut table = Table::new(&hdr);
            for (ki, &k) in ks.iter().enumerate() {
                let mut row = vec![k.to_string()];
                for m in &grid[ki] {
                    row.push(match select {
                        0 => f(m.avg_query_ms, 2),
                        1 => f(m.recall, 4),
                        _ => f(m.overall_ratio, 4),
                    });
                }
                table.row(row);
            }
            println!("{fig} — {metric} on {} when varying k", ds.name());
            println!("{}", table.render());
        }
    }
    println!("(paper shape: time ~flat in k; recall decreases and ratio increases with k)");
}
