//! Table 4 — performance overview: query time, overall ratio and recall of
//! all six algorithms on all seven datasets at the default setting
//! `k = 50, c = 1.5`.
//!
//! ```text
//! cargo run -p pm-lsh-bench --release --bin table4_overview
//! ```

use pm_lsh_bench::{build_all, f, queries_from_env, scale_from_env, Table, Workbench};
use pm_lsh_data::PaperDataset;

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let k = 50;
    let c = 1.5;

    let mut table = Table::new(&[
        "Dataset",
        "Metric",
        "PM-LSH",
        "SRS",
        "QALSH",
        "Multi-Probe",
        "R-LSH",
        "LScan",
    ]);

    for ds in PaperDataset::ALL {
        let wb = Workbench::prepare(ds, scale, n_queries, k);
        eprintln!("table4: {} prepared (n = {})", ds.name(), wb.data.len());
        let algos = build_all(wb.data.clone(), c);
        let metrics: Vec<_> = algos
            .iter()
            .map(|a| {
                let m = wb.run(a.as_ref(), k);
                eprintln!(
                    "  {:<12} {:>8.2} ms  ratio {:.4}  recall {:.4}",
                    a.name(),
                    m.avg_query_ms,
                    m.overall_ratio,
                    m.recall
                );
                m
            })
            .collect();

        table.row(
            std::iter::once(ds.name().to_string())
                .chain(std::iter::once("Time (ms)".to_string()))
                .chain(metrics.iter().map(|m| f(m.avg_query_ms, 2)))
                .collect(),
        );
        table.row(
            std::iter::once(String::new())
                .chain(std::iter::once("Overall Ratio".to_string()))
                .chain(metrics.iter().map(|m| f(m.overall_ratio, 4)))
                .collect(),
        );
        table.row(
            std::iter::once(String::new())
                .chain(std::iter::once("Recall".to_string()))
                .chain(metrics.iter().map(|m| f(m.recall, 4)))
                .collect(),
        );
    }

    println!("Table 4 — performance overview (k = 50, c = 1.5, m = 15)");
    println!("{}", table.render());
    println!("(paper shape: PM-LSH fastest & most accurate; SRS second; LScan slowest floor)");
}
