//! Figs. 10 & 11 — recall–time and ratio–time trade-off curves on the
//! Cifar, Trevi and Deep stand-ins, obtained by varying each algorithm's
//! quality knob (the approximation ratio `c ∈ {1.1, …, 2.0}` for PM-LSH /
//! SRS / QALSH / R-LSH, the probe budget for Multi-Probe, the scanned
//! fraction for LScan).
//!
//! ```text
//! cargo run -p pm-lsh-bench --release --bin fig10_11_tradeoff
//! ```

use pm_lsh_baselines::{
    LScan, LScanParams, MultiProbe, MultiProbeParams, Qalsh, QalshParams, RLsh, Srs, SrsParams,
};
use pm_lsh_bench::{f, queries_from_env, scale_from_env, Table, Workbench};
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::PaperDataset;

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let k = 50;
    // The paper sweeps c ∈ {1.1, …, 2.0}; five of those values already
    // trace the curve, and each c costs a full SRS/QALSH/R-LSH rebuild.
    // Set PMLSH_FULL_SWEEP=1 for all ten.
    let cs: Vec<f64> = if std::env::var("PMLSH_FULL_SWEEP").is_ok() {
        (1..=10).map(|i| 1.0 + i as f64 / 10.0).collect()
    } else {
        vec![1.1, 1.25, 1.5, 1.75, 2.0]
    };

    for ds in [PaperDataset::Cifar, PaperDataset::Trevi, PaperDataset::Deep] {
        let wb = Workbench::prepare(ds, scale, n_queries, k);
        eprintln!("fig10/11: {} prepared (n = {})", ds.name(), wb.data.len());
        let mut table = Table::new(&["algo", "knob", "time(ms)", "recall", "ratio"]);

        // PM-LSH and R-LSH: one index, vary c per query (the candidate
        // budget re-derives from Eq. 10).
        let pm = PmLsh::build(wb.data.clone(), PmLshParams::default());
        for &c in &cs {
            let mut acc = pm_lsh_data::MetricsAccumulator::new();
            for (qi, q) in wb.queries.iter().enumerate() {
                let start = std::time::Instant::now();
                let res = pm.query_with_c(q, k, c);
                let ms = start.elapsed().as_secs_f64() * 1e3;
                acc.record(
                    ms,
                    &res.neighbors,
                    &wb.truth[qi][..k],
                    res.stats.candidates_verified,
                );
            }
            let m = acc.finish();
            table.row(vec![
                "PM-LSH".into(),
                format!("c={c:.1}"),
                f(m.avg_query_ms, 2),
                f(m.recall, 4),
                f(m.overall_ratio, 4),
            ]);
        }
        for &c in &cs {
            let rlsh = RLsh::build(wb.data.clone(), PmLshParams::default().with_c(c));
            let m = wb.run(&rlsh, k);
            table.row(vec![
                "R-LSH".into(),
                format!("c={c:.1}"),
                f(m.avg_query_ms, 2),
                f(m.recall, 4),
                f(m.overall_ratio, 4),
            ]);
        }
        for &c in &cs {
            let srs = Srs::build(
                wb.data.clone(),
                SrsParams {
                    c,
                    ..SrsParams::paper_operating_point()
                },
            );
            let m = wb.run(&srs, k);
            table.row(vec![
                "SRS".into(),
                format!("c={c:.1}"),
                f(m.avg_query_ms, 2),
                f(m.recall, 4),
                f(m.overall_ratio, 4),
            ]);
        }
        for &c in &cs {
            let qalsh = Qalsh::build(
                wb.data.clone(),
                QalshParams {
                    c,
                    ..Default::default()
                },
            );
            let m = wb.run(&qalsh, k);
            table.row(vec![
                "QALSH".into(),
                format!("c={c:.1}"),
                f(m.avg_query_ms, 2),
                f(m.recall, 4),
                f(m.overall_ratio, 4),
            ]);
        }
        for probes in [8usize, 16, 32, 64, 128, 256, 512] {
            let mp = MultiProbe::build(
                wb.data.clone(),
                MultiProbeParams {
                    probe_budget: probes,
                    ..Default::default()
                },
            );
            let m = wb.run(&mp, k);
            table.row(vec![
                "Multi-Probe".into(),
                format!("T={probes}"),
                f(m.avg_query_ms, 2),
                f(m.recall, 4),
                f(m.overall_ratio, 4),
            ]);
        }
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let scan = LScan::build(
                wb.data.clone(),
                LScanParams {
                    fraction: frac,
                    ..Default::default()
                },
            );
            let m = wb.run(&scan, k);
            table.row(vec![
                "LScan".into(),
                format!("p={frac:.1}"),
                f(m.avg_query_ms, 2),
                f(m.recall, 4),
                f(m.overall_ratio, 4),
            ]);
        }

        println!(
            "Figs. 10/11 — quality–time trade-off on {} (k = {k})",
            ds.name()
        );
        println!("{}", table.render());
    }
    println!("(paper shape: PM-LSH's curve dominates — higher recall / lower ratio at equal time)");
}
