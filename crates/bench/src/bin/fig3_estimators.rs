//! Fig. 3 — recall and overall ratio of four distance estimators (L2, L1,
//! QD, Rand) on a 10 K sample of the Trevi stand-in, 100 queries, exact
//! 100-NN ground truth, T ∈ {100, …, 2000}.
//!
//! ```text
//! cargo run -p pm-lsh-bench --release --bin fig3_estimators
//! ```

use pm_lsh_bench::{f, queries_from_env, Table};
use pm_lsh_core::{estimator_study, Estimator};
use pm_lsh_data::{PaperDataset, Scale};

fn main() {
    // The paper samples 10 K points of Trevi and 100 query points.
    let scale = match std::env::var("PMLSH_SCALE").as_deref() {
        Ok("smoke") => Scale::Smoke,
        _ => Scale::Bench, // Trevi@Bench is 12 K ≈ the paper's 10 K sample
    };
    let n_queries = queries_from_env();
    let generator = PaperDataset::Trevi.generator(scale);
    let data = generator.dataset();
    let queries = generator.queries(n_queries);

    let ts: Vec<usize> = if scale == Scale::Smoke {
        vec![100, 200, 400]
    } else {
        (1..=10).map(|i| i * 200).collect() // 200, 400, …, 2000
    };
    let k = 100.min(data.len() / 4);

    // QD bucket width: one projected-coordinate standard deviation. The
    // projected coordinates of Trevi-like data have std ≈ ||o|| which our
    // estimator derives from a small sample inside the study (fixed here at
    // the empirical scale of the stand-in).
    let estimators = [
        Estimator::L2,
        Estimator::L1,
        Estimator::Qd(qd_width(&data)),
        Estimator::Rand,
    ];

    eprintln!(
        "fig3: {} points, {} queries, k = {k}, m = 15",
        data.len(),
        queries.len()
    );
    let curves = estimator_study(&data, &queries, 15, k, &ts, &estimators, 0xf163);

    let mut headers = vec!["T".to_string()];
    for c in &curves {
        headers.push(format!("{}-recall", c.estimator.name()));
        headers.push(format!("{}-ratio", c.estimator.name()));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&hdr_refs);
    for (i, &t) in ts.iter().enumerate() {
        let mut row = vec![t.to_string()];
        for c in &curves {
            row.push(f(c.points[i].recall, 4));
            row.push(f(c.points[i].ratio, 4));
        }
        table.row(row);
    }
    println!("Fig. 3 — estimator comparison (paper: L2 dominates, Rand is the floor)");
    println!("{}", table.render());
}

/// One standard deviation of the projected coordinates, estimated from the
/// first few hundred points: `E[(a·o)²] = ||o||²` for unit Gaussian `a`.
fn qd_width(data: &pm_lsh_metric::Dataset) -> f32 {
    let sample = data.len().min(256);
    let mut acc = 0.0f64;
    for i in 0..sample {
        acc += pm_lsh_metric::norm(data.point(i)) as f64;
    }
    (acc / sample as f64) as f32 * 0.25
}
