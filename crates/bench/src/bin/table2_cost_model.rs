//! Table 2 — expected distance computations (CC) of a range query on the
//! PM-tree vs the R-tree, per the node-based cost models of Section 4.2.
//!
//! Protocol: project each dataset with m = 15 hash functions, build both
//! trees (capacity 16) over the projections, estimate the projected-space
//! distance distribution F and the per-dimension marginals G_i, and
//! evaluate Eq. 7 (PM-tree) and Eq. 9 (R-tree) at the radius returning
//! ≈ the nearest 8 % of all points.
//!
//! ```text
//! cargo run -p pm-lsh-bench --release --bin table2_cost_model
//! ```

use pm_lsh_bench::{f, scale_from_env, Table};
use pm_lsh_data::PaperDataset;
use pm_lsh_hash::GaussianProjector;
use pm_lsh_pmtree::{PmTree, PmTreeConfig};
use pm_lsh_rtree::{RTree, RTreeConfig};
use pm_lsh_stats::{dimension_marginals, distance_distribution, Rng};

fn main() {
    let scale = scale_from_env();
    let mut table = Table::new(&["Dataset", "PM-tree CC", "R-tree CC", "Reduction", "paper"]);
    let paper_reduction = [
        ("Audio", "6%"),
        ("Deep", "5%"),
        ("NUS", "20%"),
        ("MNIST", "4%"),
        ("GIST", "17%"),
        ("Cifar", "36%"),
        ("Trevi", "46%"),
    ];

    for ds in PaperDataset::ALL {
        let generator = ds.generator(scale);
        let data = generator.dataset();
        let mut rng = Rng::new(0x7ab1e2 ^ ds as u64);
        let projector = GaussianProjector::new(data.dim(), 15, &mut rng);
        let projected = projector.project_all(data.view());

        let pm = PmTree::build(projected.view(), PmTreeConfig::default(), &mut rng);
        let rt = RTree::build(projected.view(), RTreeConfig::default());

        let f_proj = distance_distribution(projected.view(), 50_000, &mut rng);
        let g = dimension_marginals(projected.view(), 20_000, &mut rng);
        // "The value of r is chosen to return approximately the nearest 8%
        // of all points" — the 8% quantile of the distance distribution.
        let rq = f_proj.quantile(0.08);

        let cc_pm = pm_lsh_pmtree::expected_distance_computations(&pm, &f_proj, rq);
        let cc_rt = pm_lsh_rtree::expected_distance_computations(&rt, &g, rq);
        let reduction = 100.0 * (1.0 - cc_pm / cc_rt);
        let paper = paper_reduction
            .iter()
            .find(|(n, _)| *n == ds.name())
            .map(|(_, r)| *r)
            .unwrap_or("-");
        eprintln!("{}: n = {}, CC computed", ds.name(), data.len());
        table.row(vec![
            ds.name().to_string(),
            f(cc_pm, 0),
            f(cc_rt, 0),
            format!("{}%", f(reduction, 1)),
            paper.to_string(),
        ]);
    }
    println!("Table 2 — cost-model CC of range(q, F⁻¹(0.08)), m = 15, capacity 16");
    println!("{}", table.render());
    println!("(paper column = reduction reported in the paper on the real datasets)");
}
