//! Table 3 — dataset statistics: cardinality, dimensionality, HV, RC, LID.
//!
//! Computes the three difficulty statistics on the synthetic stand-ins and
//! prints them next to the paper's values for the real datasets, so the
//! fidelity of the substitution is visible at a glance.
//!
//! ```text
//! cargo run -p pm-lsh-bench --release --bin table3_datasets
//! ```

use pm_lsh_bench::{f, scale_from_env, Table};
use pm_lsh_data::PaperDataset;
use pm_lsh_stats::dataset_stats::{homogeneity_of_viewpoints, lid_mle, relative_contrast};
use pm_lsh_stats::Rng;

fn main() {
    let scale = scale_from_env();
    let mut table = Table::new(&[
        "Dataset",
        "n",
        "d",
        "HV",
        "HV(paper)",
        "RC",
        "RC(paper)",
        "LID",
        "LID(paper)",
    ]);

    for ds in PaperDataset::ALL {
        let stats = ds.paper_stats();
        let generator = ds.generator(scale);
        let data = generator.dataset();
        let mut rng = Rng::new(0x7ab1e3 ^ ds as u64);

        // Statistic sample sizes follow their literature defaults: LID with
        // k = 100 neighbors (Amsaleg et al.), RC over sampled queries.
        let queries = 30.min(data.len() / 4);
        let hv = homogeneity_of_viewpoints(data.view(), 24, 400, &mut rng);
        let rc = relative_contrast(data.view(), queries, &mut rng);
        let lid = lid_mle(data.view(), queries, 100.min(data.len() / 2), &mut rng);

        eprintln!("{}: computed", ds.name());
        table.row(vec![
            ds.name().to_string(),
            data.len().to_string(),
            data.dim().to_string(),
            f(hv, 4),
            f(stats.hv, 4),
            f(rc, 2),
            f(stats.rc, 2),
            f(lid, 1),
            f(stats.lid, 1),
        ]);
    }
    println!("Table 3 — dataset statistics (stand-ins vs paper)");
    println!("{}", table.render());
}
