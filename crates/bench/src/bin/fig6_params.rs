//! Fig. 6 — PM-LSH parameter study on the Trevi stand-in: query time when
//! varying the number of pivots `s` (a), and time / recall / overall ratio
//! when varying the number of hash functions `m` (b–d). `k = 50, c = 1.5`.
//!
//! ```text
//! cargo run -p pm-lsh-bench --release --bin fig6_params
//! ```

use pm_lsh_bench::{f, queries_from_env, scale_from_env, Table, Workbench};

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::PaperDataset;
use pm_lsh_pmtree::PmTreeConfig;

fn main() {
    let scale = scale_from_env();
    let n_queries = queries_from_env();
    let k = 50;
    let wb = Workbench::prepare(PaperDataset::Trevi, scale, n_queries, k);
    eprintln!(
        "fig6: Trevi stand-in, n = {}, {} queries",
        wb.data.len(),
        n_queries
    );

    // (a) vary the number of pivots s — only the query time moves.
    let mut ta = Table::new(&["s", "time(ms)", "recall", "ratio"]);
    for s in 0..=9usize {
        let params = PmLshParams {
            tree: PmTreeConfig {
                num_pivots: s,
                ..Default::default()
            },
            ..PmLshParams::paper_defaults()
        };
        let index = PmLsh::build(wb.data.clone(), params);
        let m = wb.run(&index, k);
        ta.row(vec![
            s.to_string(),
            f(m.avg_query_ms, 2),
            f(m.recall, 4),
            f(m.overall_ratio, 4),
        ]);
    }
    println!("Fig. 6(a) — varying the number of pivots s (m = 15)");
    println!("{}", ta.render());

    // (b–d) vary the number of hash functions m.
    let mut tb = Table::new(&["m", "time(ms)", "recall", "ratio"]);
    for m_hash in [1u32, 5, 10, 15, 20, 25] {
        let params = PmLshParams {
            m: m_hash,
            ..PmLshParams::paper_defaults()
        };
        let index = PmLsh::build(wb.data.clone(), params);
        let m = wb.run(&index, k);
        tb.row(vec![
            m_hash.to_string(),
            f(m.avg_query_ms, 2),
            f(m.recall, 4),
            f(m.overall_ratio, 4),
        ]);
    }
    println!("Fig. 6(b–d) — varying the number of hash functions m (s = 5)");
    println!("{}", tb.render());
    println!("(paper: quality improves and time grows with m; s has little effect; defaults m = 15, s = 5)");
}
