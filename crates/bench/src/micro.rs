//! A std-only micro-benchmark harness with a Criterion-shaped API.
//!
//! No external bench framework is on the offline allow-list, so the bench
//! targets under `benches/` (all `harness = false`) drive this module
//! instead. The API mirrors the subset of Criterion the workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`] —
//! so a bench file reads the same either way.
//!
//! Methodology: one calibration call sizes the per-sample iteration count so
//! a sample lasts roughly `measurement_time / sample_size`, a warm-up phase
//! runs the closure until `warm_up_time` elapses, then `sample_size` timed
//! samples are collected and the min / median / max per-iteration times are
//! reported (plus element throughput when [`BenchmarkGroup::throughput`]
//! was set).

use std::time::{Duration, Instant};

/// Entry point handed to every bench function; hands out groups.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

/// Units for per-iteration throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A `function/parameter` label, mirroring Criterion's two-part ids.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// A group of measurements sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget the samples should roughly add up to (default 2 s).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up duration before sampling (default 500 ms).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measures one closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchLabel,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into_label();
        self.run(&label, &mut f);
        self
    }

    /// Measures one closure with an explicit input (mirrors Criterion; the
    /// input is simply passed through).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchLabel,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.into_label();
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (prints a trailing newline for readability).
    pub fn finish(&mut self) {
        println!();
    }

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibration: one iteration tells us how many fit in a sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter_ns = (b.elapsed.as_nanos() as u64).max(1);
        let sample_budget_ns =
            (self.measurement_time.as_nanos() as u64 / self.sample_size as u64).max(1);
        let iters = (sample_budget_ns / per_iter_ns).clamp(1, 10_000_000);

        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let max = samples_ns[samples_ns.len() - 1];

        let mut line = format!(
            "{}/{label:<32} time: [{} {} {}]",
            self.name,
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                let eps = n as f64 * 1e9 / median;
                line.push_str(&format!("  thrpt: {eps:.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                let bps = n as f64 * 1e9 / median;
                line.push_str(&format!("  thrpt: {:.1} MiB/s", bps / (1024.0 * 1024.0)));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Runs the timed iterations of one sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, accumulating into the sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("micro_self_test");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 3, "closure must actually run ({calls} calls)");
    }

    #[test]
    fn benchmark_id_formats_two_parts() {
        assert_eq!(BenchmarkId::new("algo", 42).into_label(), "algo/42");
    }
}
