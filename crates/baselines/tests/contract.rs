//! Contract tests shared by every `AnnIndex` implementation: shape of the
//! result, determinism, ordering, and behavior on degenerate inputs.

use pm_lsh_baselines::{
    AnnIndex, LScan, LScanParams, MultiProbe, MultiProbeParams, Qalsh, QalshParams, RLsh, Srs,
    SrsParams,
};
use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_metric::Dataset;
use pm_lsh_stats::Rng;
use proptest::prelude::*;
use std::sync::Arc;

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn all_algorithms(data: Arc<Dataset>) -> Vec<Box<dyn AnnIndex>> {
    vec![
        Box::new(PmLsh::build(data.clone(), PmLshParams::default())),
        Box::new(Srs::build(data.clone(), SrsParams::default())),
        Box::new(Qalsh::build(data.clone(), QalshParams::default())),
        Box::new(MultiProbe::build(data.clone(), MultiProbeParams::default())),
        Box::new(RLsh::build(data.clone(), PmLshParams::default())),
        Box::new(LScan::build(data, LScanParams::default())),
    ]
}

#[test]
fn results_sorted_unique_and_bounded() {
    let data = Arc::new(blob(500, 12, 40));
    let queries = blob(6, 12, 41);
    for algo in all_algorithms(data.clone()) {
        for q in queries.iter() {
            let res = algo.query(q, 7);
            assert!(res.neighbors.len() <= 7, "{}", algo.name());
            for w in res.neighbors.windows(2) {
                assert!(w[0].dist <= w[1].dist, "{} unsorted", algo.name());
            }
            let ids: std::collections::HashSet<u32> = res.neighbors.iter().map(|n| n.id).collect();
            assert_eq!(ids.len(), res.neighbors.len(), "{} duplicates", algo.name());
            assert!(res.candidates_verified <= data.len(), "{}", algo.name());
            for n in &res.neighbors {
                assert!(
                    (n.id as usize) < data.len(),
                    "{} id out of range",
                    algo.name()
                );
                assert!(n.dist.is_finite());
            }
        }
    }
}

#[test]
fn deterministic_across_rebuilds() {
    let data = Arc::new(blob(300, 8, 42));
    let q = data.point(5).to_vec();
    for (a, b) in all_algorithms(data.clone())
        .iter()
        .zip(all_algorithms(data.clone()).iter())
    {
        let ra = a.query(&q, 5);
        let rb = b.query(&q, 5);
        assert_eq!(ra.neighbors, rb.neighbors, "{} not deterministic", a.name());
    }
}

#[test]
fn k_equal_to_n_is_supported() {
    let data = Arc::new(blob(40, 6, 43));
    let q = data.point(0).to_vec();
    for algo in all_algorithms(data.clone()) {
        let res = algo.query(&q, 40);
        assert!(!res.neighbors.is_empty(), "{}", algo.name());
        // The query point itself must surface for every full-coverage
        // algorithm; LScan legitimately misses points outside its 70% sample.
        if algo.name() != "LScan" {
            assert_eq!(res.neighbors[0].id, 0, "{}", algo.name());
        } else {
            assert!(
                res.neighbors.len() >= 40 * 6 / 10,
                "LScan must return its subset"
            );
        }
    }
}

#[test]
fn names_are_distinct() {
    let data = Arc::new(blob(64, 4, 44));
    let names: Vec<&str> = all_algorithms(data).iter().map(|a| a.name()).collect();
    let set: std::collections::HashSet<&str> = names.iter().copied().collect();
    assert_eq!(set.len(), names.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn planted_point_always_found_by_budgeted_algorithms(
        seed in 0u64..200,
        n in 50usize..300,
        target in 0usize..50,
    ) {
        // Querying an indexed point exactly: PM-LSH, R-LSH and LScan at
        // fraction 1.0 must place it first (distance 0 collides and
        // projects to distance 0).
        let data = Arc::new(blob(n, 8, seed));
        let q = data.point(target % n).to_vec();
        let algos: Vec<Box<dyn AnnIndex>> = vec![
            Box::new(PmLsh::build(data.clone(), PmLshParams::default())),
            Box::new(RLsh::build(data.clone(), PmLshParams::default())),
            Box::new(LScan::build(data.clone(), LScanParams { fraction: 1.0, seed: 1 })),
        ];
        for algo in &algos {
            let res = algo.query(&q, 1);
            prop_assert_eq!(res.neighbors[0].dist, 0.0, "{}", algo.name());
        }
    }
}
