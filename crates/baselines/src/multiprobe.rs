//! Multi-Probe LSH (Lv et al., VLDB'07): hash-bucket tables probed along a
//! query-directed perturbation sequence.
//!
//! Build: `L` tables, each keyed by a compound hash
//! `G(o) = (⌊(a_1·o+b_1)/w⌋, …, ⌊(a_{m'}·o+b_{m'})/w⌋)`. Query: probe the
//! home bucket of every table, then walk the query-directed perturbation
//! sequences (`pm-lsh-hash::multiprobe`) of all tables merged globally by
//! score, verifying bucket members until the probe budget is spent.
//!
//! The bucket width `w` is data-dependent in the original paper; by default
//! we set it from the sampled distance distribution (the 5 % quantile of
//! pairwise distances) so that near neighbors collide with high probability.

use crate::ann_index::{AnnIndex, AnnResult};
use pm_lsh_hash::{CompoundHash, ProbeSequence};
use pm_lsh_metric::{euclidean, Dataset, PointId, TopK};
use pm_lsh_stats::{distance_distribution, Rng};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for [`MultiProbe`].
#[derive(Clone, Copy, Debug)]
pub struct MultiProbeParams {
    /// Number of hash tables `L`.
    pub tables: usize,
    /// Concatenated hash functions per table `m'`.
    pub hashes_per_table: usize,
    /// Bucket width `w`; `None` picks the 10 % distance quantile.
    pub w: Option<f64>,
    /// Perturbation sets probed per query across all tables (the home
    /// buckets are probed in addition to this budget).
    pub probe_budget: usize,
    /// Sampled pairs for the width heuristic.
    pub distance_samples: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for MultiProbeParams {
    fn default() -> Self {
        // Calibrated on the stand-in datasets: long compound hashes (the
        // classic m' = 10) shatter hard datasets (NUS/GIST/Deep) into
        // near-empty buckets; m' = 5 with ~128 probed buckets lands in the
        // recall band Table 4 reports for Multi-Probe (0.80–0.87).
        Self {
            tables: 8,
            hashes_per_table: 5,
            w: None,
            probe_budget: 128,
            distance_samples: 20_000,
            seed: 0x0b0b_0001,
        }
    }
}

/// The Multi-Probe LSH index.
pub struct MultiProbe {
    data: Arc<Dataset>,
    tables: Vec<CompoundHash>,
    buckets: Vec<HashMap<Vec<i32>, Vec<PointId>>>,
    params: MultiProbeParams,
    width: f32,
}

impl MultiProbe {
    /// Hashes every point into `L` tables.
    pub fn build(data: impl Into<Arc<Dataset>>, params: MultiProbeParams) -> Self {
        let data = data.into();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.tables >= 1 && params.hashes_per_table >= 1);
        let mut rng = Rng::new(params.seed);

        let width = match params.w {
            Some(w) => w as f32,
            None => {
                let samples = params.distance_samples.min(data.len().pow(2) / 2).max(1);
                let f = distance_distribution(data.view(), samples, &mut rng);
                (f.quantile(0.10) as f32).max(1e-3)
            }
        };

        let mut tables = Vec::with_capacity(params.tables);
        let mut buckets = Vec::with_capacity(params.tables);
        for _ in 0..params.tables {
            let g = CompoundHash::new(data.dim(), params.hashes_per_table, width, &mut rng);
            let mut map: HashMap<Vec<i32>, Vec<PointId>> = HashMap::new();
            for (i, p) in data.iter().enumerate() {
                map.entry(g.bucket(p)).or_default().push(i as PointId);
            }
            tables.push(g);
            buckets.push(map);
        }
        Self {
            data,
            tables,
            buckets,
            params,
            width,
        }
    }

    /// The bucket width in effect.
    pub fn width(&self) -> f32 {
        self.width
    }

    /// Average bucket occupancy across tables (diagnostics).
    pub fn avg_bucket_size(&self) -> f64 {
        let total: usize = self.buckets.iter().map(|m| m.len()).sum();
        (self.data.len() * self.buckets.len()) as f64 / total.max(1) as f64
    }

    fn verify_bucket(
        &self,
        key: &[i32],
        table: usize,
        q: &[f32],
        top: &mut TopK,
        seen: &mut [bool],
        verified: &mut usize,
    ) {
        if let Some(members) = self.buckets[table].get(key) {
            for &id in members {
                let s = &mut seen[id as usize];
                if !*s {
                    *s = true;
                    top.push(euclidean(q, self.data.point_id(id)), id);
                    *verified += 1;
                }
            }
        }
    }
}

impl AnnIndex for MultiProbe {
    fn name(&self) -> &'static str {
        "Multi-Probe"
    }

    fn query(&self, q: &[f32], k: usize) -> AnnResult {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(k >= 1, "k must be positive");
        let mut top = TopK::new(k);
        let mut seen = vec![false; self.data.len()];
        let mut verified = 0usize;

        // Home buckets plus the per-table perturbation sequences.
        let mut homes: Vec<Vec<i32>> = Vec::with_capacity(self.tables.len());
        let mut seqs: Vec<ProbeSequence> = Vec::with_capacity(self.tables.len());
        let widths = vec![self.width as f64; self.params.hashes_per_table];
        for (t, g) in self.tables.iter().enumerate() {
            let (key, offsets) = g.bucket_with_offsets(q);
            self.verify_bucket(&key, t, q, &mut top, &mut seen, &mut verified);
            homes.push(key);
            seqs.push(ProbeSequence::new(&offsets, &widths));
        }

        // Globally merge the per-table sequences by score.
        let mut frontier: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
            std::collections::BinaryHeap::new();
        let mut pending: Vec<Option<pm_lsh_hash::ProbeSet>> = Vec::new();
        for (t, seq) in seqs.iter_mut().enumerate() {
            let set = seq.next();
            if let Some(ref s) = set {
                frontier.push(std::cmp::Reverse((s.score.to_bits(), t)));
            }
            pending.push(set);
        }

        let mut probes = 0usize;
        while probes < self.params.probe_budget {
            let Some(std::cmp::Reverse((_, t))) = frontier.pop() else {
                break;
            };
            let set = pending[t]
                .take()
                .expect("frontier entry without pending set");
            // Apply the perturbations to the home bucket of table t.
            let mut key = homes[t].clone();
            for p in &set.perturbations {
                key[p.func] += p.delta as i32;
            }
            self.verify_bucket(&key, t, q, &mut top, &mut seen, &mut verified);
            probes += 1;
            // Refill table t's head.
            let next = seqs[t].next();
            if let Some(ref s) = next {
                frontier.push(std::cmp::Reverse((s.score.to_bits(), t)));
            }
            pending[t] = next;
        }

        AnnResult {
            neighbors: top.into_sorted_vec(),
            candidates_verified: verified,
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn finds_planted_neighbor() {
        let ds = blob(1000, 16, 20);
        let q = ds.point(42).to_vec();
        let mp = MultiProbe::build(ds, MultiProbeParams::default());
        let res = mp.query(&q, 1);
        assert_eq!(
            res.neighbors[0].id, 42,
            "query point hashes to its own bucket"
        );
    }

    #[test]
    fn more_probes_help() {
        let ds = Arc::new(blob(3000, 24, 21));
        let queries: Vec<Vec<f32>> = (0..25)
            .map(|i| {
                // perturb an existing point slightly so the NN is planted
                let mut v = ds.point(i * 100).to_vec();
                v[0] += 0.05;
                v
            })
            .collect();

        let few = MultiProbe::build(
            ds.clone(),
            MultiProbeParams {
                probe_budget: 2,
                ..Default::default()
            },
        );
        let many = MultiProbe::build(
            ds.clone(),
            MultiProbeParams {
                probe_budget: 256,
                ..Default::default()
            },
        );
        let mut hits_few = 0;
        let mut hits_many = 0;
        for (i, q) in queries.iter().enumerate() {
            let want = (i * 100) as u32;
            if few
                .query(q, 1)
                .neighbors
                .first()
                .is_some_and(|n| n.id == want)
            {
                hits_few += 1;
            }
            if many
                .query(q, 1)
                .neighbors
                .first()
                .is_some_and(|n| n.id == want)
            {
                hits_many += 1;
            }
        }
        assert!(hits_many >= hits_few, "few={hits_few} many={hits_many}");
        assert!(hits_many >= 20, "many-probe recall {hits_many}/25");
    }

    #[test]
    fn no_duplicate_verifications() {
        let ds = blob(500, 8, 22);
        let q = ds.point(0).to_vec();
        let mp = MultiProbe::build(
            ds,
            MultiProbeParams {
                probe_budget: 512,
                ..Default::default()
            },
        );
        let res = mp.query(&q, 5);
        assert!(
            res.candidates_verified <= 500,
            "each point verified at most once"
        );
    }

    #[test]
    fn bucket_stats_reasonable() {
        let mp = MultiProbe::build(blob(2000, 16, 23), MultiProbeParams::default());
        assert!(mp.width() > 0.0);
        assert!(mp.avg_bucket_size() >= 1.0);
    }
}
