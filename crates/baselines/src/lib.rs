//! The competitor algorithms of the PM-LSH paper's evaluation (Section 6.1).
//!
//! All five baselines implement [`AnnIndex`], as does `pm_lsh_core::PmLsh`,
//! so the benchmark harness can sweep them uniformly:
//!
//! | Algorithm | Category (Section 3) | Substrate |
//! |-----------|----------------------|-----------|
//! | [`Srs`] | metric indexing (MI) | R-tree incremental NN |
//! | [`Qalsh`] | radius enlarging (RE) | B+-trees + virtual rehashing |
//! | [`MultiProbe`] | probing sequence (PS) | hash tables + perturbation sequences |
//! | [`RLsh`] | ablation | PM-LSH's algorithm over an R-tree |
//! | [`LScan`] | sanity floor | partial linear scan |

#![warn(missing_docs)]

pub mod ann_index;
pub mod lscan;
pub mod multiprobe;
pub mod qalsh;
pub mod rlsh;
pub mod srs;

pub use ann_index::{AnnIndex, AnnResult};
pub use lscan::{LScan, LScanParams};
pub use multiprobe::{MultiProbe, MultiProbeParams};
pub use qalsh::{derive_qalsh, Qalsh, QalshDerived, QalshParams};
pub use rlsh::RLsh;
pub use srs::{Srs, SrsParams};
