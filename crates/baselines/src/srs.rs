//! SRS (Sun et al., PVLDB 8(1)): incremental NN search in a low-dimensional
//! projected space over an R-tree.
//!
//! The state-of-the-art competitor of Section 3.1. Build: project every
//! point with `m` Gaussian hash functions and index the projections in an
//! R-tree. Query: repeatedly fetch the next projected-space NN (`incSearch`),
//! verify its original distance, and stop when either
//!
//! * the access budget `T·n` is exhausted (paper setting `T = 0.4010` at
//!   `c = 1.5`), or
//! * the early-termination test fires: with `δ` the projected distance of
//!   the point just fetched and `d_k` the current k-th best original
//!   distance, stop once `Ψ_m((c·δ/d_k)²) > p'_τ` — the probability that a
//!   point improving the `c`-approximation would already have appeared in
//!   the projected order (`Ψ_m` is the χ²(m) CDF, `p'_τ = 0.8107`).

use crate::ann_index::{AnnIndex, AnnResult};
use pm_lsh_hash::GaussianProjector;
use pm_lsh_metric::{euclidean, Dataset, TopK};
use pm_lsh_rtree::{RTree, RTreeConfig};
use pm_lsh_stats::{chi2_cdf, Rng};
use std::sync::Arc;

/// Configuration for [`Srs`].
#[derive(Clone, Copy, Debug)]
pub struct SrsParams {
    /// Number of Gaussian hash functions (projected dimensionality).
    pub m: u32,
    /// Approximation ratio used by the early-termination test.
    pub c: f64,
    /// Early-termination threshold `p'_τ` (paper: 0.8107).
    pub tau: f64,
    /// Maximum fraction of points accessed per query (paper: 0.4010).
    pub max_fraction: f64,
    /// Whether the χ² early-termination test may stop the enumeration
    /// before the access budget is spent. `true` is the SRS paper's
    /// guarantee-oriented algorithm; on distance-concentrated data it stops
    /// very early with a valid `c`-approximation but mediocre exact recall.
    /// The PM-LSH paper's reported SRS numbers (recall 0.81–0.93, runtime
    /// ≈ 1.1–1.3 × PM-LSH) match the budget-bound mode — see
    /// [`SrsParams::paper_operating_point`] and EXPERIMENTS.md.
    pub early_termination: bool,
    /// R-tree node capacity.
    pub tree: RTreeConfig,
    /// Projection seed.
    pub seed: u64,
}

impl Default for SrsParams {
    fn default() -> Self {
        Self {
            m: 15,
            c: 1.5,
            tau: 0.8107,
            max_fraction: 0.4010,
            early_termination: true,
            tree: RTreeConfig::default(),
            seed: 0x5125_0001,
        }
    }
}

impl SrsParams {
    /// The operating point that reproduces the PM-LSH paper's Table 4 /
    /// Figs. 7–11 SRS rows: the full `T·n` access budget with the early
    /// termination disabled.
    pub fn paper_operating_point() -> Self {
        Self {
            early_termination: false,
            ..Self::default()
        }
    }
}

/// The SRS index.
pub struct Srs {
    data: Arc<Dataset>,
    projector: GaussianProjector,
    tree: RTree,
    params: SrsParams,
}

impl Srs {
    /// Projects the dataset and bulk-inserts the projections into an R-tree.
    pub fn build(data: impl Into<Arc<Dataset>>, params: SrsParams) -> Self {
        let data = data.into();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(params.c > 1.0 && params.tau > 0.0 && params.tau < 1.0);
        let mut rng = Rng::new(params.seed);
        let projector = GaussianProjector::new(data.dim(), params.m as usize, &mut rng);
        let projected = projector.project_all(data.view());
        let tree = RTree::build(projected.view(), params.tree);
        Self {
            data,
            projector,
            tree,
            params,
        }
    }

    /// Builds sharing an existing projector (ablations that keep the
    /// projection fixed across algorithms).
    pub fn build_with_projector(
        data: impl Into<Arc<Dataset>>,
        projector: GaussianProjector,
        params: SrsParams,
    ) -> Self {
        let data = data.into();
        assert_eq!(projector.input_dim(), data.dim());
        assert_eq!(projector.output_dim(), params.m as usize);
        let projected = projector.project_all(data.view());
        let tree = RTree::build(projected.view(), params.tree);
        Self {
            data,
            projector,
            tree,
            params,
        }
    }

    /// The underlying R-tree (for cost-model experiments).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }
}

impl AnnIndex for Srs {
    fn name(&self) -> &'static str {
        "SRS"
    }

    fn query(&self, q: &[f32], k: usize) -> AnnResult {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(k >= 1, "k must be positive");
        let n = self.data.len();
        let budget = ((self.params.max_fraction * n as f64).ceil() as usize).clamp(k, n);
        let qp = self.projector.project(q);
        let mut cursor = self.tree.cursor(&qp);
        let mut top = TopK::new(k);
        let mut accessed = 0usize;

        while let Some((id, proj_d)) = cursor.next() {
            let d = euclidean(q, self.data.point_id(id));
            top.push(d, id);
            accessed += 1;
            if accessed >= budget {
                break;
            }
            if self.params.early_termination && top.is_full() {
                let dk = top.kth_dist() as f64;
                if dk <= 0.0 {
                    break; // exact duplicates found for all k slots
                }
                let x = (self.params.c * proj_d as f64 / dk).powi(2);
                if chi2_cdf(x, self.params.m) > self.params.tau {
                    break;
                }
            }
        }

        AnnResult {
            neighbors: top.into_sorted_vec(),
            candidates_verified: accessed,
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn finds_planted_neighbor() {
        let ds = blob(1500, 32, 1);
        let q = ds.point(7).to_vec();
        let srs = Srs::build(ds, SrsParams::default());
        let res = srs.query(&q, 1);
        assert_eq!(res.neighbors[0].id, 7);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }

    #[test]
    fn early_termination_beats_full_budget() {
        // Querying an indexed point should terminate far before T·n accesses:
        // the incumbent distance is 0 ⇒ the χ² test fires immediately.
        let ds = blob(4000, 24, 2);
        let q = ds.point(100).to_vec();
        let srs = Srs::build(ds, SrsParams::default());
        let res = srs.query(&q, 1);
        assert!(
            res.candidates_verified < 4000 / 5,
            "accessed {} of 4000",
            res.candidates_verified
        );
    }

    #[test]
    fn respects_access_budget() {
        let ds = blob(1000, 16, 3);
        let srs = Srs::build(
            ds,
            SrsParams {
                max_fraction: 0.05,
                tau: 0.999_999,
                ..Default::default()
            },
        );
        let mut rng = Rng::new(4);
        let mut q = vec![0.0f32; 16];
        rng.fill_normal(&mut q);
        let res = srs.query(&q, 5);
        assert!(res.candidates_verified <= 50);
        assert_eq!(res.neighbors.len(), 5);
    }

    #[test]
    fn good_recall_at_default_settings() {
        let ds = blob(3000, 32, 5);
        let queries: Vec<Vec<f32>> = (0..20).map(|i| ds.point(i * 31).to_vec()).collect();
        let srs = Srs::build(ds, SrsParams::default());
        let mut hits = 0;
        for (i, q) in queries.iter().enumerate() {
            let res = srs.query(q, 10);
            if res.neighbors.iter().any(|n| n.id as usize == i * 31) {
                hits += 1;
            }
        }
        assert!(hits >= 19, "self-hit recall {hits}/20");
    }
}
