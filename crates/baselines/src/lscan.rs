//! LScan: linear scan over a random subset (Section 6.1).
//!
//! The paper's sanity baseline "randomly selects a portion of points
//! (default 70 %) and returns the top-k points with the smallest distances
//! to the query". Its recall is bounded by the sampled fraction; its query
//! time is a dense-scan floor every index must beat.

use crate::ann_index::{AnnIndex, AnnResult};
use pm_lsh_metric::{euclidean, Dataset, PointId, TopK};
use pm_lsh_stats::Rng;
use std::sync::Arc;

/// Configuration for [`LScan`].
#[derive(Clone, Copy, Debug)]
pub struct LScanParams {
    /// Fraction of the dataset scanned per query (paper default 0.7).
    pub fraction: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for LScanParams {
    fn default() -> Self {
        Self {
            fraction: 0.7,
            seed: 0x5ca1ab1e,
        }
    }
}

/// The linear-scan baseline.
pub struct LScan {
    data: Arc<Dataset>,
    subset: Vec<PointId>,
}

impl LScan {
    /// Samples the scan subset at build time (fixed across queries, like the
    /// paper's implementation).
    pub fn build(data: impl Into<Arc<Dataset>>, params: LScanParams) -> Self {
        assert!(
            params.fraction > 0.0 && params.fraction <= 1.0,
            "scan fraction must be in (0, 1]"
        );
        let data = data.into();
        let n = data.len();
        let take = ((n as f64 * params.fraction).round() as usize).clamp(1, n);
        let mut rng = Rng::new(params.seed);
        let subset = rng
            .sample_indices(n, take)
            .into_iter()
            .map(|i| i as PointId)
            .collect();
        Self { data, subset }
    }

    /// The sampled subset size.
    pub fn subset_len(&self) -> usize {
        self.subset.len()
    }
}

impl AnnIndex for LScan {
    fn name(&self) -> &'static str {
        "LScan"
    }

    fn query(&self, q: &[f32], k: usize) -> AnnResult {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        let mut top = TopK::new(k);
        for &id in &self.subset {
            top.push(euclidean(q, self.data.point_id(id)), id);
        }
        AnnResult {
            neighbors: top.into_sorted_vec(),
            candidates_verified: self.subset.len(),
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn full_fraction_is_exact() {
        let ds = blob(300, 8, 1);
        let q = ds.point(5).to_vec();
        let scan = LScan::build(
            ds,
            LScanParams {
                fraction: 1.0,
                seed: 2,
            },
        );
        let res = scan.query(&q, 1);
        assert_eq!(res.neighbors[0].id, 5);
        assert_eq!(res.candidates_verified, 300);
    }

    #[test]
    fn recall_tracks_fraction() {
        // Over many queries, recall@1 of a p-fraction scan ≈ p.
        let ds = blob(2000, 8, 3);
        let queries: Vec<Vec<f32>> = (0..200).map(|i| ds.point(i * 7 % 2000).to_vec()).collect();
        let scan = LScan::build(
            ds,
            LScanParams {
                fraction: 0.7,
                seed: 4,
            },
        );
        let mut hits = 0;
        for (i, q) in queries.iter().enumerate() {
            let res = scan.query(q, 1);
            if res.neighbors[0].id as usize == (i * 7) % 2000 {
                hits += 1;
            }
        }
        let recall = hits as f64 / queries.len() as f64;
        assert!((recall - 0.7).abs() < 0.1, "recall {recall}");
    }

    #[test]
    fn subset_is_deterministic() {
        let ds = Arc::new(blob(500, 4, 5));
        let a = LScan::build(ds.clone(), LScanParams::default());
        let b = LScan::build(ds, LScanParams::default());
        assert_eq!(a.subset, b.subset);
    }
}
