//! R-LSH: the PM-LSH algorithm with the PM-tree swapped for an R-tree.
//!
//! This is the ablation of Section 6.1 ("we index the points in the
//! projected space with an R-tree instead of a PM-tree to see how PM-LSH
//! then performs"). Everything else — projections, Eq. 10 constants,
//! `r_min` selection, Algorithm 2's radius enlargement and termination
//! tests — is identical to `pm-lsh-core`, so any performance difference is
//! attributable to the index structure, which is exactly what Table 2 and
//! the Fig. 6 discussion analyze.

use crate::ann_index::{AnnIndex, AnnResult};
use pm_lsh_core::PmLshParams;
use pm_lsh_hash::GaussianProjector;
use pm_lsh_metric::{euclidean, Dataset, TopK};
use pm_lsh_rtree::{RTree, RTreeConfig};
use pm_lsh_stats::{distance_distribution, Ecdf, Rng};
use std::sync::Arc;

/// The R-LSH ablation index.
pub struct RLsh {
    data: Arc<Dataset>,
    projector: GaussianProjector,
    tree: RTree,
    params: PmLshParams,
    derived: pm_lsh_core::DerivedParams,
    dist_f: Ecdf,
}

impl RLsh {
    /// Builds exactly like [`pm_lsh_core::PmLsh`] but over an R-tree with
    /// the same node capacity.
    pub fn build(data: impl Into<Arc<Dataset>>, params: PmLshParams) -> Self {
        let data = data.into();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let derived = params.derive();
        let mut rng = Rng::new(params.seed);
        let projector = GaussianProjector::new(data.dim(), params.m as usize, &mut rng);
        let projected = projector.project_all(data.view());
        let rcfg = RTreeConfig {
            capacity: params.tree.capacity,
            min_fill: (params.tree.capacity * 2 / 5).max(1),
        };
        let tree = RTree::build(projected.view(), rcfg);
        let dist_f = if data.len() >= 2 {
            let pairs = params
                .distance_samples
                .min(data.len() * (data.len() - 1) / 2)
                .max(1);
            distance_distribution(data.view(), pairs, &mut rng)
        } else {
            Ecdf::new(vec![1.0])
        };
        Self {
            data,
            projector,
            tree,
            params,
            derived,
            dist_f,
        }
    }

    /// The underlying R-tree (for cost-model experiments).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    fn select_rmin(&self, k: usize) -> f64 {
        let n = self.data.len() as f64;
        let target = (self.derived.beta + k as f64 / n).min(1.0);
        let r = self.dist_f.quantile(target);
        let r = if r > 0.0 {
            r
        } else {
            self.dist_f.quantile(1.0).max(1e-6)
        };
        r * self.params.rmin_shrink
    }
}

impl AnnIndex for RLsh {
    fn name(&self) -> &'static str {
        "R-LSH"
    }

    /// Algorithm 2, verbatim from `pm-lsh-core`, over the R-tree cursor.
    fn query(&self, q: &[f32], k: usize) -> AnnResult {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(k >= 1, "k must be positive");
        let n = self.data.len();
        let c = self.params.c;
        let budget = ((self.derived.beta * n as f64).ceil() as usize + k).min(n);
        let qp = self.projector.project(q);
        let mut cursor = self.tree.cursor(&qp);

        let mut top = TopK::new(k);
        let mut verified = 0usize;
        let mut r = self.select_rmin(k);

        loop {
            if top.is_full() && (top.kth_dist() as f64) <= c * r {
                break;
            }
            let proj_radius = (self.derived.t * r) as f32;
            while verified < budget {
                match cursor.next_within(proj_radius) {
                    Some((id, _)) => {
                        top.push(euclidean(q, self.data.point_id(id)), id);
                        verified += 1;
                    }
                    None => break,
                }
            }
            if verified >= budget || cursor.is_exhausted() {
                break;
            }
            r *= c;
        }

        AnnResult {
            neighbors: top.into_sorted_vec(),
            candidates_verified: verified,
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_core::PmLsh;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn finds_planted_neighbor() {
        let ds = blob(1000, 24, 30);
        let q = ds.point(99).to_vec();
        let rlsh = RLsh::build(ds, PmLshParams::paper_defaults());
        let res = rlsh.query(&q, 1);
        assert_eq!(res.neighbors[0].id, 99);
    }

    #[test]
    fn same_quality_class_as_pmlsh() {
        // Same algorithm, same constants, different tree: result quality
        // must be comparable (identical candidate budgets).
        let ds = Arc::new(blob(2500, 32, 31));
        let queries: Vec<Vec<f32>> = (0..15).map(|i| ds.point(i * 31).to_vec()).collect();
        let params = PmLshParams::paper_defaults();
        let pmlsh = PmLsh::build(ds.clone(), params);
        let rlsh = RLsh::build(ds.clone(), params);
        let mut pm_hits = 0;
        let mut r_hits = 0;
        for (i, q) in queries.iter().enumerate() {
            let want = (i * 31) as u32;
            if AnnIndex::query(&pmlsh, q, 10)
                .neighbors
                .iter()
                .any(|n| n.id == want)
            {
                pm_hits += 1;
            }
            if rlsh.query(q, 10).neighbors.iter().any(|n| n.id == want) {
                r_hits += 1;
            }
        }
        assert!(pm_hits >= 14, "pm={pm_hits}");
        assert!(r_hits >= 14, "r={r_hits}");
    }

    #[test]
    fn budget_respected() {
        let n = 1500;
        let ds = blob(n, 16, 32);
        let params = PmLshParams::default();
        let beta = params.derive().beta;
        let rlsh = RLsh::build(ds, params);
        let mut rng = Rng::new(33);
        let mut q = vec![0.0f32; 16];
        rng.fill_normal(&mut q);
        let res = rlsh.query(&q, 5);
        assert!(res.candidates_verified <= (beta * n as f64).ceil() as usize + 5);
    }
}
