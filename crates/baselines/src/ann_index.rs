//! The common interface every competitor (and PM-LSH itself) implements, so
//! the benchmark harness can sweep algorithms uniformly.

use pm_lsh_core::PmLsh;
use pm_lsh_metric::Neighbor;

/// Result of a `(c, k)`-ANN query through the common interface.
#[derive(Clone, Debug)]
pub struct AnnResult {
    /// Up to `k` neighbors sorted by ascending original distance.
    pub neighbors: Vec<Neighbor>,
    /// Number of candidates whose original-space distance was computed.
    pub candidates_verified: usize,
}

/// A built approximate-NN index.
pub trait AnnIndex {
    /// Display name used in tables ("PM-LSH", "SRS", …).
    fn name(&self) -> &'static str;

    /// Answers a `(c, k)`-ANN query.
    fn query(&self, q: &[f32], k: usize) -> AnnResult;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// `true` when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AnnIndex for PmLsh {
    fn name(&self) -> &'static str {
        "PM-LSH"
    }

    fn query(&self, q: &[f32], k: usize) -> AnnResult {
        let res = PmLsh::query(self, q, k);
        AnnResult {
            neighbors: res.neighbors,
            candidates_verified: res.stats.candidates_verified,
        }
    }

    fn len(&self) -> usize {
        PmLsh::len(self)
    }
}
