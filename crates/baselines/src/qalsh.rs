//! QALSH (Huang et al., PVLDB 9(1)): query-aware LSH with B+-trees and
//! virtual rehashing.
//!
//! Preprocessing stores, for each of `K` query-aware hash functions
//! `h_i(o) = a_i · o`, the pairs `(h_i(o), id)` in a B+-tree. A query
//! anchors a window of half-width `w·R/2` at `h_i(q)` in every tree and
//! counts *collisions*: a point colliding in at least `l = ⌈α*·K⌉` trees
//! becomes a candidate and has its original distance verified. When a round
//! ends without a satisfying answer, the radius grows (`R ← c·R`, "virtual
//! rehashing") and the windows widen — the expanding B+-tree cursors continue
//! where they stopped, so no entry is rescanned.
//!
//! Parameter derivation follows the QALSH paper: bucket width
//! `w = sqrt(8c²ln c / (c²−1))`, collision probabilities `p₁ = 2Φ(w/2)−1`,
//! `p₂ = 2Φ(w/2c)−1`, error probability `δ = 1/e`, false-positive fraction
//! `β_q = 100/n`, and
//!
//! ```text
//! α* = (p₁ √(ln(2/β_q)) + p₂ √(ln(1/δ))) / (√(ln(2/β_q)) + √(ln(1/δ)))
//! K  = ⌈ ln(1/δ) / (2 (p₁ − α*)²) ⌉
//! ```
//!
//! **Substitution note.** QALSH assumes distances are pre-normalized so the
//! search radius sequence `R = 1, c, c², …` is meaningful. Our datasets are
//! not normalized, so the start radius is selected from the sampled distance
//! distribution exactly like PM-LSH's `r_min` (Section 4.5 of the PM-LSH
//! paper); the round structure is unchanged.

use crate::ann_index::{AnnIndex, AnnResult};
use pm_lsh_bptree::{BPlusTree, ExpandingCursor};
use pm_lsh_metric::{dot, euclidean, Dataset, PointId, TopK};
use pm_lsh_stats::{distance_distribution, normal_cdf, Ecdf, Rng};
use std::sync::Arc;

/// Configuration for [`Qalsh`].
#[derive(Clone, Copy, Debug)]
pub struct QalshParams {
    /// Approximation ratio `c > 1`.
    pub c: f64,
    /// Error probability `δ` (paper default `1/e`).
    pub delta: f64,
    /// False-positive fraction; `None` uses the paper's `100/n`.
    pub beta: Option<f64>,
    /// Bucket width; `None` derives `w = sqrt(8c²ln c/(c²−1))`.
    pub w: Option<f64>,
    /// Number of sampled pairs for the start-radius distribution.
    pub distance_samples: usize,
    /// Shrink factor for the start radius.
    pub rmin_shrink: f64,
    /// Hash seed.
    pub seed: u64,
}

impl Default for QalshParams {
    fn default() -> Self {
        Self {
            c: 1.5,
            delta: 1.0 / std::f64::consts::E,
            beta: None,
            w: None,
            distance_samples: 50_000,
            rmin_shrink: 0.95,
            seed: 0x0a15_0001,
        }
    }
}

/// Derived QALSH constants (exposed for tests and documentation).
#[derive(Clone, Copy, Debug)]
pub struct QalshDerived {
    /// Bucket width `w`.
    pub w: f64,
    /// Collision probability at distance 1.
    pub p1: f64,
    /// Collision probability at distance `c`.
    pub p2: f64,
    /// Collision-ratio threshold `α*`.
    pub alpha: f64,
    /// Number of hash functions / B+-trees `K`.
    pub k_tables: usize,
    /// Collision-count threshold `l = ⌈α*·K⌉`.
    pub threshold: usize,
    /// False-positive fraction in effect.
    pub beta: f64,
}

/// Derives the QALSH constants for a dataset of `n` points.
pub fn derive_qalsh(params: &QalshParams, n: usize) -> QalshDerived {
    assert!(params.c > 1.0, "approximation ratio must exceed 1");
    let c = params.c;
    let w = params
        .w
        .unwrap_or_else(|| (8.0 * c * c * c.ln() / (c * c - 1.0)).sqrt());
    let p1 = 2.0 * normal_cdf(w / 2.0) - 1.0;
    let p2 = 2.0 * normal_cdf(w / (2.0 * c)) - 1.0;
    let beta = params.beta.unwrap_or_else(|| (100.0 / n as f64).min(0.5));
    let l2b = (2.0 / beta).ln().sqrt();
    let l1d = (1.0 / params.delta).ln().sqrt();
    let alpha = (p1 * l2b + p2 * l1d) / (l2b + l1d);
    let k_tables = ((1.0 / params.delta).ln() / (2.0 * (p1 - alpha).powi(2))).ceil() as usize;
    let k_tables = k_tables.max(1);
    let threshold = ((alpha * k_tables as f64).ceil() as usize).clamp(1, k_tables);
    QalshDerived {
        w,
        p1,
        p2,
        alpha,
        k_tables,
        threshold,
        beta,
    }
}

/// The QALSH index.
pub struct Qalsh {
    data: Arc<Dataset>,
    /// `K × d` hash coefficients, row-major.
    coeffs: Vec<f32>,
    trees: Vec<BPlusTree>,
    derived: QalshDerived,
    params: QalshParams,
    dist_f: Ecdf,
}

impl Qalsh {
    /// Builds `K` B+-trees of projections.
    pub fn build(data: impl Into<Arc<Dataset>>, params: QalshParams) -> Self {
        let data = data.into();
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let n = data.len();
        let d = data.dim();
        let derived = derive_qalsh(&params, n);
        let mut rng = Rng::new(params.seed);

        let mut coeffs = vec![0.0f32; derived.k_tables * d];
        rng.fill_normal(&mut coeffs);

        let mut trees = Vec::with_capacity(derived.k_tables);
        let mut pairs: Vec<(f32, PointId)> = Vec::with_capacity(n);
        for t in 0..derived.k_tables {
            let a = &coeffs[t * d..(t + 1) * d];
            pairs.clear();
            for (i, p) in data.iter().enumerate() {
                pairs.push((dot(a, p), i as PointId));
            }
            pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
            trees.push(BPlusTree::bulk_load(&pairs));
        }

        let samples = params.distance_samples.min(n * (n - 1) / 2).max(1);
        let dist_f = distance_distribution(data.view(), samples, &mut rng);
        Self {
            data,
            coeffs,
            trees,
            derived,
            params,
            dist_f,
        }
    }

    /// The derived constants in effect.
    pub fn derived(&self) -> QalshDerived {
        self.derived
    }

    fn hash(&self, table: usize, point: &[f32]) -> f32 {
        let d = self.data.dim();
        dot(&self.coeffs[table * d..(table + 1) * d], point)
    }
}

impl AnnIndex for Qalsh {
    fn name(&self) -> &'static str {
        "QALSH"
    }

    fn query(&self, q: &[f32], k: usize) -> AnnResult {
        assert_eq!(q.len(), self.data.dim(), "query has wrong dimensionality");
        assert!(k >= 1, "k must be positive");
        let n = self.data.len();
        let kt = self.derived.k_tables;
        let c = self.params.c;
        let budget = ((self.derived.beta * n as f64).ceil() as usize + k).min(n);

        let mut cursors: Vec<ExpandingCursor<'_>> = (0..kt)
            .map(|t| ExpandingCursor::new(&self.trees[t], self.hash(t, q)))
            .collect();

        let mut counts = vec![0u16; n];
        let mut top = TopK::new(k);
        let mut verified = 0usize;
        let threshold = self.derived.threshold as u16;

        // Start radius from the distance distribution (see module docs).
        let target = (self.derived.beta + k as f64 / n as f64).min(1.0);
        let mut radius = (self.dist_f.quantile(target) * self.params.rmin_shrink)
            .max(self.dist_f.quantile(0.0).max(1e-6));

        loop {
            // Round with search radius R: window half-width w·R/2 per tree.
            let half = (self.derived.w * radius / 2.0) as f32;
            'tables: for cursor in cursors.iter_mut() {
                while let Some((_, id, _)) = cursor.next_within(half) {
                    let cnt = &mut counts[id as usize];
                    *cnt += 1;
                    if *cnt == threshold {
                        let dist = euclidean(q, self.data.point_id(id));
                        top.push(dist, id);
                        verified += 1;
                        // Anytime terminal condition: βn + k candidates.
                        if verified >= budget {
                            break 'tables;
                        }
                    }
                }
            }
            // Terminal condition 2: enough verified candidates overall.
            if verified >= budget {
                break;
            }
            // Terminal condition 1: k answers within c·R at the end of the
            // round.
            if top.is_full() && (top.kth_dist() as f64) <= c * radius {
                break;
            }
            // All windows exhausted: every point was counted in every tree.
            if cursors.iter_mut().all(|cur| cur.peek_offset().is_none()) {
                break;
            }
            radius *= c;
        }

        AnnResult {
            neighbors: top.into_sorted_vec(),
            candidates_verified: verified,
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_constants_match_qalsh_paper_shapes() {
        // c = 2 ⇒ w = sqrt(8·4·ln2/3) ≈ 2.719 (the QALSH paper's example).
        let d = derive_qalsh(
            &QalshParams {
                c: 2.0,
                ..Default::default()
            },
            1_000_000,
        );
        assert!((d.w - 2.7190).abs() < 1e-3, "w={}", d.w);
        assert!(
            d.p1 > d.alpha && d.alpha > d.p2,
            "p1={} α={} p2={}",
            d.p1,
            d.alpha,
            d.p2
        );
        assert!(d.k_tables > 50 && d.k_tables < 400, "K={}", d.k_tables);
        // tighter c needs more tables
        let d15 = derive_qalsh(
            &QalshParams {
                c: 1.5,
                ..Default::default()
            },
            1_000_000,
        );
        assert!(d15.k_tables > d.k_tables);
    }

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn finds_planted_neighbor() {
        let ds = blob(800, 24, 10);
        let q = ds.point(13).to_vec();
        let qalsh = Qalsh::build(ds, QalshParams::default());
        let res = qalsh.query(&q, 1);
        assert_eq!(res.neighbors[0].id, 13);
    }

    #[test]
    fn verification_stays_within_budget() {
        let n = 1200;
        let ds = blob(n, 16, 11);
        let qalsh = Qalsh::build(ds, QalshParams::default());
        let derived = qalsh.derived();
        let mut rng = Rng::new(12);
        let mut q = vec![0.0f32; 16];
        for _ in 0..5 {
            rng.fill_normal(&mut q);
            let res = qalsh.query(&q, 5);
            let budget = (derived.beta * n as f64).ceil() as usize + 5;
            assert!(res.candidates_verified <= budget.max(1));
        }
    }

    #[test]
    fn reasonable_recall_on_easy_data() {
        let ds = blob(1500, 24, 13);
        let queries: Vec<Vec<f32>> = (0..15).map(|i| ds.point(i * 97).to_vec()).collect();
        let qalsh = Qalsh::build(ds, QalshParams::default());
        let mut hits = 0;
        for (i, q) in queries.iter().enumerate() {
            let res = qalsh.query(q, 10);
            if res.neighbors.iter().any(|nb| nb.id as usize == i * 97) {
                hits += 1;
            }
        }
        assert!(hits >= 13, "self-hit recall {hits}/15");
    }
}
