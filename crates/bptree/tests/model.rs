//! Model-based tests: the B+-tree must agree with a sorted-vector oracle
//! under arbitrary operation sequences.

use pm_lsh_bptree::BPlusTree;
use proptest::prelude::*;

fn model_range(model: &[(f32, u32)], lo: f32, hi: f32) -> Vec<(f32, u32)> {
    let mut out: Vec<(f32, u32)> = model
        .iter()
        .copied()
        .filter(|&(k, _)| k >= lo && k <= hi)
        .collect();
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    out
}

#[test]
fn bulk_load_and_range_basic() {
    let pairs: Vec<(f32, u32)> = (0..1000).map(|i| (i as f32, i)).collect();
    let tree = BPlusTree::bulk_load(&pairs);
    tree.verify_invariants().unwrap();
    assert_eq!(tree.len(), 1000);
    assert!(tree.height() >= 2);
    let got = tree.range(100.0, 109.5);
    assert_eq!(got.len(), 10);
    assert_eq!(got[0], (100.0, 100));
    assert_eq!(tree.range(2000.0, 3000.0), vec![]);
    assert_eq!(tree.range(5.0, 2.0), vec![]);
}

#[test]
fn inserts_build_same_content_as_bulk_load() {
    let mut pairs: Vec<(f32, u32)> = (0..500).map(|i| ((i * 37 % 500) as f32, i)).collect();
    let mut tree = BPlusTree::with_order(8);
    for &(k, v) in &pairs {
        tree.insert(k, v);
    }
    tree.verify_invariants().unwrap();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let bulk = BPlusTree::bulk_load_with_order(&pairs, 8);
    bulk.verify_invariants().unwrap();
    let lo = f32::NEG_INFINITY;
    let hi = f32::INFINITY;
    let a: Vec<u32> = tree.range(lo, hi).iter().map(|p| p.1).collect();
    let b: Vec<u32> = bulk.range(lo, hi).iter().map(|p| p.1).collect();
    let mut a_sorted = a.clone();
    a_sorted.sort_unstable();
    let mut b_sorted = b;
    b_sorted.sort_unstable();
    assert_eq!(a_sorted, b_sorted);
}

#[test]
fn small_order_deep_tree() {
    let mut tree = BPlusTree::with_order(4);
    for i in 0..200 {
        tree.insert((i % 50) as f32, i);
    }
    tree.verify_invariants().unwrap();
    assert!(tree.height() >= 3);
    assert_eq!(tree.len(), 200);
    // duplicate-heavy range
    assert_eq!(tree.range(10.0, 10.0).len(), 4);
}

#[test]
fn delete_basics() {
    let mut tree = BPlusTree::with_order(4);
    for i in 0..40u32 {
        tree.insert((i % 10) as f32, i);
    }
    assert_eq!(tree.len(), 40);
    // Exact pair required: right key with the wrong value is no match.
    assert!(!tree.delete(3.0, 999));
    assert!(!tree.delete(99.0, 3));
    assert!(tree.delete(3.0, 3));
    assert!(!tree.delete(3.0, 3), "a pair deletes only once");
    // Duplicates of the key survive.
    assert_eq!(tree.range(3.0, 3.0).len(), 3);
    assert_eq!(tree.len(), 39);
    tree.verify_invariants().unwrap();
}

#[test]
fn delete_everything_leaves_a_consistent_empty_tree() {
    let mut tree = BPlusTree::with_order(4);
    for i in 0..120u32 {
        tree.insert((i * 7 % 30) as f32, i);
    }
    for i in 0..120u32 {
        assert!(
            tree.delete((i * 7 % 30) as f32, i),
            "pair {i} vanished early"
        );
        tree.verify_invariants().unwrap();
    }
    assert!(tree.is_empty());
    assert_eq!(tree.range(f32::NEG_INFINITY, f32::INFINITY), vec![]);
    // The hollowed-out tree still accepts inserts.
    tree.insert(5.0, 1000);
    tree.verify_invariants().unwrap();
    assert_eq!(tree.range(5.0, 5.0), vec![(5.0, 1000)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_matches_model(
        keys in proptest::collection::vec(-1000i32..1000, 1..400),
        order in 4usize..16,
        ranges in proptest::collection::vec((-1000i32..1000, 0i32..200), 1..8),
    ) {
        let mut tree = BPlusTree::with_order(order);
        let mut model: Vec<(f32, u32)> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let kf = k as f32 * 0.25;
            tree.insert(kf, i as u32);
            model.push((kf, i as u32));
        }
        tree.verify_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), model.len());

        for &(lo_raw, span) in &ranges {
            let lo = lo_raw as f32 * 0.25;
            let hi = lo + span as f32 * 0.25;
            let got = tree.range(lo, hi);
            let want = model_range(&model, lo, hi);
            // same multiset of keys and same ids
            let got_keys: Vec<f32> = got.iter().map(|p| p.0).collect();
            let want_keys: Vec<f32> = want.iter().map(|p| p.0).collect();
            prop_assert_eq!(got_keys, want_keys);
            let mut got_ids: Vec<u32> = got.iter().map(|p| p.1).collect();
            let mut want_ids: Vec<u32> = want.iter().map(|p| p.1).collect();
            got_ids.sort_unstable();
            want_ids.sort_unstable();
            prop_assert_eq!(got_ids, want_ids);
        }
    }

    // The deletion counterpart of `tree_matches_model`: random interleaved
    // inserts and deletes against the sorted-vector oracle, with the
    // structural invariants audited and range queries compared after the
    // whole sequence (and a mid-sequence audit every 32 operations).
    #[test]
    fn interleaved_insert_delete_matches_model(
        ops in proptest::collection::vec((0u8..4, -200i32..200), 50..400),
        order in 4usize..16,
        ranges in proptest::collection::vec((-200i32..200, 0i32..100), 1..8),
    ) {
        let mut tree = BPlusTree::with_order(order);
        let mut model: Vec<(f32, u32)> = Vec::new();
        for (i, &(choice, k)) in ops.iter().enumerate() {
            let kf = k as f32 * 0.5;
            if choice == 0 && !model.is_empty() {
                // Delete a pair that really exists (picked pseudo-randomly
                // from the model), so coverage includes deep duplicates.
                let victim = model.remove(i % model.len());
                prop_assert!(tree.delete(victim.0, victim.1));
            } else if choice == 1 {
                // Delete *by key*. u32::MAX is never inserted, so the
                // first attempt must always miss — when pairs with this
                // key exist that exercises the right-key-wrong-value
                // scan across duplicates; then remove a specific real
                // pair when one exists (hit coverage through duplicate
                // keys).
                prop_assert!(!tree.delete(kf, u32::MAX), "wrong value matched");
                if let Some(at) = model.iter().position(|&(mk, _)| mk == kf) {
                    let (mk, mv) = model.remove(at);
                    prop_assert!(tree.delete(mk, mv));
                }
            } else {
                tree.insert(kf, i as u32);
                model.push((kf, i as u32));
            }
            prop_assert_eq!(tree.len(), model.len());
            if i % 32 == 0 {
                tree.verify_invariants().map_err(TestCaseError::fail)?;
            }
        }
        tree.verify_invariants().map_err(TestCaseError::fail)?;

        for &(lo_raw, span) in &ranges {
            let lo = lo_raw as f32 * 0.5;
            let hi = lo + span as f32 * 0.5;
            let got = tree.range(lo, hi);
            let want = model_range(&model, lo, hi);
            let got_keys: Vec<f32> = got.iter().map(|p| p.0).collect();
            let want_keys: Vec<f32> = want.iter().map(|p| p.0).collect();
            prop_assert_eq!(got_keys, want_keys);
            let mut got_ids: Vec<u32> = got.iter().map(|p| p.1).collect();
            let mut want_ids: Vec<u32> = want.iter().map(|p| p.1).collect();
            got_ids.sort_unstable();
            want_ids.sort_unstable();
            prop_assert_eq!(got_ids, want_ids);
        }
    }

    #[test]
    fn bulk_load_matches_model(
        mut keys in proptest::collection::vec(-500i32..500, 0..300),
        anchor in -500i32..500,
    ) {
        keys.sort_unstable();
        let pairs: Vec<(f32, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k as f32, i as u32)).collect();
        let tree = BPlusTree::bulk_load(&pairs);
        tree.verify_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), pairs.len());

        // nearest-first cursor visits everything in non-decreasing offset
        let mut cur = pm_lsh_bptree::ExpandingCursor::new(&tree, anchor as f32);
        let mut last = 0.0f32;
        let mut n = 0;
        while let Some((k, _, _)) = cur.next_nearest() {
            let off = (k - anchor as f32).abs();
            prop_assert!(off >= last - 1e-6);
            last = off;
            n += 1;
        }
        prop_assert_eq!(n, pairs.len());
    }
}
