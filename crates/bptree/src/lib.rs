//! In-memory B+-tree with bidirectional window expansion.
//!
//! The substrate behind QALSH (Section 3.1 of the PM-LSH paper): one
//! B+-tree per query-aware hash function stores `(h_i(o), id)` pairs;
//! queries expand a window around `h_i(q)` via [`cursor::ExpandingCursor`]
//! to count collisions under virtual rehashing.

#![warn(missing_docs)]

pub mod cursor;
pub mod tree;

pub use cursor::ExpandingCursor;
pub use tree::BPlusTree;
