//! Outward expansion from an anchor key — QALSH's window scan.
//!
//! Given the query's projection `h_i(q)`, QALSH repeatedly widens a window
//! `[h_i(q) − wR/2, h_i(q) + wR/2]` and counts the points whose projections
//! fall inside. [`ExpandingCursor`] yields entries in order of `|key −
//! anchor|`, so each QALSH round simply pulls entries while the offset stays
//! within the current half-width — no entry is ever scanned twice across
//! rounds.

use crate::tree::BPlusTree;
use pm_lsh_metric::PointId;

/// Bidirectional nearest-first scan around an anchor key.
pub struct ExpandingCursor<'t> {
    tree: &'t BPlusTree,
    anchor: f32,
    /// Next position on the right (keys >= anchor), if any.
    right: Option<(u32, usize)>,
    /// Next position on the left (keys < anchor), if any.
    left: Option<(u32, usize)>,
}

impl<'t> ExpandingCursor<'t> {
    /// Starts a cursor centered at `anchor`.
    pub fn new(tree: &'t BPlusTree, anchor: f32) -> Self {
        assert!(!anchor.is_nan(), "anchor must not be NaN");
        Self {
            tree,
            anchor,
            right: tree.seek(anchor),
            left: tree.seek_before(anchor),
        }
    }

    /// The absolute offset of the next entry, or `None` when exhausted.
    pub fn peek_offset(&self) -> Option<f32> {
        let r = self
            .right
            .map(|p| (self.tree.entry_at(p).0 - self.anchor).abs());
        let l = self
            .left
            .map(|p| (self.tree.entry_at(p).0 - self.anchor).abs());
        match (l, r) {
            (None, None) => None,
            (Some(x), None) | (None, Some(x)) => Some(x),
            (Some(x), Some(y)) => Some(x.min(y)),
        }
    }

    /// The next entry in order of `|key − anchor|` as
    /// `(key, value, signed_offset)`.
    pub fn next_nearest(&mut self) -> Option<(f32, PointId, f32)> {
        let r_off = self
            .right
            .map(|p| (self.tree.entry_at(p).0 - self.anchor).abs());
        let l_off = self
            .left
            .map(|p| (self.tree.entry_at(p).0 - self.anchor).abs());
        let take_right = match (l_off, r_off) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(l), Some(r)) => r <= l,
        };
        if take_right {
            let pos = self.right.unwrap();
            let (k, v) = self.tree.entry_at(pos);
            self.right = self.tree.next_pos(pos);
            Some((k, v, k - self.anchor))
        } else {
            let pos = self.left.unwrap();
            let (k, v) = self.tree.entry_at(pos);
            self.left = self.tree.prev_pos(pos);
            Some((k, v, k - self.anchor))
        }
    }

    /// The next entry whose offset is at most `half_width`, or `None` when
    /// the nearest remaining entry lies outside the window (the cursor
    /// survives, so a later wider window continues where this one stopped).
    pub fn next_within(&mut self, half_width: f32) -> Option<(f32, PointId, f32)> {
        match self.peek_offset() {
            Some(off) if off <= half_width => self.next_nearest(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> BPlusTree {
        let pairs: Vec<(f32, PointId)> = (0..100).map(|i| (i as f32 * 0.5, i as PointId)).collect();
        BPlusTree::bulk_load(&pairs)
    }

    #[test]
    fn nearest_first_ordering() {
        let tree = sample_tree();
        let mut cur = ExpandingCursor::new(&tree, 24.3);
        let mut last = 0.0f32;
        let mut count = 0;
        while let Some((k, _, off)) = cur.next_nearest() {
            assert!((k - 24.3).abs() >= last - 1e-6, "offsets must not decrease");
            assert!(((k - 24.3) - off).abs() < 1e-6);
            last = (k - 24.3).abs();
            count += 1;
        }
        assert_eq!(count, 100, "cursor must enumerate every entry");
    }

    #[test]
    fn window_expansion_never_repeats() {
        let tree = sample_tree();
        let mut cur = ExpandingCursor::new(&tree, 25.0);
        let mut seen = std::collections::HashSet::new();
        for half in [1.0f32, 2.0, 5.0, 100.0] {
            while let Some((_, v, _)) = cur.next_within(half) {
                assert!(seen.insert(v), "value {v} yielded twice");
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn anchor_outside_key_range() {
        let tree = sample_tree();
        // anchor left of all keys: only right side advances
        let mut cur = ExpandingCursor::new(&tree, -10.0);
        let (k, v, off) = cur.next_nearest().unwrap();
        assert_eq!((k, v), (0.0, 0));
        assert_eq!(off, 10.0);
        // anchor right of all keys
        let mut cur = ExpandingCursor::new(&tree, 1000.0);
        let (k, _, _) = cur.next_nearest().unwrap();
        assert_eq!(k, 49.5);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let tree = BPlusTree::new();
        let mut cur = ExpandingCursor::new(&tree, 0.0);
        assert!(cur.next_nearest().is_none());
        assert!(cur.peek_offset().is_none());
    }

    #[test]
    fn duplicates_all_emitted() {
        let pairs: Vec<(f32, PointId)> = vec![(1.0, 1), (1.0, 2), (1.0, 3), (2.0, 4)];
        let tree = BPlusTree::bulk_load(&pairs);
        let mut cur = ExpandingCursor::new(&tree, 1.0);
        let mut ids: Vec<PointId> = Vec::new();
        while let Some((_, v, _)) = cur.next_within(0.5) {
            ids.push(v);
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
