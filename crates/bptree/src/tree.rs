//! In-memory B+-tree keyed by `f32` with duplicate keys.
//!
//! QALSH stores the projected value `h_i(o) = a_i · o` of every point in one
//! B+-tree per hash function and answers queries by *expanding a window*
//! around the query's own projection (virtual rehashing). The tree provides
//! ordered bulk loading, point inserts, bidirectional leaf scans, and lazy
//! point deletes ([`BPlusTree::delete`]: entries leave their leaves, nodes
//! are never rebalanced — occupancy, not correctness, is what a
//! delete-heavy sequence degrades).

use pm_lsh_metric::PointId;

/// Maximum number of keys per node.
const DEFAULT_ORDER: usize = 64;

#[derive(Clone, Debug)]
pub(crate) struct LeafNode {
    pub keys: Vec<f32>,
    pub vals: Vec<PointId>,
    pub prev: Option<u32>,
    pub next: Option<u32>,
}

#[derive(Clone, Debug)]
pub(crate) struct InnerNode {
    /// `keys[i]` separates `children[i]` (keys < keys[i]) from
    /// `children[i+1]` (keys >= keys[i]).
    pub keys: Vec<f32>,
    pub children: Vec<u32>,
}

#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf(LeafNode),
    Inner(InnerNode),
}

/// A B+-tree mapping `f32` keys (not NaN) to [`PointId`] values, duplicates
/// allowed.
#[derive(Clone, Debug)]
pub struct BPlusTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: u32,
    order: usize,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// An empty tree with the default node order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree with `order` keys per node (at least 4).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        Self {
            nodes: vec![Node::Leaf(LeafNode {
                keys: Vec::new(),
                vals: Vec::new(),
                prev: None,
                next: None,
            })],
            root: 0,
            order,
            len: 0,
        }
    }

    /// Bulk-loads from `(key, value)` pairs sorted by key.
    ///
    /// # Panics
    /// Panics if the keys are unsorted or NaN.
    pub fn bulk_load(pairs: &[(f32, PointId)]) -> Self {
        Self::bulk_load_with_order(pairs, DEFAULT_ORDER)
    }

    /// Bulk-loads with an explicit node order.
    pub fn bulk_load_with_order(pairs: &[(f32, PointId)], order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        for w in pairs.windows(2) {
            assert!(w[0].0 <= w[1].0, "bulk_load requires sorted keys");
        }
        assert!(
            pairs.iter().all(|p| !p.0.is_nan()),
            "NaN keys are not allowed"
        );
        let mut tree = Self::with_order(order);
        if pairs.is_empty() {
            return tree;
        }
        tree.nodes.clear();
        tree.len = pairs.len();

        // Fill leaves at ~80% occupancy so later inserts don't split at once.
        let per_leaf = (order * 4 / 5).max(2);
        let mut leaf_ids = Vec::new();
        let mut level_keys = Vec::new(); // first key of each leaf (split keys)
        for chunk in pairs.chunks(per_leaf) {
            let id = tree.nodes.len() as u32;
            tree.nodes.push(Node::Leaf(LeafNode {
                keys: chunk.iter().map(|p| p.0).collect(),
                vals: chunk.iter().map(|p| p.1).collect(),
                prev: if leaf_ids.is_empty() {
                    None
                } else {
                    Some(id - 1)
                },
                next: None,
            }));
            if let Some(&prev) = leaf_ids.last() {
                if let Node::Leaf(l) = &mut tree.nodes[prev as usize] {
                    l.next = Some(id);
                }
            }
            level_keys.push(chunk[0].0);
            leaf_ids.push(id);
        }

        // Build inner levels bottom-up.
        let mut level = leaf_ids;
        let per_inner = (order * 4 / 5).max(2);
        while level.len() > 1 {
            let mut next_level = Vec::new();
            let mut next_keys = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let end = (i + per_inner).min(level.len());
                // avoid a trailing single-child inner node
                let end = if level.len() - end == 1 { end + 1 } else { end };
                let children: Vec<u32> = level[i..end].to_vec();
                let keys: Vec<f32> = level_keys[i + 1..end].to_vec();
                let id = tree.nodes.len() as u32;
                tree.nodes.push(Node::Inner(InnerNode { keys, children }));
                next_keys.push(level_keys[i]);
                next_level.push(id);
                i = end;
            }
            level = next_level;
            level_keys = next_keys;
        }
        tree.root = level[0];
        tree
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf(_) => return h,
                Node::Inner(inner) => {
                    node = inner.children[0];
                    h += 1;
                }
            }
        }
    }

    /// Leaf that may hold the *first* occurrence of `key`.
    ///
    /// Separators are the first key of their right sibling at split time, so
    /// duplicates of a separator can live in the left subtree too; the
    /// descent therefore treats an equal separator as "go left" and relies on
    /// the leaf chain to walk right when needed.
    fn leaf_for(&self, key: f32) -> u32 {
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf(_) => return node,
                Node::Inner(inner) => {
                    let idx = inner.keys.partition_point(|&k| k < key);
                    node = inner.children[idx];
                }
            }
        }
    }

    /// Inserts one pair.
    ///
    /// # Panics
    /// Panics on NaN keys.
    pub fn insert(&mut self, key: f32, value: PointId) {
        assert!(!key.is_nan(), "NaN keys are not allowed");
        self.len += 1;
        if let Some((split_key, right)) = self.insert_rec(self.root, key, value) {
            let new_root = InnerNode {
                keys: vec![split_key],
                children: vec![self.root, right],
            };
            self.root = self.nodes.len() as u32;
            self.nodes.push(Node::Inner(new_root));
        }
    }

    fn insert_rec(&mut self, node: u32, key: f32, value: PointId) -> Option<(f32, u32)> {
        let order = self.order;
        match &mut self.nodes[node as usize] {
            Node::Leaf(leaf) => {
                let idx = leaf.keys.partition_point(|&k| k <= key);
                leaf.keys.insert(idx, key);
                leaf.vals.insert(idx, value);
                if leaf.keys.len() <= order {
                    return None;
                }
                // split leaf
                let mid = leaf.keys.len() / 2;
                let right_keys = leaf.keys.split_off(mid);
                let right_vals = leaf.vals.split_off(mid);
                let split_key = right_keys[0];
                let old_next = leaf.next;
                let right_id = self.nodes.len() as u32;
                {
                    let Node::Leaf(leaf) = &mut self.nodes[node as usize] else {
                        unreachable!()
                    };
                    leaf.next = Some(right_id);
                }
                self.nodes.push(Node::Leaf(LeafNode {
                    keys: right_keys,
                    vals: right_vals,
                    prev: Some(node),
                    next: old_next,
                }));
                if let Some(nxt) = old_next {
                    if let Node::Leaf(l) = &mut self.nodes[nxt as usize] {
                        l.prev = Some(right_id);
                    }
                }
                Some((split_key, right_id))
            }
            Node::Inner(inner) => {
                let idx = inner.keys.partition_point(|&k| k <= key);
                let child = inner.children[idx];
                let split = self.insert_rec(child, key, value)?;
                let Node::Inner(inner) = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                inner.keys.insert(idx, split.0);
                inner.children.insert(idx + 1, split.1);
                if inner.keys.len() <= order {
                    return None;
                }
                // split inner: middle key moves up
                let mid = inner.keys.len() / 2;
                let up_key = inner.keys[mid];
                let right_keys = inner.keys.split_off(mid + 1);
                inner.keys.pop(); // remove up_key from the left side
                let right_children = inner.children.split_off(mid + 1);
                let right_id = self.nodes.len() as u32;
                self.nodes.push(Node::Inner(InnerNode {
                    keys: right_keys,
                    children: right_children,
                }));
                Some((up_key, right_id))
            }
        }
    }

    /// Removes one `(key, value)` pair; `false` when no exact match is
    /// stored. With duplicate keys, the first matching pair in leaf-chain
    /// order goes.
    ///
    /// Deletion is *lazy*: the pair leaves its leaf, but nodes are never
    /// merged or rebalanced and separator keys stay put — an emptied leaf
    /// simply remains in the chain, which every scan already skips. All
    /// ordering, depth and chain invariants are preserved
    /// ([`BPlusTree::verify_invariants`] holds after any delete
    /// sequence); only node *occupancy* degrades under delete-heavy
    /// workloads, which matches this crate's QALSH usage, where indexes
    /// are rebuilt wholesale rather than compacted in place.
    ///
    /// # Panics
    /// Panics on NaN keys.
    pub fn delete(&mut self, key: f32, value: PointId) -> bool {
        assert!(!key.is_nan(), "NaN keys are not allowed");
        let mut pos = self.seek(key);
        while let Some(p) = pos {
            let (k, v) = self.entry_at(p);
            if k != key {
                return false;
            }
            if v == value {
                let Node::Leaf(leaf) = &mut self.nodes[p.0 as usize] else {
                    unreachable!()
                };
                leaf.keys.remove(p.1);
                leaf.vals.remove(p.1);
                self.len -= 1;
                return true;
            }
            pos = self.next_pos(p);
        }
        false
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: f32, hi: f32) -> Vec<(f32, PointId)> {
        let mut out = Vec::new();
        if self.is_empty() || lo > hi {
            return out;
        }
        let mut leaf = self.leaf_for(lo);
        loop {
            let Node::Leaf(l) = &self.nodes[leaf as usize] else {
                unreachable!()
            };
            let start = l.keys.partition_point(|&k| k < lo);
            for i in start..l.keys.len() {
                if l.keys[i] > hi {
                    return out;
                }
                out.push((l.keys[i], l.vals[i]));
            }
            match l.next {
                Some(n) => leaf = n,
                None => return out,
            }
        }
    }

    /// Position of the first entry with key `>= key` as `(leaf, index)`;
    /// `None` when every key is smaller.
    pub(crate) fn seek(&self, key: f32) -> Option<(u32, usize)> {
        if self.is_empty() {
            return None;
        }
        let mut leaf = self.leaf_for(key);
        loop {
            let Node::Leaf(l) = &self.nodes[leaf as usize] else {
                unreachable!()
            };
            let idx = l.keys.partition_point(|&k| k < key);
            if idx < l.keys.len() {
                return Some((leaf, idx));
            }
            match l.next {
                Some(n) => leaf = n,
                None => return None,
            }
        }
    }

    /// Position of the last entry with key `< key`; `None` when every key is
    /// `>= key`.
    pub(crate) fn seek_before(&self, key: f32) -> Option<(u32, usize)> {
        if self.is_empty() {
            return None;
        }
        let mut leaf = self.leaf_for(key);
        loop {
            let Node::Leaf(l) = &self.nodes[leaf as usize] else {
                unreachable!()
            };
            let idx = l.keys.partition_point(|&k| k < key);
            if idx > 0 {
                return Some((leaf, idx - 1));
            }
            match l.prev {
                Some(p) => leaf = p,
                None => return None,
            }
        }
    }

    pub(crate) fn entry_at(&self, pos: (u32, usize)) -> (f32, PointId) {
        let Node::Leaf(l) = &self.nodes[pos.0 as usize] else {
            unreachable!()
        };
        (l.keys[pos.1], l.vals[pos.1])
    }

    pub(crate) fn next_pos(&self, pos: (u32, usize)) -> Option<(u32, usize)> {
        let Node::Leaf(l) = &self.nodes[pos.0 as usize] else {
            unreachable!()
        };
        if pos.1 + 1 < l.keys.len() {
            return Some((pos.0, pos.1 + 1));
        }
        let mut leaf = l.next;
        while let Some(n) = leaf {
            let Node::Leaf(l) = &self.nodes[n as usize] else {
                unreachable!()
            };
            if !l.keys.is_empty() {
                return Some((n, 0));
            }
            leaf = l.next;
        }
        None
    }

    pub(crate) fn prev_pos(&self, pos: (u32, usize)) -> Option<(u32, usize)> {
        if pos.1 > 0 {
            return Some((pos.0, pos.1 - 1));
        }
        let Node::Leaf(l) = &self.nodes[pos.0 as usize] else {
            unreachable!()
        };
        let mut leaf = l.prev;
        while let Some(p) = leaf {
            let Node::Leaf(l) = &self.nodes[p as usize] else {
                unreachable!()
            };
            if !l.keys.is_empty() {
                return Some((p, l.keys.len() - 1));
            }
            leaf = l.prev;
        }
        None
    }

    /// Validates key ordering, balanced depth and the leaf chain; test hook.
    pub fn verify_invariants(&self) -> Result<(), String> {
        // (1) every key reachable via the leaf chain, in sorted order, len matches
        let mut leftmost = self.root;
        while let Node::Inner(i) = &self.nodes[leftmost as usize] {
            leftmost = i.children[0];
        }
        let mut count = 0;
        let mut last = f32::NEG_INFINITY;
        let mut leaf = Some(leftmost);
        while let Some(id) = leaf {
            let Node::Leaf(l) = &self.nodes[id as usize] else {
                return Err("leaf chain reaches an inner node".into());
            };
            for &k in &l.keys {
                if k < last {
                    return Err(format!("key order violated: {k} after {last}"));
                }
                last = k;
                count += 1;
            }
            leaf = l.next;
        }
        if count != self.len {
            return Err(format!(
                "leaf chain holds {count} keys, len says {}",
                self.len
            ));
        }
        // (2) uniform leaf depth
        fn depth(tree: &BPlusTree, node: u32) -> Result<usize, String> {
            match &tree.nodes[node as usize] {
                Node::Leaf(_) => Ok(1),
                Node::Inner(inner) => {
                    if inner.children.len() != inner.keys.len() + 1 {
                        return Err("inner fanout mismatch".into());
                    }
                    let d0 = depth(tree, inner.children[0])?;
                    for &c in &inner.children[1..] {
                        if depth(tree, c)? != d0 {
                            return Err("unbalanced depth".into());
                        }
                    }
                    Ok(d0 + 1)
                }
            }
        }
        depth(self, self.root)?;
        Ok(())
    }
}
