//! Dataset file I/O: the `fvecs` / `ivecs` formats of the ANN-benchmarks
//! ecosystem (TEXMEX) and a simple CSV reader/writer.
//!
//! The seven datasets of the paper are distributed as `fvecs` (Audio, Deep,
//! GIST, Trevi, …): a little-endian stream of records, each
//! `[dim: u32][dim × f32]`. Ground-truth neighbor files use `ivecs`
//! (`[k: u32][k × i32]`). Supporting these formats lets this crate run on
//! the *real* datasets when they are available, not just the stand-ins.

use pm_lsh_metric::Dataset;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised by the readers/writers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structurally invalid file (message explains what was wrong).
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads an `fvecs` file into a [`Dataset`]. `limit` caps the number of
/// vectors read (`None` = all).
pub fn read_fvecs(path: impl AsRef<Path>, limit: Option<usize>) -> Result<Dataset, IoError> {
    let file = File::open(path)?;
    read_fvecs_from(BufReader::new(file), limit)
}

/// Reads a dataset file, dispatching on the extension: `.csv` parses as
/// headerless CSV ([`read_csv`]), anything else as little-endian fvecs
/// ([`read_fvecs`]). The single place this convention lives — the `pmlsh`
/// CLI and the TCP `REINDEX` verb both resolve paths through here, so
/// they can never disagree about a file's format.
pub fn read_auto(path: impl AsRef<Path>, limit: Option<usize>) -> Result<Dataset, IoError> {
    let path = path.as_ref();
    if path.extension().is_some_and(|e| e == "csv") {
        read_csv(path, limit)
    } else {
        read_fvecs(path, limit)
    }
}

/// Reads `fvecs` records from any reader.
pub fn read_fvecs_from(mut reader: impl Read, limit: Option<usize>) -> Result<Dataset, IoError> {
    let mut dim_buf = [0u8; 4];
    let mut data: Option<Dataset> = None;
    let mut count = 0usize;
    loop {
        if let Some(cap) = limit {
            if count >= cap {
                break;
            }
        }
        match reader.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let dim = u32::from_le_bytes(dim_buf) as usize;
        if dim == 0 || dim > 1_000_000 {
            return Err(IoError::Format(format!(
                "implausible vector dimension {dim}"
            )));
        }
        let mut payload = vec![0u8; dim * 4];
        reader
            .read_exact(&mut payload)
            .map_err(|_| IoError::Format(format!("truncated record {count}")))?;
        let row: Vec<f32> = payload
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        match &mut data {
            None => {
                let mut ds = Dataset::with_capacity(dim, 1024);
                ds.push(&row);
                data = Some(ds);
            }
            Some(ds) => {
                if ds.dim() != dim {
                    return Err(IoError::Format(format!(
                        "record {count} has dimension {dim}, expected {}",
                        ds.dim()
                    )));
                }
                ds.push(&row);
            }
        }
        count += 1;
    }
    data.ok_or_else(|| IoError::Format("empty fvecs file".into()))
}

/// Writes a [`Dataset`] as `fvecs`.
pub fn write_fvecs(path: impl AsRef<Path>, data: &Dataset) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for row in data.iter() {
        w.write_all(&(data.dim() as u32).to_le_bytes())?;
        for &v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an `ivecs` file (e.g., TEXMEX ground-truth neighbor ids).
pub fn read_ivecs(path: impl AsRef<Path>, limit: Option<usize>) -> Result<Vec<Vec<i32>>, IoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut dim_buf = [0u8; 4];
    let mut out = Vec::new();
    loop {
        if let Some(cap) = limit {
            if out.len() >= cap {
                break;
            }
        }
        match reader.read_exact(&mut dim_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let k = u32::from_le_bytes(dim_buf) as usize;
        if k > 1_000_000 {
            return Err(IoError::Format(format!("implausible row length {k}")));
        }
        let mut payload = vec![0u8; k * 4];
        reader
            .read_exact(&mut payload)
            .map_err(|_| IoError::Format(format!("truncated record {}", out.len())))?;
        out.push(
            payload
                .chunks_exact(4)
                .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        );
    }
    Ok(out)
}

/// Reads a headerless CSV of floats (one point per line) into a [`Dataset`].
pub fn read_csv(path: impl AsRef<Path>, limit: Option<usize>) -> Result<Dataset, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut data: Option<Dataset> = None;
    for (lineno, line) in reader.lines().enumerate() {
        if let Some(cap) = limit {
            if lineno >= cap {
                break;
            }
        }
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Result<Vec<f32>, _> = trimmed
            .split(',')
            .map(|tok| tok.trim().parse::<f32>())
            .collect();
        let row = row
            .map_err(|e| IoError::Format(format!("line {}: unparsable float ({e})", lineno + 1)))?;
        match &mut data {
            None => {
                let mut ds = Dataset::with_capacity(row.len().max(1), 1024);
                ds.push(&row);
                data = Some(ds);
            }
            Some(ds) => {
                if row.len() != ds.dim() {
                    return Err(IoError::Format(format!(
                        "line {}: {} fields, expected {}",
                        lineno + 1,
                        row.len(),
                        ds.dim()
                    )));
                }
                ds.push(&row);
            }
        }
    }
    data.ok_or_else(|| IoError::Format("empty CSV file".into()))
}

/// Writes a [`Dataset`] as headerless CSV.
pub fn write_csv(path: impl AsRef<Path>, data: &Dataset) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for row in data.iter() {
        let mut first = true;
        for &v in row {
            if !first {
                w.write_all(b",")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![
            vec![1.0, -2.5, 3.25],
            vec![0.0, 0.5, -0.125],
            vec![9.0, 8.0, 7.0],
        ])
    }

    #[test]
    fn fvecs_roundtrip() {
        let dir = std::env::temp_dir().join("pmlsh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fvecs");
        let ds = sample();
        write_fvecs(&path, &ds).unwrap();
        let back = read_fvecs(&path, None).unwrap();
        assert_eq!(back, ds);
        // limit caps the rows
        let two = read_fvecs(&path, Some(2)).unwrap();
        assert_eq!(two.len(), 2);
        assert_eq!(two.point(1), ds.point(1));
    }

    #[test]
    fn fvecs_in_memory_format() {
        // hand-build one record and parse it
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1.5f32.to_le_bytes());
        bytes.extend_from_slice(&(-4.0f32).to_le_bytes());
        let ds = read_fvecs_from(&bytes[..], None).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.point(0), &[1.5, -4.0]);
    }

    #[test]
    fn fvecs_rejects_truncation_and_mixed_dims() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes()); // only 1 of 3 floats
        assert!(matches!(
            read_fvecs_from(&bytes[..], None),
            Err(IoError::Format(_))
        ));

        let mut bytes = Vec::new();
        for dim in [2u32, 3u32] {
            bytes.extend_from_slice(&dim.to_le_bytes());
            for _ in 0..dim {
                bytes.extend_from_slice(&0.0f32.to_le_bytes());
            }
        }
        assert!(matches!(
            read_fvecs_from(&bytes[..], None),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("pmlsh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let ds = sample();
        write_csv(&path, &ds).unwrap();
        let back = read_csv(&path, None).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.dim(), ds.dim());
        for i in 0..ds.len() {
            for (a, b) in back.point(i).iter().zip(ds.point(i)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn ivecs_roundtrip_via_bytes() {
        let dir = std::env::temp_dir().join("pmlsh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gt.ivecs");
        let mut bytes = Vec::new();
        for row in [[1i32, 2, 3], [7, 8, 9]] {
            bytes.extend_from_slice(&3u32.to_le_bytes());
            for v in row {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        std::fs::write(&path, &bytes).unwrap();
        let rows = read_ivecs(&path, None).unwrap();
        assert_eq!(rows, vec![vec![1, 2, 3], vec![7, 8, 9]]);
        assert_eq!(read_ivecs(&path, Some(1)).unwrap().len(), 1);
    }
}
