//! The paper's evaluation metrics (Section 6.1).
//!
//! * **Overall ratio** (Eq. 11): `(1/k) Σ_i ||q, o_i|| / ||q, o*_i||`,
//!   pairing the i-th returned neighbor with the i-th exact neighbor —
//!   1.0 is perfect, values grow with approximation error.
//! * **Recall** (Eq. 12): `|R ∩ R*| / |R*|`.

use pm_lsh_metric::Neighbor;

/// Eq. 12: fraction of the exact answer set recovered.
pub fn recall(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|n| n.id).collect();
    let hits = found.iter().filter(|n| truth_ids.contains(&n.id)).count();
    hits as f64 / truth.len() as f64
}

/// Eq. 11: mean per-rank distance ratio. Ranks with zero exact distance
/// (exact duplicates of the query) are skipped; a `found` set shorter than
/// `truth` is averaged over the returned prefix (and can only make the
/// ratio look better, so callers should also report recall).
pub fn overall_ratio(found: &[Neighbor], truth: &[Neighbor]) -> f64 {
    let mut acc = 0.0f64;
    let mut counted = 0usize;
    for (f, t) in found.iter().zip(truth) {
        if t.dist > 0.0 {
            acc += f.dist as f64 / t.dist as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        1.0
    } else {
        (acc / counted as f64).max(1.0)
    }
}

/// Aggregated metrics over a query workload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkloadMetrics {
    /// Mean query time in milliseconds.
    pub avg_query_ms: f64,
    /// Mean overall ratio (Eq. 11).
    pub overall_ratio: f64,
    /// Mean recall (Eq. 12).
    pub recall: f64,
    /// Mean number of candidates verified per query.
    pub avg_candidates: f64,
}

/// Accumulates per-query measurements into [`WorkloadMetrics`].
#[derive(Clone, Debug, Default)]
pub struct MetricsAccumulator {
    total_ms: f64,
    total_ratio: f64,
    total_recall: f64,
    total_candidates: f64,
    queries: usize,
}

impl MetricsAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query.
    pub fn record(
        &mut self,
        elapsed_ms: f64,
        found: &[Neighbor],
        truth: &[Neighbor],
        candidates: usize,
    ) {
        self.total_ms += elapsed_ms;
        self.total_ratio += overall_ratio(found, truth);
        self.total_recall += recall(found, truth);
        self.total_candidates += candidates as f64;
        self.queries += 1;
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.queries
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.queries == 0
    }

    /// The aggregate (panics when empty).
    pub fn finish(&self) -> WorkloadMetrics {
        assert!(self.queries > 0, "no queries recorded");
        let n = self.queries as f64;
        WorkloadMetrics {
            avg_query_ms: self.total_ms / n,
            overall_ratio: self.total_ratio / n,
            recall: self.total_recall / n,
            avg_candidates: self.total_candidates / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(dist: f32, id: u32) -> Neighbor {
        Neighbor::new(dist, id)
    }

    #[test]
    fn perfect_answer_scores_one() {
        let truth = vec![nb(1.0, 0), nb(2.0, 1), nb(3.0, 2)];
        assert_eq!(recall(&truth, &truth), 1.0);
        assert_eq!(overall_ratio(&truth, &truth), 1.0);
    }

    #[test]
    fn recall_counts_intersection_only() {
        let truth = vec![nb(1.0, 0), nb(2.0, 1), nb(3.0, 2), nb(4.0, 3)];
        let found = vec![nb(1.0, 0), nb(2.5, 9), nb(3.0, 2), nb(9.0, 8)];
        assert_eq!(recall(&found, &truth), 0.5);
    }

    #[test]
    fn ratio_pairs_by_rank() {
        let truth = vec![nb(1.0, 0), nb(2.0, 1)];
        let found = vec![nb(1.5, 5), nb(3.0, 6)];
        // (1.5/1.0 + 3.0/2.0) / 2 = 1.5
        assert!((overall_ratio(&found, &truth) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_distance_skipped() {
        let truth = vec![nb(0.0, 0), nb(2.0, 1)];
        let found = vec![nb(0.0, 0), nb(4.0, 2)];
        assert!((overall_ratio(&found, &truth) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_averages() {
        let truth = vec![nb(1.0, 0)];
        let exact = vec![nb(1.0, 0)];
        let off = vec![nb(2.0, 9)];
        let mut acc = MetricsAccumulator::new();
        acc.record(10.0, &exact, &truth, 100);
        acc.record(20.0, &off, &truth, 200);
        let m = acc.finish();
        assert!((m.avg_query_ms - 15.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.overall_ratio - 1.5).abs() < 1e-12);
        assert!((m.avg_candidates - 150.0).abs() < 1e-12);
    }
}
