//! Synthetic dataset generation.
//!
//! The paper's seven real datasets cannot be redistributed here, so each is
//! replaced by a seeded generator with the same *shape*: `n` points in
//! `R^d`, clustered, with points living near low-dimensional latent
//! subspaces plus ambient noise. The latent dimensionality drives the LID
//! statistic, the cluster-separation/spread ratio drives RC, and the
//! cluster structure yields the high HV the cost models rely on — the three
//! quantities the paper itself uses to characterize dataset difficulty
//! (Table 3).

use pm_lsh_metric::Dataset;
use pm_lsh_stats::Rng;

/// Parameters of one synthetic dataset family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthSpec {
    /// Number of points.
    pub n: usize,
    /// Ambient dimensionality `d`.
    pub dim: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Latent (intrinsic) dimensionality of each cluster's subspace.
    pub latent_dim: usize,
    /// Standard deviation of cluster centers (per ambient coordinate).
    pub center_spread: f32,
    /// Standard deviation of latent coordinates (within-cluster scale).
    pub within_scale: f32,
    /// Standard deviation of full-dimensional ambient noise.
    pub noise: f32,
    /// Master seed: fixes centers, subspaces and point draws.
    pub seed: u64,
}

/// A reusable generator: the cluster centers and latent subspaces are fixed
/// by the spec's seed, so data points and query points can be drawn from the
/// *same* distribution with different sub-seeds (the paper samples queries
/// from the dataset distribution).
pub struct Generator {
    spec: SynthSpec,
    /// `clusters × dim` center matrix.
    centers: Vec<f32>,
    /// `clusters × dim × latent_dim` subspace bases.
    bases: Vec<f32>,
}

impl Generator {
    /// Derives centers and subspace bases from the spec.
    pub fn new(spec: SynthSpec) -> Self {
        assert!(spec.n > 0 && spec.dim > 0 && spec.clusters > 0);
        assert!(spec.latent_dim >= 1 && spec.latent_dim <= spec.dim);
        let mut rng = Rng::new(spec.seed);
        let mut centers = vec![0.0f32; spec.clusters * spec.dim];
        rng.fill_normal(&mut centers);
        for c in centers.iter_mut() {
            *c *= spec.center_spread;
        }
        // Basis entries scaled so each latent unit contributes O(1) ambient
        // distance: Var(point - center per coord) = within² · latent · scale².
        let scale = 1.0 / (spec.latent_dim as f32).sqrt();
        let mut bases = vec![0.0f32; spec.clusters * spec.dim * spec.latent_dim];
        rng.fill_normal(&mut bases);
        for b in bases.iter_mut() {
            *b *= scale;
        }
        Self {
            spec,
            centers,
            bases,
        }
    }

    /// The spec in effect.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Draws `count` points using `rng` (pass different forks of the master
    /// RNG for data vs queries).
    pub fn points(&self, count: usize, rng: &mut Rng) -> Dataset {
        let spec = &self.spec;
        let mut out = Dataset::with_capacity(spec.dim, count);
        let mut latent = vec![0.0f32; spec.latent_dim];
        let mut buf = vec![0.0f32; spec.dim];
        for i in 0..count {
            let c = i % spec.clusters;
            let center = &self.centers[c * spec.dim..(c + 1) * spec.dim];
            let basis =
                &self.bases[c * spec.dim * spec.latent_dim..(c + 1) * spec.dim * spec.latent_dim];
            for z in latent.iter_mut() {
                *z = rng.normal_f32() * spec.within_scale;
            }
            for (j, v) in buf.iter_mut().enumerate() {
                let row = &basis[j * spec.latent_dim..(j + 1) * spec.latent_dim];
                let mut acc = center[j];
                for (&b, &z) in row.iter().zip(&latent) {
                    acc += b * z;
                }
                *v = acc + rng.normal_f32() * spec.noise;
            }
            out.push(&buf);
        }
        out
    }

    /// The dataset itself: `spec.n` points drawn from the master seed's
    /// data stream.
    pub fn dataset(&self) -> Dataset {
        let mut rng = Rng::new(self.spec.seed).fork(1);
        self.points(self.spec.n, &mut rng)
    }

    /// A query workload of `count` points drawn from the same distribution
    /// but an independent stream.
    pub fn queries(&self, count: usize) -> Dataset {
        let mut rng = Rng::new(self.spec.seed).fork(2);
        self.points(count, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_stats::dataset_stats::{lid_mle, relative_contrast};

    fn small_spec(latent: usize, spread: f32) -> SynthSpec {
        SynthSpec {
            n: 1500,
            dim: 64,
            clusters: 10,
            latent_dim: latent,
            center_spread: spread,
            within_scale: 1.0,
            noise: 0.05,
            seed: 77,
        }
    }

    #[test]
    fn deterministic_generation() {
        let g1 = Generator::new(small_spec(6, 1.0));
        let g2 = Generator::new(small_spec(6, 1.0));
        assert_eq!(g1.dataset(), g2.dataset());
        assert_eq!(g1.queries(10), g2.queries(10));
        // queries differ from data (independent stream)
        assert_ne!(g1.dataset().point(0), g1.queries(1).point(0));
    }

    #[test]
    fn latent_dim_controls_lid() {
        let low = Generator::new(small_spec(4, 1.0)).dataset();
        let high = Generator::new(SynthSpec {
            seed: 78,
            ..small_spec(24, 1.0)
        })
        .dataset();
        let mut r1 = Rng::new(1);
        let mut r2 = Rng::new(1);
        let lid_low = lid_mle(low.view(), 25, 60, &mut r1);
        let lid_high = lid_mle(high.view(), 25, 60, &mut r2);
        assert!(lid_low < lid_high, "low={lid_low} high={lid_high}");
        assert!(lid_low > 2.0 && lid_low < 12.0, "lid_low={lid_low}");
    }

    #[test]
    fn center_spread_controls_rc() {
        let tight = Generator::new(small_spec(6, 0.2)).dataset();
        let spread = Generator::new(small_spec(6, 2.0)).dataset();
        let mut r1 = Rng::new(2);
        let mut r2 = Rng::new(2);
        let rc_tight = relative_contrast(tight.view(), 20, &mut r1);
        let rc_spread = relative_contrast(spread.view(), 20, &mut r2);
        assert!(rc_spread > rc_tight, "tight={rc_tight} spread={rc_spread}");
    }

    #[test]
    fn shapes_are_correct() {
        let g = Generator::new(small_spec(6, 1.0));
        let ds = g.dataset();
        assert_eq!(ds.len(), 1500);
        assert_eq!(ds.dim(), 64);
        let qs = g.queries(33);
        assert_eq!(qs.len(), 33);
        assert_eq!(qs.dim(), 64);
    }
}
