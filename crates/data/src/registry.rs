//! Stand-ins for the paper's seven datasets (Table 3).
//!
//! | Dataset | n (paper) | d | HV | RC | LID |
//! |---------|-----------|------|--------|------|------|
//! | Audio | 54 K | 192 | 0.9273 | 2.97 | 5.6 |
//! | Deep | 1 M | 256 | 0.9393 | 1.96 | 12.1 |
//! | NUS | 269 K | 500 | 0.9995 | 1.67 | 24.5 |
//! | MNIST | 60 K | 784 | 0.9531 | 2.38 | 6.5 |
//! | GIST | 983 K | 960 | 0.9670 | 1.94 | 18.9 |
//! | Cifar | 50 K | 1024 | 0.9457 | 1.97 | 9.0 |
//! | Trevi | 100 K | 4096 | 0.9432 | 2.95 | 9.2 |
//!
//! The generator specs below target the RC/LID character of each dataset:
//! `latent_dim` tracks LID and the center-spread/within-scale ratio tracks
//! RC. Datasets whose full size exceeds laptop memory are scaled down at
//! [`Scale::Bench`]; the scaling is part of the experiment record in
//! EXPERIMENTS.md.

use crate::synth::{Generator, SynthSpec};

/// The seven datasets of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Audio features, 54 K × 192 — easy (high RC, low LID).
    Audio,
    /// Deep CNN features, 1 M × 256 — large and moderately hard.
    Deep,
    /// NUS-WIDE features, 269 K × 500 — hardest (RC 1.67, LID 24.5).
    Nus,
    /// MNIST pixels, 60 K × 784 — easy.
    Mnist,
    /// GIST descriptors, 983 K × 960 — large and hard.
    Gist,
    /// CIFAR pixels, 50 K × 1024 — moderate.
    Cifar,
    /// Trevi patches, 100 K × 4096 — highest dimensionality, easy contrast.
    Trevi,
}

/// Dataset size profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit/integration tests (seconds end-to-end).
    Smoke,
    /// Laptop-scale benchmark instances (≤ ~50 M floats each).
    Bench,
    /// The paper's full cardinalities (needs ~16 GB RAM for the largest).
    Full,
}

/// Reference statistics from Table 3 of the paper.
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// Cardinality used in the paper.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Homogeneity of viewpoints.
    pub hv: f64,
    /// Relative contrast.
    pub rc: f64,
    /// Local intrinsic dimensionality.
    pub lid: f64,
}

impl PaperDataset {
    /// All seven datasets in the paper's Table 3 order.
    pub const ALL: [PaperDataset; 7] = [
        PaperDataset::Audio,
        PaperDataset::Deep,
        PaperDataset::Nus,
        PaperDataset::Mnist,
        PaperDataset::Gist,
        PaperDataset::Cifar,
        PaperDataset::Trevi,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Audio => "Audio",
            PaperDataset::Deep => "Deep",
            PaperDataset::Nus => "NUS",
            PaperDataset::Mnist => "MNIST",
            PaperDataset::Gist => "GIST",
            PaperDataset::Cifar => "Cifar",
            PaperDataset::Trevi => "Trevi",
        }
    }

    /// The paper's Table 3 reference row.
    pub fn paper_stats(&self) -> PaperStats {
        match self {
            PaperDataset::Audio => PaperStats {
                n: 54_000,
                dim: 192,
                hv: 0.9273,
                rc: 2.97,
                lid: 5.6,
            },
            PaperDataset::Deep => PaperStats {
                n: 1_000_000,
                dim: 256,
                hv: 0.9393,
                rc: 1.96,
                lid: 12.1,
            },
            PaperDataset::Nus => PaperStats {
                n: 269_000,
                dim: 500,
                hv: 0.9995,
                rc: 1.67,
                lid: 24.5,
            },
            PaperDataset::Mnist => PaperStats {
                n: 60_000,
                dim: 784,
                hv: 0.9531,
                rc: 2.38,
                lid: 6.5,
            },
            PaperDataset::Gist => PaperStats {
                n: 983_000,
                dim: 960,
                hv: 0.9670,
                rc: 1.94,
                lid: 18.9,
            },
            PaperDataset::Cifar => PaperStats {
                n: 50_000,
                dim: 1024,
                hv: 0.9457,
                rc: 1.97,
                lid: 9.0,
            },
            PaperDataset::Trevi => PaperStats {
                n: 100_000,
                dim: 4096,
                hv: 0.9432,
                rc: 2.95,
                lid: 9.2,
            },
        }
    }

    /// Cardinality at a given scale. `Bench` keeps every dataset within
    /// ~50 M floats (≈ 200 MB of `f32`), the per-dataset reductions being:
    /// Deep 1 M → 200 K, NUS 269 K → 100 K, GIST 983 K → 50 K,
    /// Trevi 100 K → 12 K; the rest already fit at full size.
    pub fn n_at(&self, scale: Scale) -> usize {
        let full = self.paper_stats().n;
        match scale {
            Scale::Full => full,
            Scale::Bench => match self {
                PaperDataset::Deep => 200_000,
                PaperDataset::Nus => 100_000,
                PaperDataset::Gist => 50_000,
                PaperDataset::Trevi => 12_000,
                _ => full,
            },
            Scale::Smoke => match self {
                PaperDataset::Trevi => 800,
                _ => 2_000,
            },
        }
    }

    /// The synthetic spec at a given scale. Latent dimensionality and
    /// cluster geometry are tuned toward each dataset's RC/LID character.
    pub fn spec(&self, scale: Scale) -> SynthSpec {
        let stats = self.paper_stats();
        let n = self.n_at(scale);
        // RC grows with center spread; LID tracks latent_dim. The constants
        // below were calibrated with `table3_datasets` (see EXPERIMENTS.md).
        let (latent, spread, within, noise, clusters) = match self {
            PaperDataset::Audio => (6, 0.30, 1.0, 0.07, 80),
            PaperDataset::Deep => (15, 0.33, 1.0, 0.030, 150),
            PaperDataset::Nus => (72, 0.68, 1.0, 0.02, 120),
            PaperDataset::Mnist => (7, 0.28, 1.0, 0.06, 80),
            PaperDataset::Gist => (56, 1.08, 1.0, 0.02, 120),
            PaperDataset::Cifar => (12, 0.31, 1.0, 0.045, 80),
            PaperDataset::Trevi => (30, 1.75, 1.0, 0.02, 80),
        };
        // Clusters scale down with tiny instances so each keeps enough
        // members (~100+) for meaningful nearest-neighbor structure.
        let clusters = clusters.min((n / 100).max(1));
        SynthSpec {
            n,
            dim: stats.dim,
            clusters,
            latent_dim: latent,
            center_spread: spread,
            within_scale: within,
            noise,
            seed: 0xda7a_0000 + *self as u64,
        }
    }

    /// A ready generator at the given scale.
    pub fn generator(&self, scale: Scale) -> Generator {
        Generator::new(self.spec(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_constructible_at_smoke() {
        for ds in PaperDataset::ALL {
            let g = ds.generator(Scale::Smoke);
            let data = g.dataset();
            assert_eq!(data.len(), ds.n_at(Scale::Smoke));
            assert_eq!(data.dim(), ds.paper_stats().dim);
        }
    }

    #[test]
    fn bench_scale_fits_memory_envelope() {
        for ds in PaperDataset::ALL {
            let floats = ds.n_at(Scale::Bench) * ds.paper_stats().dim;
            assert!(
                floats <= 52_000_000,
                "{} too large at bench scale",
                ds.name()
            );
        }
    }

    #[test]
    fn names_and_order_match_table3() {
        let names: Vec<&str> = PaperDataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["Audio", "Deep", "NUS", "MNIST", "GIST", "Cifar", "Trevi"]
        );
    }
}
