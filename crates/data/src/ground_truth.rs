//! Exact k-NN ground truth by parallel brute force.
//!
//! Every accuracy metric in the paper (recall, overall ratio) is defined
//! against the exact answer, so the harness computes it once per
//! dataset/query-set pair. Queries are embarrassingly parallel; a scoped
//! thread pool splits them across cores.

use pm_lsh_metric::{euclidean, MatrixView, Neighbor, TopK};

/// Exact `k` nearest neighbors of one query (ascending distance).
pub fn exact_knn(data: MatrixView<'_>, q: &[f32], k: usize) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for (i, p) in data.iter().enumerate() {
        top.push(euclidean(q, p), i as u32);
    }
    top.into_sorted_vec()
}

/// Exact `k`-NN for a batch of queries, parallelized over `threads` OS
/// threads (pass 0 to use the available parallelism).
pub fn exact_knn_batch(
    data: MatrixView<'_>,
    queries: MatrixView<'_>,
    k: usize,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.dim(), queries.dim(), "dimensionality mismatch");
    let nq = queries.len();
    if nq == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(nq);

    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];
    let chunk = nq.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                for (j, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = exact_knn(data, queries.point(start + j), k);
                }
            });
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::Dataset;
    use pm_lsh_stats::Rng;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn batch_matches_single() {
        let data = blob(400, 8, 1);
        let queries = blob(17, 8, 2);
        let batch = exact_knn_batch(data.view(), queries.view(), 5, 4);
        assert_eq!(batch.len(), 17);
        for (i, row) in batch.iter().enumerate() {
            let single = exact_knn(data.view(), queries.point(i), 5);
            assert_eq!(row, &single);
        }
    }

    #[test]
    fn single_thread_equals_many() {
        let data = blob(300, 6, 3);
        let queries = blob(9, 6, 4);
        let a = exact_knn_batch(data.view(), queries.view(), 3, 1);
        let b = exact_knn_batch(data.view(), queries.view(), 3, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn results_are_sorted_and_exact() {
        let data = blob(200, 4, 5);
        let q = data.point(11).to_vec();
        let nn = exact_knn(data.view(), &q, 3);
        assert_eq!(nn[0].id, 11);
        assert_eq!(nn[0].dist, 0.0);
        assert!(nn[0].dist <= nn[1].dist && nn[1].dist <= nn[2].dist);
    }

    #[test]
    fn empty_queries_ok() {
        let data = blob(10, 4, 6);
        let queries = Dataset::with_capacity(4, 0);
        assert!(exact_knn_batch(data.view(), queries.view(), 2, 0).is_empty());
    }
}
