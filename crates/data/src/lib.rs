//! Datasets, ground truth and metrics for the PM-LSH experiments.
//!
//! The paper evaluates on seven real datasets (Table 3) that cannot be
//! bundled here; [`registry::PaperDataset`] provides seeded synthetic
//! stand-ins whose size, dimensionality and difficulty statistics (RC, LID,
//! HV) track the originals — see DESIGN.md §3 for the substitution
//! rationale. [`ground_truth`] computes exact answers in parallel and
//! [`metrics`] implements the paper's overall ratio (Eq. 11) and recall
//! (Eq. 12).

#![warn(missing_docs)]

pub mod ground_truth;
pub mod io;
pub mod metrics;
pub mod registry;
pub mod synth;

pub use ground_truth::{exact_knn, exact_knn_batch};
pub use io::{read_auto, read_csv, read_fvecs, read_ivecs, write_csv, write_fvecs, IoError};
pub use metrics::{overall_ratio, recall, MetricsAccumulator, WorkloadMetrics};
pub use registry::{PaperDataset, PaperStats, Scale};
pub use synth::{Generator, SynthSpec};
