//! Collection strategies (`proptest::collection::vec` compatible).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// A vector length specification: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("vec_lengths");
        for _ in 0..200 {
            assert_eq!(vec(0i32..5, 7usize).generate(&mut rng).len(), 7);
            let ranged = vec(0i32..5, 2..5).generate(&mut rng);
            assert!((2..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn nested_vec_of_vec() {
        let mut rng = TestRng::from_name("nested");
        let grid = vec(vec(-1.0f32..1.0, 4usize), 1..3).generate(&mut rng);
        assert!(!grid.is_empty());
        assert!(grid.iter().all(|row| row.len() == 4));
    }
}
