//! A minimal, offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The workspace's property tests were written against real proptest, but
//! no external crate is on the offline allow-list, so this local shim
//! implements exactly the surface those tests use:
//!
//! * the [`proptest!`] macro (with the `#![proptest_config(...)]` inner
//!   attribute and `pattern in strategy` arguments),
//! * [`Strategy`] for primitive `Range`s, tuples, [`collection::vec`],
//!   [`Strategy::prop_map`] and [`Strategy::prop_flat_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! drawn from a deterministic per-test RNG (seeded from the test's module
//! path, so failures reproduce without a persistence file), and there is
//! no shrinking — a failing case panics with the values it drew still
//! computable by re-running. Case count defaults to 64 and can be raised
//! with the `PROPTEST_CASES` environment variable, mirroring real
//! proptest's knob.

#![warn(missing_docs)]

pub mod collection;

use std::ops::Range;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Why a single case did not pass: a genuine failure, or an input the test
/// asked to skip ([`prop_assume!`]). Test bodies run inside a closure
/// returning `Result<(), TestCaseError>`, so `?` works on
/// `.map_err(TestCaseError::fail)` chains exactly as with real proptest.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed; the test panics with this message.
    Fail(String),
    /// The case was rejected by an assumption; it is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail<T: std::fmt::Display>(reason: T) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// A rejection (skip) with the given reason.
    pub fn reject<T: std::fmt::Display>(reason: T) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "test case failed: {reason}"),
            TestCaseError::Reject(reason) => write!(f, "test case rejected: {reason}"),
        }
    }
}

/// Per-test configuration (only the case count is meaningful here).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic test RNG (splitmix64 seeded from the test's name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the `proptest!` macro passes the
    /// test's `module_path!()::name`).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, then a splitmix64 scramble so short names diverge fast.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values — the (shrinking-free) core of proptest's
/// trait of the same name.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Feeds the produced value into `f` to obtain a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let width = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(width)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float strategy range");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Float rounding (u as f32 can round up to 1.0, and the
                // affine map itself can land on `end` for narrow ranges)
                // must not violate the half-open contract.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Runs each contained `fn name(pattern in strategy, ...) { ... }` as a
/// `#[test]` over `ProptestConfig::cases` random cases.
///
/// An optional leading `#![proptest_config(expr)]` sets the config, same
/// as real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $( let $pat = $crate::Strategy::generate(&($strategy), &mut rng); )+
                // The closure gives `?` on Result<_, TestCaseError> a place
                // to land, exactly like real proptest's test runner.
                #[allow(unused_mut)]
                let mut one_case =
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                match one_case() {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(reason)) => {
                        panic!("proptest case {case} failed: {reason}");
                    }
                }
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = crate::Strategy::generate(&(-50i32..-10), &mut rng);
            assert!((-50..-10).contains(&i));
            let wide = crate::Strategy::generate(&(0u64..u64::MAX / 2), &mut rng);
            assert!(wide < u64::MAX / 2);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_loops(
            n in 1usize..10,
            (lo, span) in (0i32..100, 1i32..5),
            mut items in crate::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(lo >= 0 && span >= 1);
            prop_assert!(items.len() >= 2 && items.len() < 6);
            items.sort_by(|a, b| a.total_cmp(b));
            prop_assert!(items.iter().all(|v| (0.0..1.0).contains(v)));
            prop_assume!(span != 3);
            prop_assert_ne!(span, 3);
        }

        #[test]
        fn flat_map_produces_dependent_sizes(v in (1usize..8).prop_flat_map(|len| {
            crate::collection::vec(-1.0f32..1.0, len)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }
}
