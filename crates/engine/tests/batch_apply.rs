//! The amortized batch write path: `Engine::apply` pays one
//! copy-on-write clone and one epoch bump for a whole batch, answers
//! bit-identically to the same ops applied one at a time, and the wire
//! `BATCH` verb carries all of it end to end — all-or-nothing syntax,
//! per-op semantic FAIL lines, and auth gating included.

use pm_lsh_core::{BuildOptions, MutOp, PmLsh, PmLshParams};
use pm_lsh_engine::{
    serve, serve_router, Engine, EngineConfig, MutationError, Router, ServerConfig, ShardedEngine,
};
use pm_lsh_metric::Dataset;
use pm_lsh_stats::Rng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn engine_over(data: Dataset) -> Engine {
    Engine::new(
        PmLsh::build(data, PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    )
}

/// A batch of W mutations does exactly ONE publication: the epoch moves
/// from e to e+1, never e+W.
#[test]
fn one_batch_means_one_epoch_bump() {
    let extra = blob(40, 6, 11);
    let engine = engine_over(blob(300, 6, 10));
    assert_eq!(engine.epoch(), 0);

    let mut ops: Vec<MutOp> = (0..16)
        .map(|i| MutOp::Insert(extra.point(i).to_vec()))
        .collect();
    ops.extend([3u32, 7, 11, 13].map(MutOp::Delete));
    let w = ops.len();

    let report = engine.apply(&ops).expect("batch applies");
    assert_eq!(
        engine.epoch(),
        1,
        "{w} ops must publish once, not {w} times"
    );
    assert_eq!(report.epoch, 1);
    assert_eq!(report.applied, w);
    assert_eq!(report.failed(), 0);
    assert_eq!(report.points, 300 + 16 - 4);

    // A second batch bumps to exactly 2.
    let report = engine
        .apply(&[MutOp::Insert(extra.point(20).to_vec())])
        .unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(engine.epoch(), 2);

    // An empty batch and an all-rejected batch publish nothing.
    let report = engine.apply(&[]).unwrap();
    assert_eq!(report.epoch, 2, "empty batch must not move the epoch");
    assert_eq!(report.applied, 0);
    let report = engine
        .apply(&[MutOp::Delete(999_999), MutOp::Insert(vec![1.0, 2.0])])
        .unwrap();
    assert_eq!(report.applied, 0);
    assert_eq!(report.failed(), 2);
    assert_eq!(
        engine.epoch(),
        2,
        "a batch with zero applied ops must not publish"
    );
}

/// The batched engine answers every query bit-identically to a twin that
/// applied the same ops one `insert`/`delete` at a time — the amortized
/// path changes cost, never answers.
#[test]
fn batched_engine_matches_single_op_twin_bit_for_bit() {
    let data = blob(400, 8, 20);
    let extra = blob(30, 8, 21);
    let batched = engine_over(data.clone());
    let twin = engine_over(data);

    let ops: Vec<MutOp> = vec![
        MutOp::Insert(extra.point(0).to_vec()),
        MutOp::Delete(5),
        MutOp::Insert(extra.point(1).to_vec()),
        MutOp::Insert(extra.point(2).to_vec()),
        MutOp::Delete(400), // the id op 0 just inserted
        MutOp::Delete(17),
    ];
    let report = batched.apply(&ops).expect("batch applies");
    assert_eq!(report.applied, 6);
    for op in &ops {
        match op {
            MutOp::Insert(p) => {
                twin.insert(p).expect("twin insert");
            }
            MutOp::Delete(id) => {
                twin.delete(*id).expect("twin delete");
            }
        }
    }
    // Cost asymmetry is the whole point: 1 publication vs 6.
    assert_eq!(batched.epoch(), 1);
    assert_eq!(twin.epoch(), 6);

    let a = batched.info();
    let b = twin.info();
    assert_eq!(a.points, b.points);
    for qi in 0..12 {
        let q = extra.point(qi % extra.len());
        let x = batched.query(q, 10);
        let y = twin.query(q, 10);
        assert_eq!(x.neighbors, y.neighbors, "query {qi}: neighbors diverged");
        assert_eq!(x.stats, y.stats, "query {qi}: execution counters diverged");
    }
}

/// Semantic refusals fail only their own op; the survivors apply and the
/// batch still publishes exactly once.
#[test]
fn semantic_failures_poison_only_their_own_op() {
    let engine = engine_over(blob(200, 6, 30));
    let ops = vec![
        MutOp::Insert(vec![1.0; 5]),      // wrong dimensionality
        MutOp::Insert(vec![f32::NAN; 6]), // non-finite component
        MutOp::Insert(vec![0.5; 6]),      // fine -> id 200
        MutOp::Delete(200),               // fine: deletes the new point
        MutOp::Delete(4242),              // unknown id
    ];
    let report = engine.apply(&ops).expect("batch applies");
    assert_eq!(
        report.results,
        vec![
            Err(MutationError::DimensionMismatch {
                expected: 6,
                got: 5
            }),
            Err(MutationError::NonFiniteComponent),
            Ok(200),
            Ok(200),
            Err(MutationError::UnknownId(4242)),
        ]
    );
    assert_eq!(report.applied, 2);
    assert_eq!(report.failed(), 3);
    assert_eq!(report.points, 200);
    assert_eq!(engine.epoch(), 1, "two ops applied: exactly one bump");
}

/// The sharded batch path assigns the same external ids as the monolith
/// (the interleaved bijection preserves the id sequence) and matches a
/// sharded twin that applied the same ops one at a time, query for query.
#[test]
fn sharded_batch_matches_monolith_ids_and_single_op_twin_answers() {
    let data = blob(360, 8, 40);
    let extra = blob(24, 8, 41);
    let ops: Vec<MutOp> = (0..12)
        .map(|i| {
            if i % 3 == 2 {
                MutOp::Delete((i * 17) as u32 % 360)
            } else {
                MutOp::Insert(extra.point(i).to_vec())
            }
        })
        .collect();

    let mono = engine_over(data.clone());
    let mono_report = mono.apply(&ops).expect("monolith batch");

    for shards in [2usize, 4] {
        let config = EngineConfig {
            threads: 1,
            ..Default::default()
        };
        let batched = ShardedEngine::build(
            &data,
            PmLshParams::default(),
            BuildOptions::default(),
            shards,
            config,
        );
        let twin = ShardedEngine::build(
            &data,
            PmLshParams::default(),
            BuildOptions::default(),
            shards,
            config,
        );
        let epoch_before = batched.epoch();
        let report = batched.apply(&ops).expect("sharded batch");
        assert_eq!(
            report.results, mono_report.results,
            "S={shards}: per-op outcomes diverged from the monolith"
        );
        assert_eq!(report.points, mono_report.points);
        let touched = shards.min(ops.len());
        assert!(
            report.epoch > epoch_before && report.epoch <= epoch_before + touched as u64,
            "S={shards}: epoch moved by {}, expected 1..={touched}",
            report.epoch - epoch_before
        );
        for op in &ops {
            match op {
                MutOp::Insert(p) => {
                    twin.insert(p).expect("twin insert");
                }
                MutOp::Delete(id) => {
                    twin.delete(*id).expect("twin delete");
                }
            }
        }
        assert_eq!(batched.len(), twin.len());
        for qi in 0..10 {
            let q = extra.point(qi % extra.len());
            let x = batched.query(q, 10);
            let y = twin.query(q, 10);
            assert_eq!(
                x.neighbors, y.neighbors,
                "S={shards}, query {qi}: batched shards diverged from single-op twin"
            );
        }
    }
}

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    recv_line(reader)
}

fn recv_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

/// The wire `BATCH` verb end to end: ops arrive split across writes, the
/// reply comes once after the last op line, the epoch bumps exactly once,
/// semantic failures come back as FAIL lines, one malformed line rejects
/// the whole batch unapplied, and mid-batch lines are never commands.
#[test]
fn wire_batch_roundtrip() {
    let engine = engine_over(blob(300, 6, 50));
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    assert!(roundtrip(&mut reader, &mut writer, "INDEXINFO").contains("epoch=0"));

    // Header, then each op line in its own write with a pause between:
    // the server must buffer until the count is met and reply exactly
    // once, after the last line.
    writer.write_all(b"BATCH 3\n").unwrap();
    for op in [
        "INSERT 1 2 3 4 5 6\n",
        "INSERT 9 9 9 9 9 9\n",
        "DELETE 300\n", // the id the first op just created
    ] {
        std::thread::sleep(std::time::Duration::from_millis(20));
        writer.write_all(op.as_bytes()).unwrap();
    }
    assert_eq!(
        recv_line(&mut reader),
        "OK applied=3 failed=0 epoch=1 points=301"
    );
    let info = roundtrip(&mut reader, &mut writer, "INDEXINFO");
    assert!(
        info.contains("epoch=1") && info.contains("points=301"),
        "one batch must mean one epoch bump: {info}"
    );
    // The surviving insert is served immediately.
    assert_eq!(
        roundtrip(&mut reader, &mut writer, "QUERY 1 9 9 9 9 9 9"),
        "OK 301:0"
    );

    // Semantic failure: its FAIL line follows the summary; the good op
    // still applies and the batch still publishes once.
    assert_eq!(
        roundtrip(
            &mut reader,
            &mut writer,
            "BATCH 2\nDELETE 300\nINSERT 1 1 1 1 1 1"
        ),
        "OK applied=1 failed=1 epoch=2 points=302"
    );
    assert_eq!(recv_line(&mut reader), "FAIL 0 unknown point id 300");

    // Syntactic failure: all-or-nothing. The valid DELETE on line 1 must
    // NOT apply, the epoch must not move, the connection stays usable.
    assert_eq!(
        roundtrip(
            &mut reader,
            &mut writer,
            "BATCH 2\nINSERT 1 2 nan 4 5 6\nDELETE 301"
        ),
        "ERR batch line 0: bad vector component 'nan'"
    );
    let info = roundtrip(&mut reader, &mut writer, "INDEXINFO");
    assert!(
        info.contains("epoch=2") && info.contains("points=302"),
        "a rejected batch must apply nothing: {info}"
    );

    // Mid-batch, every line is an op — even a verb like QUIT.
    assert_eq!(
        roundtrip(&mut reader, &mut writer, "BATCH 1\nQUIT"),
        "ERR batch line 0: unknown batch op 'QUIT' (INSERT or DELETE)"
    );
    assert_eq!(roundtrip(&mut reader, &mut writer, "PING"), "PONG");

    // Header validation happens before any op line is consumed.
    for (header, want) in [
        ("BATCH", "ERR BATCH needs a positive op count"),
        ("BATCH 0", "ERR BATCH needs a positive op count"),
        ("BATCH x", "ERR BATCH needs a positive op count"),
        ("BATCH 2 3", "ERR BATCH takes exactly one op count"),
        ("BATCH 4097", "ERR BATCH accepts at most 4096 ops"),
    ] {
        assert_eq!(&roundtrip(&mut reader, &mut writer, header), want);
    }

    assert_eq!(roundtrip(&mut reader, &mut writer, "QUIT"), "BYE");
    handle.shutdown();
}

/// `BATCH` is auth-gated like the other mutating verbs: the op lines are
/// consumed either way, but nothing applies before `AUTH`.
#[test]
fn wire_batch_requires_auth() {
    let engine = engine_over(blob(200, 6, 60));
    let router = Router::with_engine("default", engine).unwrap();
    let config = ServerConfig {
        auth_token: Some("sekrit".to_string()),
        ..Default::default()
    };
    let handle = serve_router(router, ("127.0.0.1", 0), config).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    assert_eq!(
        roundtrip(&mut reader, &mut writer, "BATCH 1\nINSERT 1 2 3 4 5 6"),
        "ERR authentication required (AUTH <token>)"
    );
    let info = roundtrip(&mut reader, &mut writer, "INDEXINFO");
    assert!(
        info.contains("epoch=0") && info.contains("points=200"),
        "an unauthenticated batch must apply nothing: {info}"
    );

    assert_eq!(
        roundtrip(&mut reader, &mut writer, "AUTH sekrit"),
        "OK authenticated"
    );
    assert_eq!(
        roundtrip(&mut reader, &mut writer, "BATCH 1\nINSERT 1 2 3 4 5 6"),
        "OK applied=1 failed=0 epoch=1 points=201"
    );

    handle.shutdown();
}

/// The batch path composes with the rest of the engine: snapshots taken
/// by concurrent readers stay self-consistent while batches land.
#[test]
fn concurrent_queries_see_consistent_snapshots_across_batches() {
    let data = blob(400, 8, 70);
    let extra = blob(64, 8, 71);
    let engine = Arc::new(engine_over(data));
    let q = extra.point(0).to_vec();

    std::thread::scope(|scope| {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader_stop = Arc::clone(&stop);
        let reader_engine = Arc::clone(&engine);
        let reader_q = q.clone();
        let reader = scope.spawn(move || {
            let mut served = 0u64;
            while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
                let r = reader_engine.query(&reader_q, 5);
                assert_eq!(r.neighbors.len(), 5);
                served += 1;
            }
            served
        });

        for round in 0..8 {
            let ops: Vec<MutOp> = (0..8)
                .map(|i| MutOp::Insert(extra.point(round * 8 + i).to_vec()))
                .collect();
            let report = engine.apply(&ops).expect("batch applies");
            assert_eq!(report.applied, 8);
            assert_eq!(report.epoch, round as u64 + 1);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let served = reader.join().expect("reader thread");
        assert!(served > 0, "the reader never got a query through");
    });
    assert_eq!(engine.epoch(), 8);
    assert_eq!(engine.info().points, 400 + 64);
}
