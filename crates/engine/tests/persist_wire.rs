//! Wire-level persistence: the `SAVE` verb, instant `ATTACH` of `.pmlsh`
//! snapshots, corrupt-snapshot hardening at the protocol boundary, and
//! the `INDEXINFO` state/progress fields.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_engine::{serve_router, Engine, EngineConfig, Router, ServerConfig};
use pm_lsh_metric::Dataset;
use pm_lsh_persist::crc32;
use pm_lsh_stats::Rng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pmlsh-{tag}-{}-{}.pmlsh",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn exchange(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }
}

fn query_line(q: &[f32], k: usize) -> String {
    let mut line = format!("QUERY {k}");
    for v in q {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    line
}

/// SAVE a served index over the wire, ATTACH the snapshot under a new
/// name, and demand bit-identical answers from both — the tier-1 gate of
/// the persistence feature, exercised end to end through TCP.
#[test]
fn save_then_attach_answers_bit_identically() {
    let data = blob(800, 24, 71);
    let queries: Vec<Vec<f32>> = (0..12).map(|i| data.point(i).to_vec()).collect();
    let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let router = Router::with_engine("main", engine).unwrap();
    let config = ServerConfig {
        auth_token: Some("snap-token".to_string()),
        ..Default::default()
    };
    let handle = serve_router(router, ("127.0.0.1", 0), config).expect("bind");
    let mut client = Client::connect(handle.addr());
    let path = temp_path("wire-save");

    // SAVE writes server-side files, so it is auth-gated like the other
    // mutating verbs.
    assert_eq!(
        client.exchange(&format!("SAVE {}", path.display())),
        "ERR authentication required (AUTH <token>)"
    );
    assert_eq!(client.exchange("AUTH snap-token"), "OK authenticated");

    let reply = client.exchange(&format!("SAVE {}", path.display()));
    assert!(
        reply.starts_with("OK saved main points=800 bytes="),
        "unexpected SAVE reply: {reply}"
    );
    let bytes_on_disk = std::fs::metadata(&path).expect("snapshot written").len();
    assert!(
        reply.contains(&format!("bytes={bytes_on_disk}")),
        "reported size must match the file: {reply} vs {bytes_on_disk}"
    );

    // ATTACH auto-detects the snapshot by magic and serves it without a
    // rebuild.
    let reply = client.exchange(&format!("ATTACH restored {}", path.display()));
    assert!(
        reply.starts_with("OK attached restored points=800 dim=24"),
        "unexpected ATTACH reply: {reply}"
    );

    // Bit-identical answers from the restored index, through the same
    // protocol: Rust's float Display is shortest-round-trip, so equal
    // reply strings mean equal f32 distances.
    let mut main_replies = Vec::new();
    assert_eq!(client.exchange("USE main"), "OK using main");
    for q in &queries {
        main_replies.push(client.exchange(&query_line(q, 10)));
    }
    assert_eq!(client.exchange("USE restored"), "OK using restored");
    for (qi, q) in queries.iter().enumerate() {
        let restored_reply = client.exchange(&query_line(q, 10));
        assert_eq!(
            restored_reply, main_replies[qi],
            "restored index diverged on query {qi}"
        );
        assert!(restored_reply.starts_with("OK "), "{restored_reply}");
    }

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Every way a snapshot file can be corrupt must come back as a one-line
/// `ERR` — the connection (and the server) stay fully usable.
#[test]
fn corrupt_snapshot_attach_is_an_err_line_not_a_disconnect() {
    let data = blob(300, 12, 72);
    let index = PmLsh::build(data, PmLshParams::default());
    let good = pm_lsh_persist::serialize(&index);

    let engine = Engine::new(
        index,
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let router = Router::with_engine("main", engine).unwrap();
    let handle = serve_router(router, ("127.0.0.1", 0), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());

    // Truncated mid-section (magic intact, so the snapshot loader owns it).
    let truncated = &good[..good.len() / 2];
    // One flipped bit with the magic intact: the whole-file CRC catches it.
    let mut flipped = good.clone();
    flipped[good.len() / 3] ^= 0x40;
    // A future format version, checksums re-signed so only the version
    // gate can reject it.
    let mut future = good.clone();
    future[8..12].copy_from_slice(&999u32.to_le_bytes());
    let end = future.len() - 4;
    let crc = crc32(&future[..end]);
    future[end..].copy_from_slice(&crc.to_le_bytes());
    // Not a snapshot at all (no magic, and not valid fvecs/csv either).
    let garbage = b"definitely not a snapshot, nor a dataset".to_vec();

    let cases: [(&str, &[u8], &str); 4] = [
        ("truncated", truncated, "truncated"),
        ("bit-flipped", &flipped, "checksum"),
        ("future-version", &future, "version"),
        ("garbage", &garbage, ""),
    ];
    for (tag, bytes, expect) in cases {
        let path = temp_path(&format!("corrupt-{tag}"));
        std::fs::write(&path, bytes).unwrap();
        let reply = client.exchange(&format!("ATTACH bad {}", path.display()));
        assert!(reply.starts_with("ERR"), "{tag}: expected ERR, got {reply}");
        assert!(
            reply.contains(expect),
            "{tag}: reply should mention '{expect}': {reply}"
        );
        // The handler survived; nothing got attached.
        assert_eq!(client.exchange("PING"), "PONG", "{tag}");
        assert_eq!(client.exchange("LISTINDEXES"), "INDEXES main", "{tag}");
        let _ = std::fs::remove_file(&path);
    }

    handle.shutdown();
}

/// `INDEXINFO` reports `state=` and `pct=`: `building` with a coarse
/// percentage while a reindex runs, `serving pct=100` otherwise.
#[test]
fn indexinfo_reports_state_and_progress() {
    let engine = Engine::new(
        PmLsh::build(blob(400, 16, 73), PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );

    // Serving steady state, both in-process and over the wire.
    let info = engine.info();
    assert_eq!(info.state, "serving");
    assert_eq!(info.pct, 100);
    let router = Router::with_engine("main", engine.clone()).unwrap();
    let handle = serve_router(router, ("127.0.0.1", 0), ServerConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr());
    let line = client.exchange("INDEXINFO");
    assert!(
        line.ends_with("reindexing=false state=serving pct=100 shards=1"),
        "unexpected INDEXINFO: {line}"
    );

    // During a rebuild the state flips to building with pct < 100. The
    // build is fast, so observing it is a race we only assert on when won;
    // the terminal state after the swap is checked unconditionally.
    let ticket = engine
        .begin_reindex(
            blob(20_000, 16, 74),
            PmLshParams::default(),
            pm_lsh_core::BuildOptions::with_threads(1),
        )
        .expect("begin reindex");
    let mut observed_building = false;
    while !ticket.is_done() {
        let info = engine.info();
        if info.reindexing {
            assert_eq!(info.state, "building", "{info:?}");
            assert!(info.pct < 100, "{info:?}");
            observed_building = true;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    ticket.wait();
    assert!(
        observed_building,
        "a 20k-point single-threaded build finished before one poll"
    );
    let info = engine.info();
    assert_eq!(info.state, "serving");
    assert_eq!(info.pct, 100);
    let line = client.exchange("INDEXINFO");
    assert!(
        line.contains("points=20000") && line.ends_with("state=serving pct=100 shards=1"),
        "unexpected post-reindex INDEXINFO: {line}"
    );

    handle.shutdown();
}
