//! Live snapshot swap: queries issued while `Engine::reindex` runs must
//! all complete successfully against the old or the new snapshot — never
//! error, never block until the build finishes — and the TCP `REINDEX` /
//! `INDEXINFO` verbs must drive the same machinery end to end.

use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
use pm_lsh_engine::{
    serve, serve_router, Engine, EngineConfig, ReindexError, Router, ServerConfig,
};
use pm_lsh_metric::Dataset;
use pm_lsh_stats::Rng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

#[test]
fn queries_during_reindex_complete_against_old_or_new_snapshot() {
    let d = 16;
    let old_data = blob(1500, d, 100);
    let new_data = blob(2300, d, 101);
    let queries = blob(40, d, 102);
    let params = PmLshParams::default();

    let engine = Engine::new(
        PmLsh::build(old_data.clone(), params),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );
    assert_eq!(engine.epoch(), 0);

    // Hammer the engine from several threads for the whole duration of a
    // background reindex. Every query must return a full, well-formed
    // answer; a dropped reply channel (worker panic) or a half-built
    // snapshot would fail loudly here.
    let stop = AtomicBool::new(false);
    let completed = AtomicUsize::new(0);
    let max_len = old_data.len().max(new_data.len());
    let report = std::thread::scope(|scope| {
        for t in 0..3usize {
            let engine = engine.clone();
            let queries = &queries;
            let stop = &stop;
            let completed = &completed;
            scope.spawn(move || {
                let mut qi = t;
                while !stop.load(Ordering::Relaxed) {
                    let q = queries.point(qi % queries.len());
                    let res = engine.query(q, 5);
                    assert_eq!(res.neighbors.len(), 5, "short answer during reindex");
                    assert!(
                        res.neighbors.iter().all(|n| n.dist.is_finite()),
                        "non-finite distance during reindex"
                    );
                    // Ids must be valid for whichever snapshot answered.
                    assert!(
                        res.neighbors.iter().all(|n| (n.id as usize) < max_len),
                        "neighbor id out of range for both snapshots"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                    qi += 3;
                }
            });
        }

        let ticket = engine
            .begin_reindex(new_data.clone(), params, BuildOptions::with_threads(2))
            .expect("reindex must start");
        let report = ticket.wait();
        // Let the query threads observe the new snapshot for a few rounds.
        for q in queries.iter().take(5) {
            let _ = engine.query(q, 5);
        }
        stop.store(true, Ordering::Relaxed);
        report
    });

    assert_eq!(report.epoch, 1);
    assert_eq!(report.points, new_data.len());
    assert!(
        completed.load(Ordering::Relaxed) > 0,
        "no concurrent queries ran"
    );
    assert_eq!(engine.epoch(), 1);

    // After the swap the engine answers exactly like a fresh build over
    // the new dataset.
    let fresh = PmLsh::build_with_opts(new_data.clone(), params, BuildOptions::with_threads(2));
    for q in queries.iter().take(10) {
        assert_eq!(engine.query(q, 5).neighbors, fresh.query(q, 5).neighbors);
    }

    let info = engine.info();
    assert_eq!(info.points, new_data.len());
    assert_eq!(info.epoch, 1);
    assert!(!info.reindexing);
}

#[test]
fn reindex_rejects_bad_datasets_and_serializes_rebuilds() {
    let d = 8;
    let engine = Engine::new(
        PmLsh::build(blob(300, d, 200), PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );

    let wrong_dim = blob(100, d + 1, 201);
    assert_eq!(
        engine
            .begin_reindex(wrong_dim, PmLshParams::default(), BuildOptions::default())
            .err(),
        Some(ReindexError::DimensionMismatch {
            served: d,
            offered: d + 1
        })
    );

    let empty = Dataset::with_capacity(d, 0);
    assert_eq!(
        engine
            .begin_reindex(empty, PmLshParams::default(), BuildOptions::default())
            .err(),
        Some(ReindexError::EmptyDataset)
    );

    // A poisoned dataset file (NaN component) must be a typed error, not a
    // panic on the background build thread.
    let mut poisoned = blob(100, d, 210);
    poisoned.point_mut(42)[3] = f32::NAN;
    assert_eq!(
        engine
            .begin_reindex(poisoned, PmLshParams::default(), BuildOptions::default())
            .err(),
        Some(ReindexError::NonFiniteData)
    );

    // Two sequential reindexes both land, bumping the epoch each time.
    for expected_epoch in 1..=2u64 {
        let report = engine
            .reindex(
                blob(400, d, 202 + expected_epoch),
                PmLshParams::default(),
                BuildOptions::default(),
            )
            .expect("sequential reindex");
        assert_eq!(report.epoch, expected_epoch);
    }
    assert_eq!(engine.epoch(), 2);
}

#[test]
fn tcp_reindex_and_indexinfo_roundtrip() {
    let d = 12;
    let old_data = blob(500, d, 300);
    let new_data = blob(800, d, 301);
    let params = PmLshParams::default();

    // The REINDEX verb loads a server-side file; write the new dataset to
    // a unique temp path the server process (us) can read.
    let path = std::env::temp_dir().join(format!(
        "pmlsh-reindex-test-{}-{}.fvecs",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    pm_lsh_data::write_fvecs(&path, &new_data).expect("write temp fvecs");

    let engine = Engine::new(PmLsh::build(old_data, params), EngineConfig::default());
    let handle = serve(engine.clone(), ("127.0.0.1", 0)).expect("bind");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut exchange = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };

    let info = exchange("INDEXINFO\n");
    assert!(
        info.starts_with("INDEXINFO name=default points=500") && info.contains("epoch=0"),
        "unexpected pre-reindex info: {info}"
    );

    let reply = exchange(&format!("REINDEX {}\n", path.display()));
    assert!(
        reply.starts_with("OK index=default epoch=1 points=800"),
        "unexpected REINDEX reply: {reply}"
    );

    let info = exchange("INDEXINFO\n");
    assert!(
        info.starts_with("INDEXINFO name=default points=800") && info.contains("epoch=1"),
        "unexpected post-reindex info: {info}"
    );

    // Errors come back as ERR lines and leave the connection usable.
    let reply = exchange("REINDEX /nonexistent/nope.fvecs\n");
    assert!(reply.starts_with("ERR"), "missing file must ERR: {reply}");
    assert_eq!(exchange("PING\n"), "PONG");

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// With `ServerConfig::auth_token` set, every mutating verb (`REINDEX`,
/// `ATTACH`, `DETACH`) answers `ERR authentication required` until the
/// connection presents the right `AUTH <token>`; read-only verbs stay
/// open throughout.
#[test]
fn auth_gates_mutating_verbs() {
    let d = 10;
    let old_data = blob(400, d, 400);
    let new_data = blob(600, d, 401);
    let path = std::env::temp_dir().join(format!(
        "pmlsh-auth-test-{}-{}.fvecs",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    pm_lsh_data::write_fvecs(&path, &new_data).expect("write temp fvecs");

    let engine = Engine::new(
        PmLsh::build(old_data, PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let router = Router::with_engine("main", engine).unwrap();
    let config = ServerConfig {
        auth_token: Some("sekrit-token".to_string()),
        ..Default::default()
    };
    let handle = serve_router(router, ("127.0.0.1", 0), config).expect("bind");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut exchange = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };

    // Read-only verbs never need auth.
    assert_eq!(exchange("PING"), "PONG");
    assert!(exchange("INDEXINFO").starts_with("INDEXINFO name=main points=400"));

    // Mutating verbs are locked until AUTH.
    let denied = "ERR authentication required (AUTH <token>)";
    assert_eq!(exchange(&format!("REINDEX {}", path.display())), denied);
    assert_eq!(
        exchange(&format!("ATTACH other {}", path.display())),
        denied
    );
    assert_eq!(exchange("DETACH main"), denied);

    // A wrong token does not unlock (and the connection stays usable).
    assert_eq!(exchange("AUTH wrong-token"), "ERR bad token");
    assert_eq!(exchange(&format!("REINDEX {}", path.display())), denied);

    // The right token unlocks this connection.
    assert_eq!(exchange("AUTH sekrit-token"), "OK authenticated");
    let reply = exchange(&format!("REINDEX {}", path.display()));
    assert!(
        reply.starts_with("OK index=main epoch=1 points=600"),
        "authenticated REINDEX failed: {reply}"
    );
    assert!(exchange(&format!("ATTACH other {}", path.display()))
        .starts_with("OK attached other points=600"));
    assert_eq!(exchange("DETACH other"), "OK detached other");

    // Auth is per-connection: a fresh connection starts locked again.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut fresh = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };
    assert_eq!(fresh("DETACH main"), denied);

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}
