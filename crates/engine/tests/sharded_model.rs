//! Model-based mutation testing for the sharded engine: a
//! [`ShardedEngine`] at `S ∈ {1, 2, 4}` runs a long random interleaving
//! of inserts, deletes and queries in lock-step with a monolithic twin
//! and a naive id→vector model, asserting after every step that the two
//! engines report identical mutation ids, live counts and (offset-
//! corrected) epochs — the global-id bijection of `pm_lsh_core::shard`
//! made observable. Checkpoints audit the live-id sets three ways
//! (monolith vs shards vs model), run the PM-tree structural invariants
//! on every shard, and demand bit-identical exhaustive-k answers. A
//! reindex leg rebuilds both engines over the materialized live set and
//! proves the id sequence starts over identically, then keeps churning.
//! A batched leg drives the amortized `apply` path through the same
//! lock-step discipline: random mixed batches (with in-batch dependent
//! deletes, ghost ids and wrong-dimensionality inserts) go to a
//! monolithic and a sharded engine as single `apply` calls while a
//! single-op oracle replays them one `insert`/`delete` at a time —
//! per-op outcomes must agree three ways, and the batch path must
//! publish once per batch instead of once per op.

use pm_lsh_core::shard::{owner, to_global, to_local};
use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
use pm_lsh_engine::{serve, Engine, EngineConfig, MutationError, ShardedEngine};
use pm_lsh_metric::{Dataset, PointId};
use pm_lsh_stats::Rng;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn config() -> EngineConfig {
    EngineConfig {
        threads: 2,
        ..Default::default()
    }
}

/// The full-state audit run at checkpoints: live-id sets equal three
/// ways, structural invariants on every shard's tree, and a bit-identical
/// exhaustive-k answer from both engines.
fn checkpoint(
    mono: &Engine,
    sharded: &ShardedEngine,
    model: &BTreeMap<PointId, Vec<f32>>,
    rng: &mut Rng,
    tag: &str,
) {
    let shards = sharded.shard_count();
    let model_ids: BTreeSet<PointId> = model.keys().copied().collect();
    let mono_ids: BTreeSet<PointId> = mono.index().live_ids().iter().copied().collect();
    assert_eq!(mono_ids, model_ids, "{tag}: monolithic live-id set drifted");

    let mut sharded_ids = BTreeSet::new();
    for (s, shard) in sharded.shards().iter().enumerate() {
        let snap = shard.index();
        snap.tree()
            .verify_invariants()
            .unwrap_or_else(|e| panic!("{tag}: shard {s} invariant violated: {e}"));
        for &local in snap.live_ids() {
            let global = to_global(local, s, shards);
            assert!(
                sharded_ids.insert(global),
                "{tag}: global id {global} appears in two shards"
            );
        }
    }
    assert_eq!(sharded_ids, model_ids, "{tag}: sharded live-id set drifted");

    // Exhaustive k: every shard verifies all of its points, so the merged
    // answer is the exact (dist, id) ranking — identical to the monolith
    // ranking the same vectors under the same ids.
    let dim = sharded.dim();
    let mut q = vec![0.0f32; dim];
    rng.fill_normal(&mut q);
    let k = model.len();
    assert_eq!(
        sharded.query(&q, k).neighbors,
        mono.query(&q, k).neighbors,
        "{tag}: exhaustive-k answers diverged"
    );
}

/// ~160 random interleaved operations per shard count, every one
/// asserted in lock-step, plus the reindex leg.
#[test]
fn interleaved_mutations_stay_in_lockstep_with_a_monolithic_twin() {
    let dim = 12;
    let n0 = 96;
    for shards in [1usize, 2, 4] {
        let data = blob(n0, dim, 0xA11CE + shards as u64);
        let params = PmLshParams::default();
        let mono = Engine::new(PmLsh::build(data.clone(), params), config());
        let sharded =
            ShardedEngine::build(&data, params, BuildOptions::default(), shards, config());
        let mut model: BTreeMap<PointId, Vec<f32>> = data
            .iter()
            .enumerate()
            .map(|(i, p)| (i as PointId, p.to_vec()))
            .collect();
        let mut rng = Rng::new(7 + shards as u64);
        let mut buf = vec![0.0f32; dim];
        // The sharded epoch is the *sum* of shard epochs: +1 per mutation
        // like the monolith, but +S per reindex — the offset tracks the
        // divergence the reindex leg introduces.
        let mut epoch_offset = 0u64;

        let step = |mono: &Engine,
                    sharded: &ShardedEngine,
                    model: &mut BTreeMap<PointId, Vec<f32>>,
                    rng: &mut Rng,
                    buf: &mut Vec<f32>,
                    epoch_offset: u64,
                    op: usize| {
            let roll = rng.below(10);
            // Keep every shard comfortably populated so WouldEmptyIndex
            // stays out of reach of the random walk.
            if roll < 4 || model.len() <= 6 * shards {
                rng.fill_normal(buf);
                let a = mono.insert(buf).expect("monolithic insert");
                let b = sharded.insert(buf).expect("sharded insert");
                assert_eq!(
                    (a.id, a.points),
                    (b.id, b.points),
                    "S={shards} op {op}: insert reports diverged"
                );
                assert_eq!(
                    a.epoch + epoch_offset,
                    b.epoch,
                    "S={shards} op {op}: insert epochs diverged"
                );
                let s = owner(b.id, shards);
                assert!(
                    sharded.shards()[s].index().contains(to_local(b.id, shards)),
                    "S={shards} op {op}: id {} not found on its owning shard {s}",
                    b.id
                );
                model.insert(b.id, buf.clone());
            } else if roll < 8 {
                let ids: Vec<PointId> = model.keys().copied().collect();
                let victim = ids[rng.below(ids.len())];
                let a = mono.delete(victim).expect("monolithic delete");
                let b = sharded.delete(victim).expect("sharded delete");
                assert_eq!(
                    (a.id, a.points),
                    (b.id, b.points),
                    "S={shards} op {op}: delete reports diverged"
                );
                assert_eq!(
                    a.epoch + epoch_offset,
                    b.epoch,
                    "S={shards} op {op}: delete epochs diverged"
                );
                assert!(
                    !sharded.shards()[owner(victim, shards)]
                        .index()
                        .contains(to_local(victim, shards)),
                    "S={shards} op {op}: id {victim} still live on its shard"
                );
                model.remove(&victim);
            } else if roll == 8 {
                // A ghost id: both engines must reject it with the same
                // *global* id in the error (the shard speaks local ids;
                // the sharded engine must translate back).
                let ghost = 1_000_000 + op as PointId;
                for (which, outcome) in [
                    ("monolithic", mono.delete(ghost)),
                    ("sharded", sharded.delete(ghost)),
                ] {
                    assert!(
                        matches!(outcome, Err(MutationError::UnknownId(g)) if g == ghost),
                        "S={shards} op {op}: {which} ghost delete not UnknownId({ghost})"
                    );
                }
            } else {
                checkpoint(mono, sharded, model, rng, &format!("S={shards} op {op}"));
            }
        };

        for op in 0..120 {
            step(
                &mono,
                &sharded,
                &mut model,
                &mut rng,
                &mut buf,
                epoch_offset,
                op,
            );
        }
        checkpoint(
            &mono,
            &sharded,
            &model,
            &mut rng,
            &format!("S={shards} pre-reindex"),
        );

        // Reindex leg: materialize the live set (ascending id order) and
        // rebuild both engines over it. Ids restart at 0..n-1 on both
        // sides — same vectors under the same ids — so parity continues.
        let mut fresh = Dataset::with_capacity(dim, model.len());
        for v in model.values() {
            fresh.push(v);
        }
        let ra = mono
            .reindex(fresh.clone(), params, BuildOptions::default())
            .expect("monolithic reindex");
        let rb = sharded
            .reindex(fresh.clone(), params, BuildOptions::default())
            .expect("sharded reindex");
        assert_eq!(
            ra.points, rb.points,
            "S={shards}: reindex point counts diverged"
        );
        model = fresh
            .iter()
            .enumerate()
            .map(|(i, p)| (i as PointId, p.to_vec()))
            .collect();
        // A reindex bumps every shard's epoch: re-measure the offset once
        // instead of modeling S-1 here, so the assertion stays meaningful
        // even if epoch bookkeeping changes.
        epoch_offset = sharded.epoch() - mono.epoch();
        checkpoint(
            &mono,
            &sharded,
            &model,
            &mut rng,
            &format!("S={shards} post-reindex"),
        );

        for op in 120..160 {
            step(
                &mono,
                &sharded,
                &mut model,
                &mut rng,
                &mut buf,
                epoch_offset,
                op,
            );
        }
        checkpoint(
            &mono,
            &sharded,
            &model,
            &mut rng,
            &format!("S={shards} final"),
        );
    }
}

/// The amortized batch path under the same lock-step discipline as the
/// single-op walk: random batches of 1..=12 mixed ops — including
/// in-batch dependent deletes (a second delete of the same id must fail
/// as `UnknownId` *inside* the batch), ghost ids and wrong-dimensionality
/// inserts — are applied as one `apply` call to a monolithic engine and
/// a sharded engine, then replayed one `insert`/`delete` at a time on a
/// single-op oracle. Per-op outcomes (assigned ids and errors) must
/// agree three ways after every batch; checkpoints audit live-id sets,
/// tree invariants and exhaustive-k answers; and the batch path must
/// publish once per non-empty batch where the oracle publishes once per
/// applied op.
#[test]
fn batched_mutations_stay_in_lockstep_with_single_op_oracles() {
    let dim = 10;
    let n0 = 80;
    for shards in [1usize, 2, 4] {
        let data = blob(n0, dim, 0xBA7C + shards as u64);
        let params = PmLshParams::default();
        let mono = Engine::new(PmLsh::build(data.clone(), params), config());
        let sharded =
            ShardedEngine::build(&data, params, BuildOptions::default(), shards, config());
        let oracle = Engine::new(PmLsh::build(data.clone(), params), config());
        let mut model: BTreeMap<PointId, Vec<f32>> = data
            .iter()
            .enumerate()
            .map(|(i, p)| (i as PointId, p.to_vec()))
            .collect();
        let mut rng = Rng::new(0xFACE + shards as u64);
        let mut buf = vec![0.0f32; dim];
        let mut published = 0u64;
        let mut applied_total = 0u64;

        for round in 0..12 {
            let width = 1 + rng.below(12);
            let live: Vec<PointId> = model.keys().copied().collect();
            let mut ops: Vec<pm_lsh_engine::MutOp> = Vec::with_capacity(width);
            for j in 0..width {
                let roll = rng.below(10);
                // Deletes stay rare enough that no shard can drain: a
                // batch removes at most `width` points from a live set
                // kept well above `6 * shards + width`.
                if roll < 5 || live.len() <= 6 * shards + width {
                    rng.fill_normal(&mut buf);
                    ops.push(pm_lsh_engine::MutOp::Insert(buf.clone()));
                } else if roll < 8 {
                    // May pick the same victim twice in one batch — the
                    // second delete must fail UnknownId mid-batch, on
                    // every path.
                    let victim = live[rng.below(live.len())];
                    ops.push(pm_lsh_engine::MutOp::Delete(victim));
                } else if roll == 8 {
                    let ghost = 1_000_000 + (round * 16 + j) as PointId;
                    ops.push(pm_lsh_engine::MutOp::Delete(ghost));
                } else {
                    ops.push(pm_lsh_engine::MutOp::Insert(vec![0.25; dim + 1]));
                }
            }

            let mono_report = mono.apply(&ops).expect("monolithic batch");
            let sharded_report = sharded.apply(&ops).expect("sharded batch");
            assert_eq!(
                mono_report.results, sharded_report.results,
                "S={shards} round {round}: batched per-op outcomes diverged"
            );
            assert_eq!(
                mono_report.points, sharded_report.points,
                "S={shards} round {round}: batched point counts diverged"
            );

            // Replay one op at a time on the oracle; every outcome —
            // assigned id or exact error — must match the batch's.
            for (i, op) in ops.iter().enumerate() {
                let outcome = match op {
                    pm_lsh_engine::MutOp::Insert(p) => oracle.insert(p).map(|r| r.id),
                    pm_lsh_engine::MutOp::Delete(id) => oracle.delete(*id).map(|r| r.id),
                };
                assert_eq!(
                    outcome, mono_report.results[i],
                    "S={shards} round {round} op {i}: single-op oracle disagreed"
                );
                match (&mono_report.results[i], op) {
                    (Ok(id), pm_lsh_engine::MutOp::Insert(p)) => {
                        model.insert(*id, p.clone());
                    }
                    (Ok(id), pm_lsh_engine::MutOp::Delete(_)) => {
                        model.remove(id);
                    }
                    (Err(_), _) => {}
                }
            }
            if mono_report.applied > 0 {
                published += 1;
            }
            assert_eq!(
                mono.epoch(),
                published,
                "S={shards} round {round}: a batch must publish exactly once"
            );
            applied_total += mono_report.applied as u64;
            assert_eq!(
                oracle.epoch(),
                applied_total,
                "S={shards} round {round}: the oracle publishes once per applied op"
            );

            if round % 3 == 2 {
                checkpoint(
                    &mono,
                    &sharded,
                    &model,
                    &mut rng,
                    &format!("S={shards} round {round}"),
                );
            }
        }
        checkpoint(
            &mono,
            &sharded,
            &model,
            &mut rng,
            &format!("S={shards} batched final"),
        );
        assert!(
            oracle.epoch() > mono.epoch(),
            "S={shards}: the single-op oracle must pay more publications than the batch path"
        );
    }
}

/// One request/reply exchange over an open wire connection.
fn exchange(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

fn parse_inserted_id(reply: &str) -> PointId {
    let field = reply
        .split_whitespace()
        .find_map(|f| f.strip_prefix("id="))
        .unwrap_or_else(|| panic!("no id= field in INSERT reply: {reply}"));
    field.parse().expect("id= field must be numeric")
}

/// Cross-checks one wire mutation against the in-process view: the
/// global id's liveness on its owning shard (`id mod S`, under
/// `to_local`) matches what the wire claimed, and every shard's tree
/// invariants hold.
fn audit(sharded: &ShardedEngine, id: PointId, expect_live: bool, context: &str) {
    let shards = sharded.shard_count();
    let s = owner(id, shards);
    for (other, shard) in sharded.shards().iter().enumerate() {
        let snap = shard.index();
        snap.tree()
            .verify_invariants()
            .unwrap_or_else(|e| panic!("{context}: shard {other} invariant violated: {e}"));
        if other == s {
            assert_eq!(
                snap.contains(to_local(id, shards)),
                expect_live,
                "{context}: id {id} liveness on owning shard {s} contradicts the wire"
            );
        }
        // A foreign shard holding the same *local* row is a different
        // global id (to_global differs); nothing to assert there beyond
        // the invariants.
    }
}

/// A random `INSERT`/`DELETE` walk over an open wire connection,
/// auditing shard routing, id uniqueness and invariants after every
/// verb.
#[allow(clippy::too_many_arguments)]
fn wire_walk(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    sharded: &ShardedEngine,
    rng: &mut Rng,
    live: &mut BTreeSet<PointId>,
    dim: usize,
    ops: usize,
    tag: &str,
) {
    let mut buf = vec![0.0f32; dim];
    for op in 0..ops {
        if rng.below(10) < 6 {
            rng.fill_normal(&mut buf);
            let mut line = "INSERT".to_string();
            for v in &buf {
                line.push(' ');
                line.push_str(&v.to_string());
            }
            let reply = exchange(reader, writer, &line);
            assert!(reply.starts_with("OK id="), "{tag} op {op}: {reply}");
            let id = parse_inserted_id(&reply);
            assert!(
                live.insert(id),
                "{tag} op {op}: server reissued live global id {id}"
            );
            audit(sharded, id, true, &format!("{tag} op {op} after INSERT"));
        } else {
            let ids: Vec<PointId> = live.iter().copied().collect();
            let victim = ids[rng.below(ids.len())];
            let reply = exchange(reader, writer, &format!("DELETE {victim}"));
            assert!(
                reply.starts_with(&format!("OK deleted {victim} ")),
                "{tag} op {op}: {reply}"
            );
            live.remove(&victim);
            audit(
                sharded,
                victim,
                false,
                &format!("{tag} op {op} after DELETE"),
            );
        }
    }
}

/// Satellite property: mutations arriving over TCP land on the owning
/// shard. A served `S = 3` engine takes a random `INSERT`/`DELETE` walk
/// over the wire; after every verb the test cross-checks the server's
/// reply against the in-process view — the reported global id lives on
/// (exactly) shard `id mod S` under `to_local(id)`, global ids never
/// repeat while live, and every shard's tree invariants hold. An
/// in-process reindex then restarts the id sequence, and the wire keeps
/// mutating against the fresh ids.
#[test]
fn wire_mutations_land_on_the_owning_shard() {
    let dim = 8;
    let shards = 3;
    let data = blob(60, dim, 0xBEEF);
    let sharded = ShardedEngine::build(
        &data,
        PmLshParams::default(),
        BuildOptions::default(),
        shards,
        config(),
    );
    let handle = serve(sharded.clone(), ("127.0.0.1", 0)).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let mut rng = Rng::new(0xD1CE);
    let mut live: BTreeSet<PointId> = (0..60).collect();
    wire_walk(
        &mut reader,
        &mut writer,
        &sharded,
        &mut rng,
        &mut live,
        dim,
        60,
        "pre-reindex",
    );

    // Reindex the served engine in-process (the server clones share the
    // shards): ids restart at 0..n-1, and the wire walk continues against
    // the fresh sequence.
    let mut fresh = Dataset::with_capacity(dim, live.len());
    let mut scratch = vec![0.0f32; dim];
    for _ in 0..live.len() {
        rng.fill_normal(&mut scratch);
        fresh.push(&scratch);
    }
    let n = fresh.len();
    sharded
        .reindex(fresh, PmLshParams::default(), BuildOptions::default())
        .expect("reindex under the server");
    live = (0..n as PointId).collect();
    for &id in &live {
        audit(&sharded, id, true, "post-reindex");
    }

    // The next insert continues the monolithic id sequence: id == n.
    rng.fill_normal(&mut scratch);
    let mut line = "INSERT".to_string();
    for v in &scratch {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    let reply = exchange(&mut reader, &mut writer, &line);
    let id = parse_inserted_id(&reply);
    assert_eq!(
        id, n as PointId,
        "post-reindex id sequence must restart exactly where a monolith's would"
    );
    live.insert(id);
    audit(&sharded, id, true, "post-reindex first INSERT");
    wire_walk(
        &mut reader,
        &mut writer,
        &sharded,
        &mut rng,
        &mut live,
        dim,
        40,
        "post-reindex",
    );

    assert_eq!(exchange(&mut reader, &mut writer, "QUIT"), "BYE");
    handle.shutdown();
}
