//! Loopback tests of the binary wire mode: `HELLO binary` negotiation,
//! bit-exact text-vs-binary parity, and a hostile-frame gauntlet proving
//! that no malformed, truncated, oversized or mid-frame-disconnected
//! input can panic the reactor or wedge other connections.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_engine::frame;
use pm_lsh_engine::server::parse_ok_response;
use pm_lsh_engine::{serve, Engine, EngineConfig, ServerHandle};
use pm_lsh_metric::Dataset;
use pm_lsh_stats::Rng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn serve_blob(n: usize, d: usize, seed: u64) -> ServerHandle {
    let engine = Engine::new(
        PmLsh::build(blob(n, d, seed), PmLshParams::default()),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );
    serve(engine, ("127.0.0.1", 0)).expect("bind port 0")
}

/// A loopback client already switched to binary mode.
struct BinClient {
    stream: TcpStream,
}

impl BinClient {
    fn connect(handle: &ServerHandle) -> Self {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(b"HELLO binary\n").unwrap();
        let mut ack = Vec::new();
        // The ack is the last text line; read byte-wise so no frame bytes
        // are swallowed by a buffered reader.
        loop {
            let mut b = [0u8; 1];
            stream.read_exact(&mut b).expect("HELLO ack byte");
            if b[0] == b'\n' {
                break;
            }
            ack.push(b[0]);
        }
        assert_eq!(ack, b"OK binary");
        Self { stream }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
    }

    /// Reads one reply frame; `None` on a clean close.
    fn read_reply(&mut self) -> Option<frame::Reply> {
        let mut prefix = [0u8; 4];
        match self.stream.read_exact(&mut prefix) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return None,
            Err(e) => panic!("reading frame length: {e}"),
        }
        let len = u32::from_le_bytes(prefix) as usize;
        assert!(len <= 1 << 20, "implausible reply frame length {len}");
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload).expect("frame payload");
        Some(frame::decode_reply(&payload).expect("well-formed reply frame"))
    }

    fn query(&mut self, k: u32, q: &[f32]) -> Option<frame::Reply> {
        let mut framed = Vec::new();
        frame::encode_query(k, q, &mut framed);
        self.send_raw(&framed);
        self.read_reply()
    }

    /// `true` when the server closed the connection (EOF on read).
    fn at_eof(&mut self) -> bool {
        let mut b = [0u8; 1];
        matches!(self.stream.read(&mut b), Ok(0))
    }
}

#[test]
fn hello_negotiation_and_ping() {
    let handle = serve_blob(200, 8, 100);

    // Text HELLO variants first, on a text connection.
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };
    assert_eq!(roundtrip("HELLO"), "OK text");
    assert_eq!(roundtrip("HELLO text"), "OK text");
    assert_eq!(
        roundtrip("HELLO gopher"),
        "ERR HELLO supports: text, binary"
    );
    // Still text after the failed negotiation.
    assert_eq!(roundtrip("PING"), "PONG");

    // Binary PING over a negotiated connection.
    let mut bin = BinClient::connect(&handle);
    let mut framed = Vec::new();
    frame::encode_ping(&mut framed);
    bin.send_raw(&framed);
    assert_eq!(bin.read_reply(), Some(frame::Reply::Pong));

    handle.shutdown();
}

/// The tentpole parity claim: for the same queries, binary OK frames
/// carry bit-for-bit the ids and distances of the text replies.
#[test]
fn binary_and_text_replies_are_bit_identical() {
    let d = 24;
    let handle = serve_blob(600, d, 101);
    let queries: Vec<Vec<f32>> = {
        let ds = blob(16, d, 102);
        (0..ds.len()).map(|i| ds.point(i).to_vec()).collect()
    };

    // Text answers.
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut text_answers: Vec<Vec<(u32, f32)>> = Vec::new();
    for q in &queries {
        let mut line = String::from("QUERY 5");
        for v in q {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        line.push('\n');
        writer.write_all(line.as_bytes()).unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        text_answers.push(parse_ok_response(response.trim()).expect("OK reply"));
    }

    // Binary answers for the same queries.
    let mut bin = BinClient::connect(&handle);
    for (qi, q) in queries.iter().enumerate() {
        match bin.query(5, q).expect("reply frame") {
            frame::Reply::Ok(pairs) => {
                let text = &text_answers[qi];
                assert_eq!(pairs.len(), text.len(), "query {qi}: result count");
                for (b, t) in pairs.iter().zip(text) {
                    assert_eq!(b.0, u64::from(t.0), "query {qi}: id");
                    // Text floats survive the round-trip exactly (Rust's
                    // float formatting is shortest-roundtrip), so parity
                    // here is bit-parity, not almost-equality.
                    assert_eq!(
                        b.1.to_bits(),
                        t.1.to_bits(),
                        "query {qi}: distance bits diverged"
                    );
                }
            }
            other => panic!("query {qi}: unexpected reply {other:?}"),
        }
    }

    handle.shutdown();
}

/// Semantically bad but well-framed queries get an ERR frame and the
/// connection lives on, mirroring the text protocol's behavior.
#[test]
fn well_framed_bad_queries_err_without_closing() {
    let d = 8;
    let handle = serve_blob(200, d, 103);
    let mut bin = BinClient::connect(&handle);

    // NaN component.
    let mut q = vec![0.5f32; d];
    q[3] = f32::NAN;
    match bin.query(3, &q).expect("reply") {
        frame::Reply::Err(msg) => assert_eq!(msg, "query contains a non-finite component"),
        other => panic!("unexpected reply {other:?}"),
    }
    // Dimension mismatch.
    match bin.query(3, &[1.0, 2.0]).expect("reply") {
        frame::Reply::Err(msg) => {
            assert_eq!(msg, "query has 2 components, index dimensionality is 8");
        }
        other => panic!("unexpected reply {other:?}"),
    }
    // k = 0.
    match bin.query(0, &vec![0.5f32; d]).expect("reply") {
        frame::Reply::Err(msg) => assert_eq!(msg, "QUERY needs a positive integer k"),
        other => panic!("unexpected reply {other:?}"),
    }

    // The connection survived all three and still answers.
    match bin.query(3, &vec![0.5f32; d]).expect("reply") {
        frame::Reply::Ok(pairs) => assert_eq!(pairs.len(), 3),
        other => panic!("unexpected reply {other:?}"),
    }

    handle.shutdown();
}

/// The hostile-frame gauntlet: every malformed input either earns an ERR
/// frame followed by a close, or a clean close — never a panic, never a
/// wedged reactor. A fresh connection proves the server outlived each
/// round.
#[test]
fn hostile_frames_never_wedge_the_server() {
    let d = 8;
    let handle = serve_blob(200, d, 104);
    let good = vec![0.5f32; d];

    // Round 1: oversized length prefix (0xFFFFFFFF) → ERR + close.
    {
        let mut bin = BinClient::connect(&handle);
        bin.send_raw(&0xFFFF_FFFFu32.to_le_bytes());
        match bin.read_reply() {
            Some(frame::Reply::Err(msg)) => assert_eq!(msg, "frame exceeds protocol maximum"),
            other => panic!("oversized frame: unexpected {other:?}"),
        }
        assert!(
            bin.at_eof(),
            "connection must close after an oversized frame"
        );
    }

    // Round 2: zero-length frame → ERR (empty frame) + close.
    {
        let mut bin = BinClient::connect(&handle);
        bin.send_raw(&0u32.to_le_bytes());
        match bin.read_reply() {
            Some(frame::Reply::Err(msg)) => assert_eq!(msg, "empty frame"),
            other => panic!("empty frame: unexpected {other:?}"),
        }
        assert!(bin.at_eof());
    }

    // Round 3: unknown opcode → ERR + close.
    {
        let mut bin = BinClient::connect(&handle);
        bin.send_raw(&1u32.to_le_bytes());
        bin.send_raw(&[0x7F]);
        match bin.read_reply() {
            Some(frame::Reply::Err(msg)) => assert_eq!(msg, "unknown opcode 127"),
            other => panic!("unknown opcode: unexpected {other:?}"),
        }
        assert!(bin.at_eof());
    }

    // Round 4: QUERY whose d disagrees with the byte count → ERR + close.
    {
        let mut bin = BinClient::connect(&handle);
        let mut payload = vec![frame::OP_QUERY];
        payload.extend_from_slice(&3u32.to_le_bytes()); // k
        payload.extend_from_slice(&100u32.to_le_bytes()); // d: promises 100
        payload.extend_from_slice(&1.0f32.to_le_bytes()); // delivers 1
        bin.send_raw(&(payload.len() as u32).to_le_bytes());
        bin.send_raw(&payload);
        match bin.read_reply() {
            Some(frame::Reply::Err(msg)) => {
                assert!(msg.contains("disagree"), "got: {msg}");
            }
            other => panic!("d mismatch: unexpected {other:?}"),
        }
        assert!(bin.at_eof());
    }

    // Round 5: truncated frame then disconnect → clean close, no reply.
    {
        let mut bin = BinClient::connect(&handle);
        let mut framed = Vec::new();
        frame::encode_query(3, &good, &mut framed);
        bin.send_raw(&framed[..framed.len() / 2]);
        drop(bin); // mid-frame disconnect
    }

    // Round 6: only half a length prefix then disconnect.
    {
        let mut bin = BinClient::connect(&handle);
        bin.send_raw(&[0x10, 0x00]);
        drop(bin);
    }

    // Round 7: a PING with a body → ERR + close.
    {
        let mut bin = BinClient::connect(&handle);
        bin.send_raw(&2u32.to_le_bytes());
        bin.send_raw(&[frame::OP_PING, 0xAA]);
        match bin.read_reply() {
            Some(frame::Reply::Err(msg)) => assert!(msg.contains("malformed"), "got: {msg}"),
            other => panic!("PING body: unexpected {other:?}"),
        }
        assert!(bin.at_eof());
    }

    // After the whole gauntlet the server still serves fresh connections
    // in both framings.
    let mut bin = BinClient::connect(&handle);
    match bin.query(3, &good).expect("reply") {
        frame::Reply::Ok(pairs) => assert_eq!(pairs.len(), 3),
        other => panic!("post-gauntlet query: unexpected {other:?}"),
    }
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"PING\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "PONG");

    let report = handle.shutdown();
    assert!(
        report.drained,
        "gauntlet left connections wedged: {report:?}"
    );
}

/// Pipelined binary queries on one connection come back in order —
/// serial per-connection processing is a protocol guarantee, not luck.
#[test]
fn pipelined_binary_queries_answer_in_order() {
    let d = 8;
    let handle = serve_blob(400, d, 105);
    let queries: Vec<Vec<f32>> = {
        let ds = blob(8, d, 106);
        (0..ds.len()).map(|i| ds.point(i).to_vec()).collect()
    };

    let mut bin = BinClient::connect(&handle);
    // Write all eight frames before reading a single reply.
    let mut all = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        frame::encode_query((i + 1) as u32, q, &mut all);
    }
    bin.send_raw(&all);
    for (i, _q) in queries.iter().enumerate() {
        match bin.read_reply().expect("reply") {
            frame::Reply::Ok(pairs) => {
                // k = i+1 tags each reply with its request's position.
                assert_eq!(pairs.len(), i + 1, "reply {i} out of order");
            }
            other => panic!("reply {i}: unexpected {other:?}"),
        }
    }

    handle.shutdown();
}
