//! The engine's core contract: concurrency must never change answers.
//! Every configuration is checked bit-for-bit against sequential
//! `PmLsh::query` on the seeded Audio smoke stand-in.

use pm_lsh_core::{PmLsh, PmLshParams, QueryResult, QueryStats};
use pm_lsh_data::{PaperDataset, Scale};
use pm_lsh_engine::{Engine, EngineConfig};
use std::sync::Arc;
use std::time::Duration;

const K: usize = 10;

fn audio_workload(n_queries: usize) -> (Arc<PmLsh>, Vec<Vec<f32>>, Vec<QueryResult>) {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries: Vec<Vec<f32>> = generator
        .queries(n_queries)
        .iter()
        .map(|q| q.to_vec())
        .collect();
    let index = Arc::new(PmLsh::build(data, PmLshParams::paper_defaults()));
    let sequential: Vec<QueryResult> = queries.iter().map(|q| index.query(q, K)).collect();
    (index, queries, sequential)
}

#[test]
fn four_worker_batch_is_bit_identical_to_sequential() {
    let (index, queries, sequential) = audio_workload(40);
    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 4,
            ..Default::default()
        },
    );
    let batch = engine.query_batch(&queries, K);
    assert_eq!(batch.len(), sequential.len());
    for (qi, (got, want)) in batch.iter().zip(&sequential).enumerate() {
        assert_eq!(
            got.neighbors, want.neighbors,
            "query {qi}: neighbor sets diverged"
        );
        assert_eq!(
            got.stats, want.stats,
            "query {qi}: execution counters diverged"
        );
    }
}

#[test]
fn every_pool_size_agrees_with_every_other() {
    let (index, queries, sequential) = audio_workload(20);
    for threads in [1usize, 2, 3, 8] {
        let engine = Engine::new(
            Arc::clone(&index),
            EngineConfig {
                threads,
                ..Default::default()
            },
        );
        let batch = engine.query_batch(&queries, K);
        for (got, want) in batch.iter().zip(&sequential) {
            assert_eq!(got.neighbors, want.neighbors, "{threads} workers diverged");
        }
    }
}

#[test]
fn micro_batched_single_queries_match_sequential() {
    let (index, queries, sequential) = audio_workload(16);
    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 4,
            batch_size: 4,
            max_wait: Duration::from_micros(500),
            ..Default::default()
        },
    );
    // Issue the queries from concurrent caller threads so the batcher has
    // something to coalesce.
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in queries.chunks(4).enumerate() {
            let engine = engine.clone();
            let expected = &sequential[chunk_idx * 4..];
            scope.spawn(move || {
                for (i, q) in chunk.iter().enumerate() {
                    let got = engine.query(q, K);
                    assert_eq!(got.neighbors, expected[i].neighbors);
                    assert_eq!(got.stats, expected[i].stats);
                }
            });
        }
    });
    assert_eq!(engine.stats().queries, queries.len() as u64);
}

#[test]
fn engine_stats_equal_the_summed_query_stats() {
    let (index, queries, sequential) = audio_workload(25);
    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 4,
            ..Default::default()
        },
    );
    let batch = engine.query_batch(&queries, K);
    let summed: QueryStats = batch.iter().map(|r| r.stats).sum();
    let expected: QueryStats = sequential.iter().map(|r| r.stats).sum();
    let stats = engine.stats();
    assert_eq!(stats.query_stats, summed);
    assert_eq!(stats.query_stats, expected);
    assert_eq!(stats.queries, queries.len() as u64);
    assert!(stats.qps > 0.0);
    assert!(stats.p50_ms <= stats.p99_ms);
    assert!(stats.mean_ms > 0.0);
}

#[test]
fn results_keep_input_order_under_adversarial_sharding() {
    // More workers than queries, then batch smaller than the worker count:
    // order must survive any sharding.
    let (index, queries, sequential) = audio_workload(5);
    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 16,
            ..Default::default()
        },
    );
    let batch = engine.query_batch(&queries, K);
    for (got, want) in batch.iter().zip(&sequential) {
        assert_eq!(got.neighbors, want.neighbors);
    }
}
