//! Equivalence harness for the sharded scatter-gather engine: a
//! [`ShardedEngine`] over a round-robin partition must answer at least as
//! well as the monolithic [`Engine`] it replaces, against a linear-scan
//! oracle, for *every* entry point — `query`, `query_batch`, `query_bc`
//! and the TCP wire — plus the budget-sum inequality the module docs
//! claim, exact-id parity where the budgets make answers deterministic,
//! and a save→load→parity leg for the sharded manifest snapshot.

use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
use pm_lsh_data::{exact_knn_batch, recall, PaperDataset, Scale};
use pm_lsh_engine::server::parse_ok_response;
use pm_lsh_engine::{serve, Engine, EngineConfig, ShardedEngine};
use pm_lsh_metric::Dataset;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const K: usize = 10;

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        ..Default::default()
    }
}

fn smoke(ds: PaperDataset, nq: usize) -> (Dataset, Dataset) {
    let generator = ds.generator(Scale::Smoke);
    (generator.dataset(), generator.queries(nq))
}

fn avg_recall(
    results: &[Vec<pm_lsh_metric::Neighbor>],
    truth: &[Vec<pm_lsh_metric::Neighbor>],
) -> f64 {
    results
        .iter()
        .zip(truth)
        .map(|(found, t)| recall(found, t))
        .sum::<f64>()
        / results.len() as f64
}

/// The §4.4 budget survives partitioning: every fan-out leg spends the
/// *pooled* monolithic budget `B = min(⌈β·n⌉ + k, n)` clamped to its
/// shard's live count, so the per-shard budgets sum to
/// `Σ_s min(B, n_s) ≥ min(B, Σ_s n_s) = B` — at least the monolithic
/// budget — and [`ShardedEngine::candidate_budget`] is exactly that sum.
#[test]
fn per_shard_budgets_sum_to_at_least_the_monolithic_budget() {
    for ds in [PaperDataset::Audio, PaperDataset::Trevi] {
        let (data, _) = smoke(ds, 1);
        let params = PmLshParams::paper_defaults();
        let mono = PmLsh::build(data.clone(), params);
        for shards in [2, 3, 4, 7] {
            let sharded =
                ShardedEngine::build(&data, params, BuildOptions::default(), shards, config(1));
            // k = 1 (tight), a typical k, a k past the clamp, and k ≥ n.
            for k in [1, K, 1000, data.len() + 5] {
                // Same data, no deletions: the pooled budget over the
                // shard set equals the monolithic index's own budget.
                let pooled = mono.candidate_budget(k);
                let summed: usize = sharded
                    .shards()
                    .iter()
                    .map(|shard| pooled.min(shard.index().len()))
                    .sum();
                assert_eq!(
                    summed,
                    sharded.candidate_budget(k),
                    "{ds:?} S={shards} k={k}: candidate_budget is not the per-shard sum"
                );
                assert!(
                    summed >= pooled,
                    "{ds:?} S={shards} k={k}: summed shard budget {summed} fell below \
                     the monolithic {pooled}"
                );
            }
        }
    }
}

/// The headline guarantee: on Audio and Trevi smoke data, partitioned
/// serving never costs recall against the linear-scan oracle — every
/// fan-out leg spends the pooled budget without the shard-local line-4
/// stop, so the merged candidate pool is a superset of the monolith's.
/// Checked for `query` and `query_batch` (which must also agree with each
/// other bit-for-bit: same snapshots, same merge).
#[test]
fn sharded_recall_never_below_monolithic_on_paper_datasets() {
    for ds in [PaperDataset::Audio, PaperDataset::Trevi] {
        let (data, queries) = smoke(ds, 40);
        let truth = exact_knn_batch(data.view(), queries.view(), K, 0);
        let params = PmLshParams::paper_defaults();
        let mono = Engine::new(PmLsh::build(data.clone(), params), config(2));
        let mono_results: Vec<_> = queries.iter().map(|q| mono.query(q, K).neighbors).collect();
        let mono_recall = avg_recall(&mono_results, &truth);

        for shards in [1, 2, 4] {
            let sharded =
                ShardedEngine::build(&data, params, BuildOptions::default(), shards, config(2));
            let single: Vec<_> = queries
                .iter()
                .map(|q| sharded.query(q, K).neighbors)
                .collect();
            let query_vecs: Vec<&[f32]> = queries.iter().collect();
            let batch = sharded.query_batch(&query_vecs, K);
            for (qi, (one, many)) in single.iter().zip(&batch).enumerate() {
                assert_eq!(
                    one, &many.neighbors,
                    "{ds:?} S={shards} query {qi}: query and query_batch diverged"
                );
            }
            let sharded_recall = avg_recall(&single, &truth);
            // The 1e-6 slack absorbs the tolerance-tested AVX2 kernel; the
            // comparison is recall-vs-recall, not id-vs-id, because the
            // superset candidate pool can (correctly) surface a better
            // neighbor that displaces a member of the monolithic answer.
            assert!(
                sharded_recall >= mono_recall - 1e-6,
                "{ds:?} S={shards}: sharded recall {sharded_recall:.4} fell below \
                 monolithic {mono_recall:.4}"
            );
        }
    }
}

/// With `k` = the live point count the per-shard budget clamps to `n_s`,
/// every shard verifies every one of its points with the early-abandon
/// bound still infinite, and the merged answer is the *exact* ranking of
/// all points by `(dist, id)` — so monolith and every shard count must
/// agree bit-for-bit, and recall against the oracle is exactly 1.
#[test]
fn exhaustive_k_is_bit_identical_across_shard_counts() {
    let (data, queries) = smoke(PaperDataset::Audio, 8);
    let k = data.len();
    let params = PmLshParams::paper_defaults();
    let truth = exact_knn_batch(data.view(), queries.view(), k, 0);
    let mono = Engine::new(PmLsh::build(data.clone(), params), config(2));
    let mono_results: Vec<_> = queries.iter().map(|q| mono.query(q, k).neighbors).collect();
    for (qi, found) in mono_results.iter().enumerate() {
        assert_eq!(found.len(), k);
        assert!(
            (recall(found, &truth[qi]) - 1.0).abs() < 1e-12,
            "query {qi}: exhaustive monolithic query missed oracle points"
        );
    }
    for shards in [2, 3, 4] {
        let sharded =
            ShardedEngine::build(&data, params, BuildOptions::default(), shards, config(2));
        for (qi, q) in queries.iter().enumerate() {
            let merged = sharded.query(q, k).neighbors;
            assert_eq!(
                merged, mono_results[qi],
                "S={shards} query {qi}: exhaustive sharded answer is not bit-identical \
                 to the monolith"
            );
        }
    }
}

/// `query_bc` (Algorithm 1) under sharding: each shard spends its own
/// `⌈β·n_s⌉ + 1` cap and the closest hit wins, so across a query batch
/// the fan-out must succeed at least as often as the monolith (the caps
/// truncate each shard's candidate stream differently, so the comparison
/// is success-rate, not hit-for-hit), and every returned hit must be a
/// real point at its real distance.
#[test]
fn query_bc_success_rate_never_below_monolithic() {
    let (data, queries) = smoke(PaperDataset::Audio, 60);
    let params = PmLshParams::paper_defaults();
    // r = the true NN distance (plus epsilon): a point within r always
    // exists, so Lemma 5 gives every engine a constant success floor.
    let truth = exact_knn_batch(data.view(), queries.view(), 1, 0);
    let radii: Vec<f64> = truth
        .iter()
        .map(|t| f64::from(t[0].dist) * 1.01 + 1e-6)
        .collect();
    let mono = Engine::new(PmLsh::build(data.clone(), params), config(1));
    let mono_hits = queries
        .iter()
        .zip(&radii)
        .filter(|(q, &r)| mono.index().query_bc(q, r).is_some())
        .count();
    for shards in [2, 4] {
        let sharded =
            ShardedEngine::build(&data, params, BuildOptions::default(), shards, config(1));
        let mut hits = 0;
        for (qi, (q, &r)) in queries.iter().zip(&radii).enumerate() {
            if let Some(n) = sharded.query_bc(q, r) {
                hits += 1;
                let id = n.id as usize;
                assert!(id < data.len(), "S={shards} query {qi}: ghost id {id}");
                let expect = data
                    .point(id)
                    .iter()
                    .zip(q)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
                    .sqrt();
                assert!(
                    (n.dist - expect).abs() <= 1e-3 * expect.max(1.0),
                    "S={shards} query {qi}: reported dist {} but point {id} is {expect} away",
                    n.dist
                );
            }
        }
        assert!(
            hits >= mono_hits,
            "S={shards}: ball-cover hit {hits}/{} queries, monolith hit {mono_hits}",
            queries.len()
        );
    }
}

/// One shard is the degenerate case: a `ShardedEngine` wrapping the same
/// snapshot as an [`Engine`] must be bit-for-bit that engine on every
/// entry point, mutations included.
#[test]
fn single_shard_is_bitwise_the_monolithic_engine() {
    let (data, queries) = smoke(PaperDataset::Trevi, 12);
    let index = Arc::new(PmLsh::build(data, PmLshParams::paper_defaults()));
    let mono = Engine::new(Arc::clone(&index), config(2));
    let sharded: ShardedEngine = Engine::new(Arc::clone(&index), config(2)).into();
    assert_eq!(sharded.shard_count(), 1);
    assert_eq!(sharded.len(), mono.index().len());
    assert_eq!(sharded.candidate_budget(K), index.candidate_budget(K));

    let query_vecs: Vec<&[f32]> = queries.iter().collect();
    let mono_batch = mono.query_batch(&query_vecs, K);
    let sharded_batch = sharded.query_batch(&query_vecs, K);
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(sharded.query(q, K).neighbors, mono.query(q, K).neighbors);
        assert_eq!(sharded_batch[qi].neighbors, mono_batch[qi].neighbors);
        assert_eq!(sharded.query_bc(q, 1.0), index.query_bc(q, 1.0));
    }

    // Mutations: both engines copy-on-write from the same pinned
    // snapshot, so lock-step mutations report identical ids and counts.
    let point = vec![0.125f32; sharded.dim()];
    let a = mono.insert(&point).expect("monolithic insert");
    let b = sharded.insert(&point).expect("sharded insert");
    assert_eq!((a.id, a.epoch, a.points), (b.id, b.epoch, b.points));
    let a = mono.delete(b.id).expect("monolithic delete");
    let b = sharded.delete(b.id).expect("sharded delete");
    assert_eq!((a.id, a.epoch, a.points), (b.id, b.epoch, b.points));
    assert_eq!(sharded.epoch(), mono.epoch());

    let info = sharded.info();
    assert_eq!(info.shards, 1);
    assert_eq!(info.points, mono.info().points);
}

/// The wire entry point: a served `ShardedEngine` answers `QUERY`
/// bit-identically to the in-process scatter-gather, and `INDEXINFO`
/// reports the shard count.
#[test]
fn wire_queries_match_in_process_sharded_answers() {
    let (data, queries) = smoke(PaperDataset::Audio, 8);
    let points = data.len();
    let sharded = ShardedEngine::build(
        &data,
        PmLshParams::paper_defaults(),
        BuildOptions::default(),
        4,
        config(2),
    );
    let handle = serve(sharded.clone(), ("127.0.0.1", 0)).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };

    let info = roundtrip("INDEXINFO");
    assert!(
        info.contains(&format!("points={points}")) && info.ends_with("shards=4"),
        "INDEXINFO must report the shard count: {info}"
    );

    for (qi, q) in queries.iter().enumerate() {
        let mut line = format!("QUERY {K}");
        for v in q {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        let served = parse_ok_response(&roundtrip(&line)).expect("OK reply");
        let direct: Vec<(u32, f32)> = sharded
            .query(q, K)
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist))
            .collect();
        assert_eq!(served, direct, "query {qi}: wire answer diverged");
    }

    assert_eq!(roundtrip("QUIT"), "BYE");
    handle.shutdown();
}

/// Save→load→parity for the sharded snapshot: `save` at `S > 1` writes a
/// manifest plus one `.s<k>` sibling per shard, `load` restores the whole
/// set, and the restored engine answers bit-identically — shard count,
/// global ids and distances all preserved.
#[test]
fn sharded_snapshot_roundtrip_preserves_answers() {
    let (data, queries) = smoke(PaperDataset::Trevi, 12);
    let sharded = ShardedEngine::build(
        &data,
        PmLshParams::paper_defaults(),
        BuildOptions::default(),
        3,
        config(1),
    );
    let before: Vec<_> = queries
        .iter()
        .map(|q| sharded.query(q, K).neighbors)
        .collect();

    let path = std::env::temp_dir().join(format!(
        "pmlsh-sharded-roundtrip-{}.pmlsh",
        std::process::id()
    ));
    let report = sharded.save(&path).expect("sharded save");
    assert_eq!(report.points as usize, sharded.len());
    assert!(
        pm_lsh_persist::is_manifest_file(&path),
        "an S=3 save must write a manifest, not a single-file snapshot"
    );

    let restored = ShardedEngine::load(&path, config(1)).expect("sharded load");
    assert_eq!(restored.shard_count(), 3);
    assert_eq!(restored.len(), sharded.len());
    assert_eq!(restored.candidate_budget(K), sharded.candidate_budget(K));
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            restored.query(q, K).neighbors,
            before[qi],
            "query {qi}: restored sharded engine diverged from the saved one"
        );
    }

    let _ = std::fs::remove_file(&path);
    for s in 0..3 {
        let mut sibling = path.as_os_str().to_os_string();
        sibling.push(format!(".s{s}"));
        let _ = std::fs::remove_file(sibling);
    }
}
