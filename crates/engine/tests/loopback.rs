//! Loopback test of the TCP serving layer: a server on port 0, 100
//! concurrent client queries, and recall checked against the sequential
//! in-process run.

use pm_lsh_core::{PmLsh, PmLshParams};
use pm_lsh_data::{exact_knn_batch, recall, PaperDataset, Scale};
use pm_lsh_engine::server::parse_ok_response;
use pm_lsh_engine::{serve, Engine, EngineConfig};
use pm_lsh_metric::Neighbor;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const K: usize = 10;
const CLIENTS: usize = 10;
const QUERIES_PER_CLIENT: usize = 10;

fn query_line(q: &[f32], k: usize) -> String {
    let mut line = format!("QUERY {k}");
    for v in q {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    line.push('\n');
    line
}

#[test]
fn hundred_concurrent_tcp_queries_match_sequential_recall() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(CLIENTS * QUERIES_PER_CLIENT);
    let index = Arc::new(PmLsh::build(
        Arc::clone(&data),
        PmLshParams::paper_defaults(),
    ));

    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 4,
            ..Default::default()
        },
    );
    let handle = serve(engine.clone(), ("127.0.0.1", 0)).expect("bind port 0");
    let addr = handle.addr();

    // CLIENTS threads, each its own connection, QUERIES_PER_CLIENT each.
    let mut tcp_neighbors: Vec<Option<Vec<Neighbor>>> = vec![None; queries.len()];
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, Vec<Vec<f32>>)> = (0..CLIENTS)
            .map(|ci| {
                let start = ci * QUERIES_PER_CLIENT;
                let qs = (start..start + QUERIES_PER_CLIENT)
                    .map(|qi| queries.point(qi).to_vec())
                    .collect();
                (start, qs)
            })
            .collect();
        let mut handles = Vec::new();
        for (start, qs) in chunks {
            handles.push(scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect to loopback server");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut answers = Vec::with_capacity(qs.len());
                for q in &qs {
                    writer.write_all(query_line(q, K).as_bytes()).unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    let pairs = parse_ok_response(response.trim()).expect("OK response");
                    answers.push(
                        pairs
                            .into_iter()
                            .map(|(id, dist)| Neighbor::new(dist, id))
                            .collect(),
                    );
                }
                (start, answers)
            }));
        }
        for h in handles {
            let (start, answers) = h.join().expect("client thread");
            for (i, a) in answers.into_iter().enumerate() {
                tcp_neighbors[start + i] = Some(a);
            }
        }
    });

    let truth = exact_knn_batch(data.view(), queries.view(), K, 0);
    let nq = queries.len() as f64;
    let mut tcp_recall = 0.0;
    let mut seq_recall = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let served = tcp_neighbors[qi].as_ref().expect("every query answered");
        let sequential = index.query(q, K).neighbors;
        // The engine adds transport, not approximation: same ids in order.
        assert_eq!(
            served.iter().map(|n| n.id).collect::<Vec<_>>(),
            sequential.iter().map(|n| n.id).collect::<Vec<_>>(),
            "query {qi}: TCP ids diverged from sequential"
        );
        tcp_recall += recall(served, &truth[qi]);
        seq_recall += recall(&sequential, &truth[qi]);
    }
    assert!(
        tcp_recall / nq >= seq_recall / nq - 1e-9,
        "TCP recall {:.4} fell below sequential {:.4}",
        tcp_recall / nq,
        seq_recall / nq
    );
    assert_eq!(engine.stats().queries, queries.len() as u64);

    handle.shutdown();
}

#[test]
fn protocol_control_commands_and_errors() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let dim = data.dim();
    let engine = Engine::new(
        PmLsh::build(data, PmLshParams::paper_defaults()),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");

    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim().to_string()
    };

    assert_eq!(roundtrip("PING"), "PONG");
    assert!(roundtrip("STATS").starts_with("STATS queries="));
    assert!(roundtrip("FROB 1 2 3").starts_with("ERR unknown command"));
    assert!(roundtrip("QUERY").starts_with("ERR QUERY needs"));
    assert!(roundtrip("QUERY 0 1.0").starts_with("ERR QUERY needs"));
    assert!(roundtrip("QUERY 3 1.0 2.0").starts_with("ERR query has 2 components"));
    assert!(roundtrip("QUERY 3 nan").starts_with("ERR bad vector component"));

    // A well-formed query still works on the same connection after errors.
    let q = vec![0.25f32; dim];
    let ok = roundtrip(query_line(&q, 3).trim());
    let pairs = parse_ok_response(&ok).expect("OK after ERRs");
    assert_eq!(pairs.len(), 3);

    // An absurd k is clamped to the indexed point count, not allocated.
    let huge = roundtrip(query_line(&q, 999_999_999_999_999).trim());
    let pairs = parse_ok_response(&huge).expect("OK for huge k");
    assert_eq!(pairs.len(), 2000, "k beyond n must clamp to n");

    assert_eq!(roundtrip("QUIT"), "BYE");
    handle.shutdown();
}

#[test]
fn oversized_line_is_rejected_and_connection_closed() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let engine = Engine::new(
        PmLsh::build(generator.dataset(), PmLshParams::paper_defaults()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // Stream far past the per-line cap without ever sending a newline.
    let blob = vec![b'9'; 1 << 20];
    // The server may close mid-write; either way it must answer ERR first.
    let _ = writer.write_all(&blob);
    let _ = writer.flush();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(
        response.starts_with("ERR line exceeds"),
        "expected length-cap rejection, got '{}'",
        response.trim()
    );
    let mut rest = String::new();
    let n = reader.read_line(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection must be closed after an oversized line");
    handle.shutdown();
}

#[test]
fn shutdown_stops_accepting() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let engine = Engine::new(
        PmLsh::build(generator.dataset(), PmLshParams::paper_defaults()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
    let addr = handle.addr();
    handle.shutdown();
    // The listener is gone: either the connection is refused outright or
    // it closes without ever answering.
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut reader = BufReader::new(&stream);
        (&stream).write_all(b"PING\n").ok();
        let mut response = String::new();
        let n = reader.read_line(&mut response).unwrap_or(0);
        assert_eq!(n, 0, "server answered '{}' after shutdown", response.trim());
    }
}
