//! Loopback tests of the TCP serving layer: a server on port 0, 100
//! concurrent client queries with recall checked against the sequential
//! in-process run, graceful-drain semantics, the connection cap, and
//! multi-index routing parity.

use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
use pm_lsh_data::{exact_knn_batch, recall, PaperDataset, Scale};
use pm_lsh_engine::server::parse_ok_response;
use pm_lsh_engine::{serve, serve_router, Engine, EngineConfig, Router, ServerConfig};
use pm_lsh_metric::{Dataset, Neighbor};
use pm_lsh_stats::Rng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const K: usize = 10;
const CLIENTS: usize = 10;
const QUERIES_PER_CLIENT: usize = 10;

fn query_line(q: &[f32], k: usize) -> String {
    let mut line = format!("QUERY {k}");
    for v in q {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    line.push('\n');
    line
}

#[test]
fn hundred_concurrent_tcp_queries_match_sequential_recall() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(CLIENTS * QUERIES_PER_CLIENT);
    let index = Arc::new(PmLsh::build(
        Arc::clone(&data),
        PmLshParams::paper_defaults(),
    ));

    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 4,
            ..Default::default()
        },
    );
    let handle = serve(engine.clone(), ("127.0.0.1", 0)).expect("bind port 0");
    let addr = handle.addr();

    // CLIENTS threads, each its own connection, QUERIES_PER_CLIENT each.
    let mut tcp_neighbors: Vec<Option<Vec<Neighbor>>> = vec![None; queries.len()];
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, Vec<Vec<f32>>)> = (0..CLIENTS)
            .map(|ci| {
                let start = ci * QUERIES_PER_CLIENT;
                let qs = (start..start + QUERIES_PER_CLIENT)
                    .map(|qi| queries.point(qi).to_vec())
                    .collect();
                (start, qs)
            })
            .collect();
        let mut handles = Vec::new();
        for (start, qs) in chunks {
            handles.push(scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect to loopback server");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut answers = Vec::with_capacity(qs.len());
                for q in &qs {
                    writer.write_all(query_line(q, K).as_bytes()).unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    let pairs = parse_ok_response(response.trim()).expect("OK response");
                    answers.push(
                        pairs
                            .into_iter()
                            .map(|(id, dist)| Neighbor::new(dist, id))
                            .collect(),
                    );
                }
                (start, answers)
            }));
        }
        for h in handles {
            let (start, answers) = h.join().expect("client thread");
            for (i, a) in answers.into_iter().enumerate() {
                tcp_neighbors[start + i] = Some(a);
            }
        }
    });

    let truth = exact_knn_batch(data.view(), queries.view(), K, 0);
    let nq = queries.len() as f64;
    let mut tcp_recall = 0.0;
    let mut seq_recall = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let served = tcp_neighbors[qi].as_ref().expect("every query answered");
        let sequential = index.query(q, K).neighbors;
        // The engine adds transport, not approximation: same ids in order.
        assert_eq!(
            served.iter().map(|n| n.id).collect::<Vec<_>>(),
            sequential.iter().map(|n| n.id).collect::<Vec<_>>(),
            "query {qi}: TCP ids diverged from sequential"
        );
        tcp_recall += recall(served, &truth[qi]);
        seq_recall += recall(&sequential, &truth[qi]);
    }
    assert!(
        tcp_recall / nq >= seq_recall / nq - 1e-9,
        "TCP recall {:.4} fell below sequential {:.4}",
        tcp_recall / nq,
        seq_recall / nq
    );
    assert_eq!(engine.stats().queries, queries.len() as u64);

    handle.shutdown();
}

#[test]
fn protocol_control_commands_and_errors() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let dim = data.dim();
    let engine = Engine::new(
        PmLsh::build(data, PmLshParams::paper_defaults()),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");

    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim().to_string()
    };

    assert_eq!(roundtrip("PING"), "PONG");
    assert!(roundtrip("STATS").starts_with("STATS index=default queries="));
    assert!(roundtrip("FROB 1 2 3").starts_with("ERR unknown command"));
    assert!(roundtrip("QUERY").starts_with("ERR QUERY needs"));
    assert!(roundtrip("QUERY 0 1.0").starts_with("ERR QUERY needs"));
    assert!(roundtrip("QUERY 3 1.0 2.0").starts_with("ERR query has 2 components"));
    assert!(roundtrip("QUERY 3 nan").starts_with("ERR bad vector component"));

    // A well-formed query still works on the same connection after errors.
    let q = vec![0.25f32; dim];
    let ok = roundtrip(query_line(&q, 3).trim());
    let pairs = parse_ok_response(&ok).expect("OK after ERRs");
    assert_eq!(pairs.len(), 3);

    // An absurd k is clamped to the indexed point count, not allocated.
    let huge = roundtrip(query_line(&q, 999_999_999_999_999).trim());
    let pairs = parse_ok_response(&huge).expect("OK for huge k");
    assert_eq!(pairs.len(), 2000, "k beyond n must clamp to n");

    assert_eq!(roundtrip("QUIT"), "BYE");
    handle.shutdown();
}

#[test]
fn oversized_line_is_rejected_and_connection_closed() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let engine = Engine::new(
        PmLsh::build(generator.dataset(), PmLshParams::paper_defaults()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // Stream far past the per-line cap without ever sending a newline.
    let blob = vec![b'9'; 1 << 20];
    // The server may close mid-write; either way it must answer ERR first.
    let _ = writer.write_all(&blob);
    let _ = writer.flush();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(
        response.starts_with("ERR line exceeds"),
        "expected length-cap rejection, got '{}'",
        response.trim()
    );
    let mut rest = String::new();
    let n = reader.read_line(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection must be closed after an oversized line");
    handle.shutdown();
}

fn blob(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(d, n);
    let mut buf = vec![0.0f32; d];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

/// Graceful drain: a `QUERY` already inside the engine when `shutdown`
/// lands must complete, its full `OK` reply must arrive intact, the
/// connection then learns `ERR server shutting down`, and a post-drain
/// connect is refused.
#[test]
fn drain_delivers_inflight_reply_before_closing() {
    let data = blob(800, 16, 50);
    let q = data.point(3).to_vec();
    let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
    // A wide-open micro-batch window: a single query parks in the batcher
    // for ~800 ms before executing, guaranteeing it is still in flight
    // when shutdown begins.
    let engine = Engine::new(
        Arc::clone(&index),
        EngineConfig {
            threads: 1,
            batch_size: 64,
            max_wait: Duration::from_millis(800),
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
    let addr = handle.addr();

    let mut line = String::from("QUERY 5");
    for v in &q {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    line.push('\n');

    let client = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let mut next = String::new();
        reader.read_line(&mut next).unwrap();
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        (
            reply.trim_end().to_string(),
            next.trim_end().to_string(),
            rest,
        )
    });

    // Let the handler read the line and park the query in the batcher,
    // then drain: shutdown must block until the reply has been written.
    std::thread::sleep(Duration::from_millis(250));
    let report = handle.shutdown();
    assert!(report.drained, "drain did not complete: {report:?}");
    assert_eq!(report.forced, 0, "no socket should need force-closing");

    let (reply, next, rest) = client.join().expect("client thread");
    let served = parse_ok_response(&reply).expect("intact OK reply across shutdown");
    let direct = index.query(&q, 5);
    assert_eq!(
        served.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        direct.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        "drained reply diverged from the in-process answer"
    );
    assert_eq!(next, "ERR server shutting down");
    assert!(rest.is_empty(), "connection must close after the drain ERR");

    // The listener is gone: a fresh connect is refused (or, if the OS
    // races the close, closes without ever answering).
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut reader = BufReader::new(&stream);
        (&stream).write_all(b"PING\n").ok();
        let mut response = String::new();
        let n = reader.read_line(&mut response).unwrap_or(0);
        assert_eq!(n, 0, "server answered '{}' after drain", response.trim());
    }
}

/// The thread-per-connection model is no longer unbounded: connection
/// `max_connections + 1` is answered `ERR server at connection capacity`
/// and closed, while the established connections keep being served.
#[test]
fn connection_cap_rejects_excess_connections() {
    let engine = Engine::new(
        PmLsh::build(blob(300, 8, 51), PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let router = Router::with_engine("default", engine).unwrap();
    let config = ServerConfig {
        max_connections: 2,
        ..Default::default()
    };
    let handle = serve_router(router, ("127.0.0.1", 0), config).expect("bind port 0");
    let addr = handle.addr();

    let mut keep = Vec::new();
    for _ in 0..2 {
        let stream = TcpStream::connect(addr).expect("connect under the cap");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // A PING roundtrip proves the connection is registered and live
        // before the next connect races in.
        writer.write_all(b"PING\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "PONG");
        keep.push((reader, writer));
    }
    assert_eq!(handle.connections(), 2);

    let over = TcpStream::connect(addr).expect("TCP connect still succeeds");
    let mut reader = BufReader::new(over);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "ERR server at connection capacity");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "over-cap connection must be closed");

    // The capped-out rejection did not disturb established connections.
    let (reader, writer) = &mut keep[0];
    writer.write_all(b"PING\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "PONG");

    // Closing a slot frees capacity for the next connect.
    keep.pop();
    // The handler notices the close within its drain-poll read timeout.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.connections() > 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.connections(), 1, "closed connection never reaped");
    let stream = TcpStream::connect(addr).expect("connect after a slot freed");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    (&stream).write_all(b"PING\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "PONG");

    handle.shutdown();
}

/// Multi-index routing: one server, two datasets of different
/// dimensionality. `USE` switches the connection's current index, routed
/// answers are bit-identical to direct `PmLsh::query` on each index, and
/// `INDEXINFO`/`STATS` report per-index state.
#[test]
fn multi_index_routing_matches_direct_queries() {
    let data_a = blob(700, 12, 60);
    let data_b = blob(900, 24, 61);
    let queries_a: Vec<Vec<f32>> = (0..5).map(|i| data_a.point(i).to_vec()).collect();
    let queries_b: Vec<Vec<f32>> = (0..5).map(|i| data_b.point(i).to_vec()).collect();
    let index_a = Arc::new(PmLsh::build(data_a, PmLshParams::default()));
    let index_b = Arc::new(PmLsh::build(data_b, PmLshParams::default()));

    let config = EngineConfig {
        threads: 2,
        ..Default::default()
    };
    let router = Router::new();
    router
        .attach("alpha", Engine::new(Arc::clone(&index_a), config))
        .unwrap();
    router
        .attach("beta", Engine::new(Arc::clone(&index_b), config))
        .unwrap();
    let handle =
        serve_router(router.clone(), ("127.0.0.1", 0), ServerConfig::default()).expect("bind");

    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };
    let query_for = |q: &[f32]| {
        let mut line = String::from("QUERY 4");
        for v in q {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        line
    };
    let assert_parity = |reply: &str, direct: &pm_lsh_core::QueryResult| {
        let served = parse_ok_response(reply).expect("OK reply");
        let expect: Vec<(u32, f32)> = direct.neighbors.iter().map(|n| (n.id, n.dist)).collect();
        assert_eq!(served, expect, "routed answer not bit-identical to direct");
    };

    assert_eq!(roundtrip("LISTINDEXES"), "INDEXES alpha,beta");

    // New connections start on the first-attached (default) index.
    let info = roundtrip("INDEXINFO");
    assert!(
        info.starts_with("INDEXINFO name=alpha points=700 dim=12"),
        "unexpected default-index info: {info}"
    );
    for q in &queries_a {
        assert_parity(&roundtrip(&query_for(q)), &index_a.query(q, 4));
    }

    // Switching indexes re-routes queries AND the protocol's notion of d.
    assert_eq!(roundtrip("USE beta"), "OK using beta");
    let info = roundtrip("INDEXINFO");
    assert!(
        info.starts_with("INDEXINFO name=beta points=900 dim=24"),
        "unexpected post-USE info: {info}"
    );
    for q in &queries_b {
        assert_parity(&roundtrip(&query_for(q)), &index_b.query(q, 4));
    }
    // A query with the OLD index's dimensionality is now a protocol error.
    assert!(roundtrip(&query_for(&queries_a[0]))
        .starts_with("ERR query has 12 components, index dimensionality is 24"));

    // Per-index stats: beta served 6 queries (5 OK + the 12-component
    // attempt never reached the engine), alpha served 5.
    assert!(roundtrip("STATS").starts_with("STATS index=beta queries=5 "));
    assert_eq!(roundtrip("USE alpha"), "OK using alpha");
    assert!(roundtrip("STATS").starts_with("STATS index=alpha queries=5 "));

    assert_eq!(
        roundtrip("USE gamma"),
        "ERR unknown index 'gamma' (see LISTINDEXES)"
    );

    // Detach is visible on this same connection's next routed command.
    assert_eq!(roundtrip("DETACH beta"), "OK detached beta");
    assert_eq!(roundtrip("LISTINDEXES"), "INDEXES alpha");
    assert_eq!(
        roundtrip("USE beta"),
        "ERR unknown index 'beta' (see LISTINDEXES)"
    );
    assert_eq!(roundtrip("DETACH beta"), "ERR unknown index 'beta'");

    // AUTH without a configured token is a no-op courtesy.
    assert_eq!(roundtrip("AUTH anything"), "OK authentication not required");

    assert_eq!(roundtrip("QUIT"), "BYE");
    handle.shutdown();
}

/// Wire `ATTACH` loads a server-side file, builds with the server's
/// attach parameters, and serves answers bit-identical to a direct build
/// with the same options.
#[test]
fn wire_attach_builds_and_serves_a_new_index() {
    let base = blob(300, 8, 70);
    let extra = blob(400, 10, 71);
    let queries: Vec<Vec<f32>> = (0..4).map(|i| extra.point(i).to_vec()).collect();

    let path = std::env::temp_dir().join(format!(
        "pmlsh-attach-test-{}-{}.fvecs",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    pm_lsh_data::write_fvecs(&path, &extra).expect("write temp fvecs");

    let engine = Engine::new(
        PmLsh::build(base, PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };

    let reply = roundtrip(&format!("ATTACH extra {}", path.display()));
    assert!(
        reply.starts_with("OK attached extra points=400 dim=10"),
        "unexpected ATTACH reply: {reply}"
    );
    assert_eq!(roundtrip("LISTINDEXES"), "INDEXES default,extra");
    assert!(roundtrip(&format!("ATTACH extra {}", path.display()))
        .starts_with("ERR an index named 'extra' is already attached"));
    assert!(roundtrip("ATTACH bad/name nowhere.fvecs").starts_with("ERR invalid index name"));

    assert_eq!(roundtrip("USE extra"), "OK using extra");
    // ATTACH builds with ServerConfig::attach_params on all cores; the
    // parallel bulk load is thread-count invariant, so a direct build
    // with the same options must answer bit-identically.
    let direct = PmLsh::build_with_opts(
        Arc::new(extra.clone()),
        ServerConfig::default().attach_params,
        BuildOptions::all_cores(),
    );
    for q in &queries {
        let mut line = String::from("QUERY 3");
        for v in q {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        let served = parse_ok_response(&roundtrip(&line)).expect("OK reply");
        let expect: Vec<(u32, f32)> = direct
            .query(q, 3)
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist))
            .collect();
        assert_eq!(served, expect, "attached index diverged from direct build");
    }

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// A vector INSERTed over TCP is returned by the very next QUERY without
/// any reindex, DELETE makes it vanish again, and every mutation bumps
/// the epoch INDEXINFO reports.
#[test]
fn wire_insert_query_delete_roundtrip() {
    let data = blob(300, 6, 80);
    let engine = Engine::new(
        PmLsh::build(data, PmLshParams::default()),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };

    let vector = "0.5 -1.25 2 0.75 -0.5 3.5";
    assert!(roundtrip("INDEXINFO").contains("points=300"));
    assert!(roundtrip("INDEXINFO").contains("epoch=0"));

    // INSERT publishes a new snapshot; the id comes back on the wire.
    assert_eq!(
        roundtrip(&format!("INSERT {vector}")),
        "OK id=300 epoch=1 points=301"
    );
    let info = roundtrip("INDEXINFO");
    assert!(
        info.contains("points=301") && info.contains("epoch=1"),
        "INDEXINFO must observe the insert: {info}"
    );

    // The inserted vector is its own nearest neighbor, no reindex needed.
    let hits = parse_ok_response(&roundtrip(&format!("QUERY 1 {vector}"))).unwrap();
    assert_eq!(hits, vec![(300, 0.0)]);

    // DELETE removes it and bumps the epoch again.
    assert_eq!(roundtrip("DELETE 300"), "OK deleted 300 epoch=2 points=300");
    let info = roundtrip("INDEXINFO");
    assert!(
        info.contains("points=300") && info.contains("epoch=2"),
        "INDEXINFO must observe the delete: {info}"
    );
    let hits = parse_ok_response(&roundtrip(&format!("QUERY 5 {vector}"))).unwrap();
    assert!(
        hits.iter().all(|&(id, _)| id != 300),
        "deleted id still served: {hits:?}"
    );

    assert_eq!(roundtrip("QUIT"), "BYE");
    handle.shutdown();
}

/// Malformed `INSERT`/`DELETE` lines: each gets its *specific* `ERR`
/// reply, publishes nothing (the epoch never moves), and leaves both the
/// connection and the index fully usable.
#[test]
fn malformed_mutations_get_specific_errors_and_change_nothing() {
    let data = blob(200, 6, 81);
    let good_query = format!(
        "QUERY 3 {}",
        data.point(0)
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let engine = Engine::new(
        PmLsh::build(data, PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let router = Router::with_engine("default", engine).unwrap();
    let config = ServerConfig {
        auth_token: Some("sekrit".to_string()),
        ..Default::default()
    };
    let handle = serve_router(router, ("127.0.0.1", 0), config).expect("bind port 0");
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> String {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    };

    // Mutations before AUTH are refused wholesale.
    for unauthed in ["INSERT 1 2 3 4 5 6", "DELETE 0"] {
        assert_eq!(
            roundtrip(unauthed),
            "ERR authentication required (AUTH <token>)"
        );
    }
    assert_eq!(roundtrip("AUTH sekrit"), "OK authenticated");

    // One malformed line per failure mode, each with its own message.
    let table: &[(&str, &str)] = &[
        ("INSERT", "ERR INSERT needs <v1> ... <vd>"),
        (
            "INSERT 1 2",
            "ERR point has 2 components, index dimensionality is 6",
        ),
        (
            "INSERT 1 2 3 4 5 6 7",
            "ERR point has 7 components, index dimensionality is 6",
        ),
        ("INSERT 1 2 nan 4 5 6", "ERR bad vector component 'nan'"),
        ("INSERT 1 2 inf 4 5 6", "ERR bad vector component 'inf'"),
        ("INSERT 1 2 x 4 5 6", "ERR bad vector component 'x'"),
        ("DELETE", "ERR DELETE needs a point id"),
        ("DELETE abc", "ERR DELETE needs a point id"),
        ("DELETE -3", "ERR DELETE needs a point id"),
        ("DELETE 5 6", "ERR DELETE takes exactly one point id"),
        ("DELETE 99999", "ERR unknown point id 99999"),
    ];
    for (request, want) in table {
        assert_eq!(&roundtrip(request), want, "for request '{request}'");
        // Nothing was published and the connection still serves.
        let info = roundtrip("INDEXINFO");
        assert!(
            info.contains("points=200") && info.contains("epoch=0"),
            "'{request}' must not mutate anything, got: {info}"
        );
    }

    // The connection and the index survived the whole gauntlet.
    assert_eq!(roundtrip("PING"), "PONG");
    let hits = parse_ok_response(&roundtrip(&good_query)).unwrap();
    assert_eq!(hits.len(), 3);
    assert_eq!(hits[0].1, 0.0);

    // And a *valid* mutation still works afterwards.
    assert_eq!(
        roundtrip("INSERT 9 9 9 9 9 9"),
        "OK id=200 epoch=1 points=201"
    );

    assert_eq!(roundtrip("QUIT"), "BYE");
    handle.shutdown();
}

#[test]
fn shutdown_stops_accepting() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let engine = Engine::new(
        PmLsh::build(generator.dataset(), PmLshParams::paper_defaults()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
    let addr = handle.addr();
    handle.shutdown();
    // The listener is gone: either the connection is refused outright or
    // it closes without ever answering.
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut reader = BufReader::new(&stream);
        (&stream).write_all(b"PING\n").ok();
        let mut response = String::new();
        let n = reader.read_line(&mut response).unwrap_or(0);
        assert_eq!(n, 0, "server answered '{}' after shutdown", response.trim());
    }
}

/// [`ServerHandle::set_auth_token`] swaps the accepted token without a
/// restart: the old token is rejected afterwards, the new one accepted,
/// connections that already authenticated stay authenticated, and
/// `None` turns the gate off entirely.
#[test]
fn auth_token_hot_swap() {
    let data = blob(200, 6, 90);
    let engine = Engine::new(
        PmLsh::build(data, PmLshParams::default()),
        EngineConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let router = Router::with_engine("default", engine).unwrap();
    let config = ServerConfig {
        auth_token: Some("old-token".to_string()),
        ..Default::default()
    };
    let handle = serve_router(router, ("127.0.0.1", 0), config).expect("bind port 0");
    let addr = handle.addr();

    let connect = || {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    };
    fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), line: &str) -> String {
        conn.1.write_all(line.as_bytes()).unwrap();
        conn.1.write_all(b"\n").unwrap();
        let mut response = String::new();
        conn.0.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }

    let mut veteran = connect();
    assert_eq!(
        roundtrip(&mut veteran, "AUTH old-token"),
        "OK authenticated"
    );

    handle.set_auth_token(Some("new-token".to_string()));

    // A fresh connection: the old token is dead, the new one works.
    let mut fresh = connect();
    assert_eq!(roundtrip(&mut fresh, "AUTH old-token"), "ERR bad token");
    assert_eq!(roundtrip(&mut fresh, "AUTH new-token"), "OK authenticated");

    // The veteran's authenticated state survived the swap: a mutating
    // verb goes through without re-authing.
    assert_eq!(
        roundtrip(&mut veteran, "INSERT 1 2 3 4 5 6"),
        "OK id=200 epoch=1 points=201"
    );

    // Swapping to None opens the server entirely.
    handle.set_auth_token(None);
    let mut open = connect();
    assert_eq!(
        roundtrip(&mut open, "AUTH whatever"),
        "OK authentication not required"
    );
    assert_eq!(
        roundtrip(&mut open, "DELETE 200"),
        "OK deleted 200 epoch=2 points=200"
    );

    handle.shutdown();
}

/// Per-index connection quotas: at `max_connections_per_index` live
/// connections on one index, further accepts (against the default index)
/// are refused and `USE` into the full index errors without disturbing
/// the connection's current selection.
#[test]
fn per_index_connection_quota() {
    let config = EngineConfig {
        threads: 1,
        ..Default::default()
    };
    let router = Router::new();
    router
        .attach(
            "alpha",
            Engine::new(
                PmLsh::build(blob(200, 6, 91), PmLshParams::default()),
                config,
            ),
        )
        .unwrap();
    router
        .attach(
            "beta",
            Engine::new(
                PmLsh::build(blob(200, 8, 92), PmLshParams::default()),
                config,
            ),
        )
        .unwrap();
    let server_config = ServerConfig {
        max_connections_per_index: 2,
        ..Default::default()
    };
    let handle = serve_router(router, ("127.0.0.1", 0), server_config).expect("bind port 0");
    let addr = handle.addr();

    let connect = || {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    };
    fn roundtrip(conn: &mut (BufReader<TcpStream>, TcpStream), line: &str) -> String {
        conn.1.write_all(line.as_bytes()).unwrap();
        conn.1.write_all(b"\n").unwrap();
        let mut response = String::new();
        conn.0.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }

    // Two connections fill the default index's quota (PING roundtrips
    // prove both are admitted before the third races in).
    let mut first = connect();
    let mut second = connect();
    assert_eq!(roundtrip(&mut first, "PING"), "PONG");
    assert_eq!(roundtrip(&mut second, "PING"), "PONG");

    // The third is refused at accept — the default index is full.
    let over = TcpStream::connect(addr).expect("TCP connect still succeeds");
    let mut reader = BufReader::new(over);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply.trim_end(), "ERR index 'alpha' at connection capacity");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "over-quota connection must be closed");

    // USE moves a connection's slot between quotas: alpha frees up...
    assert_eq!(roundtrip(&mut first, "USE beta"), "OK using beta");
    let mut third = connect();
    assert_eq!(roundtrip(&mut third, "PING"), "PONG");

    // ...and a full target index rejects the switch while leaving the
    // connection on its current index, fully serviceable.
    assert_eq!(roundtrip(&mut second, "USE beta"), "OK using beta");
    assert_eq!(
        roundtrip(&mut third, "USE beta"),
        "ERR index 'beta' at connection capacity"
    );
    let info = roundtrip(&mut third, "INDEXINFO");
    assert!(
        info.starts_with("INDEXINFO name=alpha"),
        "a refused USE must not move the connection: {info}"
    );

    // Closing a quota holder frees the slot once the reactor reaps it.
    drop(second);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.connections() > 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(roundtrip(&mut third, "USE beta"), "OK using beta");

    handle.shutdown();
}

/// Satellite of the sharded engine: a scatter-gather query already
/// fanned out across `S = 4` shards when `shutdown_within` fires must
/// complete every leg, merge, and deliver its full `OK` reply intact —
/// the drain counts a logical query as in-flight until the *gather* is
/// done, not any single shard's leg.
#[test]
fn drain_completes_inflight_scatter_gather_query() {
    let data = blob(800, 16, 52);
    let q = data.point(5).to_vec();
    // The same wide-open micro-batch window as the monolithic drain
    // test, but per shard: each of the four fan-out legs parks in its
    // own shard's batcher for ~800 ms, so shutdown provably lands while
    // the fan-out is mid-flight.
    let sharded = pm_lsh_engine::ShardedEngine::build(
        &data,
        PmLshParams::default(),
        BuildOptions::default(),
        4,
        EngineConfig {
            threads: 1,
            batch_size: 64,
            max_wait: Duration::from_millis(800),
            ..Default::default()
        },
    );
    let handle = serve(sharded.clone(), ("127.0.0.1", 0)).expect("bind port 0");
    let addr = handle.addr();

    let mut line = String::from("QUERY 5");
    for v in &q {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    line.push('\n');

    let client = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let mut next = String::new();
        reader.read_line(&mut next).unwrap();
        (reply.trim_end().to_string(), next.trim_end().to_string())
    });

    // Let the handler enqueue all four legs, then drain mid-fan-out.
    std::thread::sleep(Duration::from_millis(250));
    let report = handle.shutdown_within(Duration::from_secs(30));
    assert!(report.drained, "drain did not complete: {report:?}");
    assert_eq!(report.forced, 0, "no socket should need force-closing");

    let (reply, next) = client.join().expect("client thread");
    let served = parse_ok_response(&reply).expect("intact OK reply across shutdown");
    let direct: Vec<(u32, f32)> = sharded
        .query(&q, 5)
        .neighbors
        .iter()
        .map(|n| (n.id, n.dist))
        .collect();
    assert_eq!(
        served, direct,
        "drained scatter-gather reply diverged from the in-process answer"
    );
    assert_eq!(next, "ERR server shutting down");
}
