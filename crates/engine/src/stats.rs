//! Aggregate serving statistics: throughput, latency quantiles and summed
//! per-query execution counters.
//!
//! Workers record into a lock-free [`StatsCollector`] (atomic counters plus
//! a geometrically-bucketed latency histogram); [`EngineStats`] is a cheap
//! point-in-time snapshot. Quantiles are read from the histogram, so they
//! are exact to within one bucket (~25% relative width) — plenty for the
//! p50/p99 scaling curves the bench crate draws, at zero coordination cost
//! on the hot path.

use pm_lsh_core::QueryStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets. Bucket `i` covers latencies around
/// `GROWTH^i` nanoseconds; 256 buckets reach far beyond any real latency.
const BUCKETS: usize = 256;

/// Geometric growth factor between adjacent bucket boundaries.
const GROWTH: f64 = 1.25;

/// A point-in-time snapshot of an engine's serving statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Queries answered since the engine started.
    pub queries: u64,
    /// Mean throughput over the engine's lifetime, in queries per second.
    pub qps: f64,
    /// Mean per-query latency in milliseconds, measured from enqueue to
    /// completion — queue wait included. Note that `query_batch` enqueues
    /// its whole burst at one instant, so under a large batch these
    /// figures are dominated by position in the queue, exactly as they
    /// would be for a client that submitted the burst over a socket.
    pub mean_ms: f64,
    /// Median enqueue-to-completion latency, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile enqueue-to-completion latency, in milliseconds.
    pub p99_ms: f64,
    /// Micro-batches formed by the request queue.
    pub batches: u64,
    /// Mean requests per micro-batch (1.0 when the queue never coalesces).
    pub mean_batch: f64,
    /// Execution counters summed over every answered query.
    pub query_stats: QueryStats,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} qps={:.1} mean_ms={:.3} p50_ms={:.3} p99_ms={:.3} \
             batches={} mean_batch={:.2} candidates={} proj_dists={} rounds={}",
            self.queries,
            self.qps,
            self.mean_ms,
            self.p50_ms,
            self.p99_ms,
            self.batches,
            self.mean_batch,
            self.query_stats.candidates_verified,
            self.query_stats.projected_dist_computations,
            self.query_stats.rounds,
        )
    }
}

/// Shared accumulator the worker pool and batch queue record into.
#[derive(Debug)]
pub(crate) struct StatsCollector {
    started: Instant,
    queries: AtomicU64,
    total_latency_ns: AtomicU64,
    latency_buckets: Vec<AtomicU64>,
    candidates_verified: AtomicU64,
    projected_dist_computations: AtomicU64,
    rounds: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
}

impl StatsCollector {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            total_latency_ns: AtomicU64::new(0),
            latency_buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            candidates_verified: AtomicU64::new(0),
            projected_dist_computations: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
        }
    }

    /// Records one answered query: its end-to-end latency and counters.
    pub(crate) fn record_query(&self, latency: Duration, stats: &QueryStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.total_latency_ns.fetch_add(ns, Ordering::Relaxed);
        self.latency_buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.candidates_verified
            .fetch_add(stats.candidates_verified as u64, Ordering::Relaxed);
        self.projected_dist_computations
            .fetch_add(stats.projected_dist_computations, Ordering::Relaxed);
        self.rounds
            .fetch_add(stats.rounds as u64, Ordering::Relaxed);
    }

    /// Records one micro-batch of `len` coalesced requests.
    pub(crate) fn record_batch(&self, len: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(len as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> EngineStats {
        // Read the histogram buckets *before* the query counter. A writer
        // in `record_query` bumps `queries` first and its latency bucket
        // second, so sampling in the opposite order guarantees the counter
        // we report is never ahead of the histogram mass the quantiles are
        // computed from. (`quantile_ms` additionally derives its rank from
        // the summed bucket counts, not from `queries`, so a torn read can
        // shift a quantile by at most one in-flight sample — it can never
        // fall off the end of the histogram into the ~5e15 ms sentinel
        // bucket.)
        let counts: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let queries = self.queries.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let total_ns = self.total_latency_ns.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        EngineStats {
            queries,
            qps: queries as f64 / elapsed,
            mean_ms: if queries == 0 {
                0.0
            } else {
                total_ns as f64 / queries as f64 / 1e6
            },
            p50_ms: quantile_ms(&counts, 0.50),
            p99_ms: quantile_ms(&counts, 0.99),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            query_stats: QueryStats {
                candidates_verified: self.candidates_verified.load(Ordering::Relaxed) as usize,
                projected_dist_computations: self
                    .projected_dist_computations
                    .load(Ordering::Relaxed),
                rounds: self.rounds.load(Ordering::Relaxed).min(u32::MAX as u64) as u32,
            },
        }
    }
}

fn bucket_index(latency_ns: u64) -> usize {
    if latency_ns <= 1 {
        return 0;
    }
    (((latency_ns as f64).ln() / GROWTH.ln()) as usize).min(BUCKETS - 1)
}

/// Representative latency of bucket `i`: the geometric middle of its range.
fn bucket_value_ns(i: usize) -> f64 {
    GROWTH.powi(i as i32) * GROWTH.sqrt()
}

/// Reads quantile `q` out of a latency histogram. The rank is derived
/// from the histogram's own summed counts (never from an external total,
/// which can race ahead of the buckets), so the walk always terminates
/// inside the recorded mass; the defensive fall-through returns the last
/// *non-empty* bucket rather than the empty top sentinel.
fn quantile_ms(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_value_ns(i) / 1e6;
        }
    }
    counts
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0.0, |i| bucket_value_ns(i) / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        for ns in [1u64, 10, 100, 1_000, 100_000, 1_000_000, 1_000_000_000] {
            let b = bucket_index(ns);
            assert!(b >= last, "bucket({ns}) = {b} regressed below {last}");
            last = b;
        }
        assert!(last < BUCKETS);
    }

    #[test]
    fn bucket_resolution_is_within_growth_factor() {
        for ns in [537u64, 12_345, 9_876_543] {
            let mid = bucket_value_ns(bucket_index(ns));
            let ratio = mid / ns as f64;
            assert!(
                (1.0 / GROWTH..=GROWTH).contains(&ratio),
                "bucket mid {mid:.0} vs {ns}: ratio {ratio:.3}"
            );
        }
    }

    #[test]
    fn snapshot_reports_quantiles_and_sums() {
        let c = StatsCollector::new();
        for i in 1..=100u64 {
            let qs = QueryStats {
                candidates_verified: 2,
                projected_dist_computations: 3,
                rounds: 1,
            };
            c.record_query(Duration::from_micros(i * 10), &qs);
        }
        c.record_batch(4);
        let s = c.snapshot();
        assert_eq!(s.queries, 100);
        assert_eq!(s.query_stats.candidates_verified, 200);
        assert_eq!(s.query_stats.projected_dist_computations, 300);
        assert_eq!(s.query_stats.rounds, 100);
        assert_eq!(s.batches, 1);
        assert!((s.mean_batch - 4.0).abs() < 1e-12);
        // p50 should sit near 0.5 ms, p99 near 1 ms, within bucket slop.
        assert!(s.p50_ms > 0.3 && s.p50_ms < 0.8, "p50 {}", s.p50_ms);
        assert!(s.p99_ms > 0.7 && s.p99_ms < 1.4, "p99 {}", s.p99_ms);
        assert!(s.p50_ms <= s.p99_ms);
        assert!(s.qps > 0.0);
        let line = s.to_string();
        assert!(
            line.contains("queries=100") && line.contains("candidates=200"),
            "{line}"
        );
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = StatsCollector::new().snapshot();
        assert_eq!(s.queries, 0);
        assert_eq!(s.mean_ms, 0.0);
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.p99_ms, 0.0);
    }

    /// Regression for the sentinel-bucket race: `record_query` bumps the
    /// query counter before the histogram bucket, so a snapshot taken
    /// between the two writes used to compute a rank beyond the summed
    /// bucket counts and fall through to `bucket_value_ns(BUCKETS - 1)`
    /// (~5e15 ms). Hammer the collector from several writers while a
    /// reader snapshots in a tight loop; every observed quantile must
    /// stay near the recorded latencies (~1 ms), far below the sentinel.
    #[test]
    fn concurrent_snapshots_never_report_the_sentinel_bucket() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let collector = Arc::new(StatsCollector::new());
        let stop = Arc::new(AtomicBool::new(false));
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 20_000;
        // Any sane recorded latency is ~1 ms; the sentinel bucket is
        // ~5e15 ms. A generous 1e6 ms ceiling separates the two by nine
        // orders of magnitude without being timing-sensitive.
        const CEILING_MS: f64 = 1e6;

        std::thread::scope(|scope| {
            let reader = {
                let collector = Arc::clone(&collector);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut snapshots = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = collector.snapshot();
                        assert!(
                            s.p50_ms < CEILING_MS && s.p99_ms < CEILING_MS,
                            "sentinel bucket leaked into quantiles: p50={} p99={}",
                            s.p50_ms,
                            s.p99_ms
                        );
                        assert!(s.p50_ms <= s.p99_ms, "p50 {} > p99 {}", s.p50_ms, s.p99_ms);
                        snapshots += 1;
                    }
                    snapshots
                })
            };
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let collector = Arc::clone(&collector);
                    scope.spawn(move || {
                        let qs = QueryStats {
                            candidates_verified: 1,
                            projected_dist_computations: 1,
                            rounds: 1,
                        };
                        for i in 0..PER_WRITER {
                            let ns = 1_000_000 + (w as u64 * PER_WRITER + i) % 1_000;
                            collector.record_query(Duration::from_nanos(ns), &qs);
                        }
                    })
                })
                .collect();
            for writer in writers {
                writer.join().expect("writer thread");
            }
            stop.store(true, Ordering::Relaxed);
            let snapshots = reader.join().expect("reader thread");
            assert!(snapshots > 0, "reader never snapshotted");
        });

        let s = collector.snapshot();
        assert_eq!(s.queries, WRITERS as u64 * PER_WRITER);
        // All latencies were ~1 ms; the quantiles must land in-bucket.
        assert!(s.p50_ms > 0.5 && s.p50_ms < 2.0, "p50 {}", s.p50_ms);
        assert!(s.p99_ms > 0.5 && s.p99_ms < 2.0, "p99 {}", s.p99_ms);
    }
}
