//! lint: hot-path
//!
//! The readiness-notification core under the TCP serving layer: a
//! std-only `epoll(7)` wrapper (raw syscalls through `std::os::fd`, no
//! external crates) plus the self-pipe waker that lets worker-pool
//! completions interrupt a blocked `epoll_wait`.
//!
//! The serving reactor in [`crate::server`] is a single event loop over
//! non-blocking sockets; this module is the thin platform seam it stands
//! on. Three pieces:
//!
//! * [`Poller`] — register/modify/deregister file descriptors under a
//!   caller-chosen `u64` token and [`Interest`], then [`Poller::wait`]
//!   for readiness [`Event`]s with an optional timeout. Level-triggered
//!   on purpose: the reactor never has to remember whether it finished
//!   draining a socket, it just gets woken again.
//! * [`Waker`] / [`WakeReceiver`] — an anonymous pipe
//!   (`std::io::pipe`, both ends non-blocking). Any thread calls
//!   [`Waker::wake`]; the reactor registers the read end like any other
//!   fd and [`WakeReceiver::drain`]s it when it fires. A `pending` flag
//!   collapses wake storms into one pipe byte, so completing a thousand
//!   queries costs one `write(2)`, not a full pipe.
//!
//! Backends: `epoll` on Linux/Android, `poll(2)` on the other unixes
//! (the workspace has no libc dependency, so both declare their own
//! `extern "C"` prototypes — the constants are the stable kernel ABI).

#[cfg(not(unix))]
compile_error!(
    "the pm-lsh serving reactor needs a unix readiness API (epoll/poll); \
     non-unix platforms are not supported"
);

use std::io::{self, PipeReader, PipeWriter, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What a registered file descriptor wants to be woken for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub(crate) const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Data (or EOF, or a peer half-close) is waiting to be read.
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
    /// The peer is gone (`EPOLLHUP`/`EPOLLERR`); reported even with an
    /// empty [`Interest`], which is what lets the reactor notice a
    /// vanished client while a request of theirs is still in flight.
    pub hangup: bool,
}

// ---------------------------------------------------------------------------
// epoll backend (Linux/Android)
// ---------------------------------------------------------------------------

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    use std::ffi::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`. Packed on x86-64 (the kernel ABI), naturally
    /// aligned everywhere else — the same definition libc ships.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }
}

/// The readiness selector (epoll backend).
#[cfg(any(target_os = "linux", target_os = "android"))]
#[derive(Debug)]
pub(crate) struct Poller {
    epfd: std::os::fd::OwnedFd,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
impl Poller {
    pub(crate) fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; the flag is a valid value.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        let epfd = unsafe { std::os::fd::FromRawFd::from_raw_fd(fd) };
        Ok(Self { epfd })
    }

    fn bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.read {
            // RDHUP rides along with read interest so a half-closing peer
            // surfaces as "readable" (the read then returns 0).
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.write {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn ctl(
        &self,
        op: std::ffi::c_int,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: Self::bits(interest),
            data: token,
        };
        // SAFETY: `ev` is a live stack value for the duration of the call;
        // the kernel validates the fds and op.
        if unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with `interest`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest of an already-registered `fd`.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`; its token stops firing.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::default())
    }

    /// Blocks for up to `timeout` (forever on `None`) and fills `events`
    /// with whatever became ready. An interrupted wait returns success
    /// with no events — the caller's loop re-derives its deadlines.
    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        events.clear();
        let timeout_ms: std::ffi::c_int = match timeout {
            None => -1,
            // Round up: a 0 ms wait on a sub-millisecond deadline would
            // spin the loop at 100% CPU until the deadline passes.
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as std::ffi::c_int,
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 64];
        // SAFETY: `buf` holds exactly the 64 entries we advertise; the
        // kernel writes at most that many.
        let n = unsafe { sys::epoll_wait(self.epfd.as_raw_fd(), buf.as_mut_ptr(), 64, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in buf.iter().take(n as usize) {
            let (bits, token) = (ev.events, ev.data);
            events.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend (other unixes — macOS and the BSDs)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
mod sys {
    use std::ffi::{c_int, c_short, c_uint};

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0x0004;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }
}

/// The readiness selector (portable `poll(2)` backend).
#[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
#[derive(Debug, Default)]
pub(crate) struct Poller {
    regs: std::sync::Mutex<Vec<(RawFd, u64, Interest)>>,
}

#[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
impl Poller {
    pub(crate) fn new() -> io::Result<Self> {
        Ok(Self::default())
    }

    /// Registers `fd` under `token` with `interest`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        // lint: allow(hot-path) -- portable poll(2) fallback, not the Linux epoll production path
        self.regs
            .lock()
            .expect("poller registrations poisoned")
            .push((fd, token, interest));
        Ok(())
    }

    /// Replaces the interest of an already-registered `fd`.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        // lint: allow(hot-path) -- portable poll(2) fallback, not the Linux epoll production path
        let mut regs = self.regs.lock().expect("poller registrations poisoned");
        match regs.iter_mut().find(|(f, _, _)| *f == fd) {
            Some(reg) => {
                *reg = (fd, token, interest);
                Ok(())
            }
            None => Err(io::Error::from(io::ErrorKind::NotFound)),
        }
    }

    /// Deregisters `fd`; its token stops firing.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        // lint: allow(hot-path) -- portable poll(2) fallback, not the Linux epoll production path
        self.regs
            .lock()
            .expect("poller registrations poisoned")
            .retain(|(f, _, _)| *f != fd);
        Ok(())
    }

    /// Blocks for up to `timeout` (forever on `None`) and fills `events`.
    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        events.clear();
        // lint: allow(hot-path) -- portable poll(2) fallback, not the Linux epoll production path
        let regs = self
            .regs
            .lock()
            .expect("poller registrations poisoned")
            .clone();
        let mut fds: Vec<sys::PollFd> = regs
            .iter()
            .map(|&(fd, _, interest)| {
                let mut ev = 0;
                if interest.read {
                    ev |= sys::POLLIN;
                }
                if interest.write {
                    ev |= sys::POLLOUT;
                }
                sys::PollFd {
                    fd,
                    events: ev,
                    revents: 0,
                }
            })
            .collect();
        let timeout_ms: std::ffi::c_int = match timeout {
            None => -1,
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as std::ffi::c_int,
        };
        // SAFETY: `fds` is a live Vec whose length matches the count we pass.
        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_uint, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for (pfd, &(_, token, _)) in fds.iter().zip(&regs) {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: pfd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                writable: pfd.revents & sys::POLLOUT != 0,
                hangup: pfd.revents & (sys::POLLHUP | sys::POLLERR) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The waker (shared by both backends)
// ---------------------------------------------------------------------------

/// Puts `fd` into non-blocking mode (the workspace-local
/// `set_nonblocking` for fds std does not expose one on, i.e. pipes).
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL takes no pointer argument; the kernel validates `fd`.
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: F_SETFL takes a plain flag word, no pointers.
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The write half of the reactor's self-pipe: any thread may call
/// [`Waker::wake`] to interrupt a blocked [`Poller::wait`]. Cheap to call
/// from worker completions — consecutive wakes between two reactor
/// iterations collapse into one pipe byte.
#[derive(Debug)]
pub(crate) struct Waker {
    tx: PipeWriter,
    pending: AtomicBool,
}

impl Waker {
    /// Makes the reactor's current (or next) `wait` return promptly.
    pub(crate) fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            // The write end is non-blocking: a full pipe means wakeups are
            // already queued beyond any doubt, so a dropped byte is fine —
            // as is EPIPE after the reactor has exited.
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// The read half of the self-pipe, owned by the reactor thread and
/// registered in its [`Poller`] like any socket.
#[derive(Debug)]
pub(crate) struct WakeReceiver {
    rx: PipeReader,
}

impl WakeReceiver {
    /// The fd to register in the poller (read interest).
    pub(crate) fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Empties the pipe and re-arms `waker`. Clearing the pending flag
    /// *before* reading keeps the pair race-free: a wake that lands
    /// mid-drain at worst writes one extra byte and re-fires the poller.
    pub(crate) fn drain(&self, waker: &Waker) {
        waker.pending.store(false, Ordering::SeqCst);
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }
}

/// A connected [`Waker`]/[`WakeReceiver`] pair over a fresh anonymous
/// pipe, both ends non-blocking.
pub(crate) fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (rx, tx) = io::pipe()?;
    set_nonblocking(rx.as_raw_fd())?;
    set_nonblocking(tx.as_raw_fd())?;
    Ok((
        Waker {
            tx,
            pending: AtomicBool::new(false),
        },
        WakeReceiver { rx },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn wait_times_out_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let (waker, receiver) = wake_pair().unwrap();
        poller.add(receiver.fd(), 7, Interest::READ).unwrap();
        let waker = std::sync::Arc::new(waker);
        let wake_from_afar = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            wake_from_afar.wake();
            wake_from_afar.wake(); // storms collapse into one byte
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Join before draining: a wake that lands mid-drain is allowed to
        // write a fresh byte (by design), which would re-fire the poller.
        handle.join().unwrap();
        receiver.drain(&waker);
        // Drained and re-armed: the next wait times out quietly...
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // ...and the next wake fires again.
        waker.wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .add(
                server_side.as_raw_fd(),
                2,
                Interest {
                    read: true,
                    write: true,
                },
            )
            .unwrap();
        // A fresh socket is writable immediately.
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        // Drop write interest: an idle socket stops reporting entirely.
        poller
            .modify(server_side.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 2));

        // Peer data arrives -> readable; peer close -> readable (EOF).
        use std::io::Write as _;
        let mut client = client;
        client.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));

        poller.delete(server_side.as_raw_fd()).unwrap();
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            !events.iter().any(|e| e.token == 2),
            "deleted fds stay silent"
        );
    }
}
