//! A fixed pool of query workers over `std::thread` + `std::sync::mpsc`.
//!
//! Every job carries the immutable [`PmLsh`] snapshot it must be answered
//! against, pinned by the caller at enqueue time — the index is read-only
//! after build, so the queries themselves need no synchronization at all;
//! the only shared mutable state is the job channel and the stats
//! collector. Jobs travel in small vectors (a micro-batch shard), so one
//! channel receive and one mutex acquisition amortize over several
//! queries. Because the snapshot is pinned per request (and a whole
//! `query_batch` shares one pin), a concurrent [`crate::Engine::reindex`]
//! swap never disturbs running work: requests enqueued before the swap
//! are answered by the old index, requests after it by the new one, and a
//! single batch is never split across epochs.

use crate::stats::StatsCollector;
use pm_lsh_core::{PmLsh, QueryContext, QueryResult};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Where a finished (or crashed) job delivers its result. The blocking
/// callers (`Engine::try_query`, `query_batch`) use [`ReplySink::Channel`]
/// and `recv()`; the serving reactor uses [`ReplySink::Callback`] so a
/// worker completion can wake the event loop instead of a parked thread.
pub(crate) enum ReplySink {
    /// `send((slot, result))` on success; dropped without a send when the
    /// job panicked, so the caller's `recv()` errors out.
    Channel(Sender<(usize, QueryResult)>),
    /// Always invoked exactly once — `None` means the job panicked.
    Callback(Box<dyn FnOnce(usize, Option<QueryResult>) + Send>),
}

impl ReplySink {
    /// Delivers the job's outcome. `None` marks a worker panic.
    pub(crate) fn complete(self, slot: usize, result: Option<QueryResult>) {
        match self {
            // A dropped receiver means the caller gave up waiting; a
            // panicked job drops the sender so recv() fails with Internal.
            ReplySink::Channel(tx) => {
                if let Some(result) = result {
                    let _ = tx.send((slot, result));
                }
            }
            ReplySink::Callback(cb) => cb(slot, result),
        }
    }
}

/// Test-only fault injection: a query whose FIRST component equals this
/// finite, validation-passing sentinel panics inside the worker's
/// catch_unwind, exercising the dropped-reply path
/// (`Engine::try_query -> Err(QueryError::Internal)`, `ERR internal
/// error` on the wire) that no validated input can reach. Keying the
/// injection on the job itself keeps concurrently running tests from
/// stealing each other's fault.
#[cfg(test)]
pub(crate) const CRASH_TEST_SENTINEL: f32 = 8.0e30;

/// One kNN request travelling through the pool.
pub(crate) struct QueryJob {
    /// Caller-side position, so batched results keep input order.
    pub slot: usize,
    /// The snapshot this request was validated against and must be
    /// answered by (an `Arc` clone: a few ns, and what makes reindex
    /// swaps invisible to in-flight work).
    pub snapshot: Arc<PmLsh>,
    /// The query point (owned: the caller may return before workers run).
    pub query: Vec<f32>,
    /// Neighbors requested.
    pub k: usize,
    /// `Some(pooled_budget)` when this job is one shard's leg of a
    /// scatter-gather query: the worker answers it with
    /// [`PmLsh::query_fanout_with_context`], which spends the pooled
    /// candidate budget instead of stopping at the local (non-final)
    /// top-k.
    pub fanout_budget: Option<usize>,
    /// When the request entered the engine; latency is measured from here.
    pub enqueued: Instant,
    /// Where the worker delivers `(slot, result)`.
    pub reply: ReplySink,
}

/// The fixed worker pool. Dropping it closes the job channel and joins
/// every worker.
pub(crate) struct WorkerPool {
    jobs: Option<Sender<Vec<QueryJob>>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    pub(crate) fn new(threads: usize, stats: Arc<StatsCollector>) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Vec<QueryJob>>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("pmlsh-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &stats))
                    .expect("failed to spawn engine worker thread")
            })
            .collect();
        Self {
            jobs: Some(tx),
            workers,
            threads,
        }
    }

    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Hands a shard of jobs to whichever worker picks it up first.
    pub(crate) fn submit(&self, shard: Vec<QueryJob>) {
        if shard.is_empty() {
            return;
        }
        self.jobs
            .as_ref()
            .expect("worker pool already shut down")
            .send(shard)
            .expect("all engine workers exited");
    }

    /// Splits `jobs` into one contiguous shard per worker and submits them,
    /// so a batch costs at most `threads` channel sends while still
    /// spreading across the whole pool. The single place sharding policy
    /// lives — both the batcher and `Engine::query_batch` go through here.
    pub(crate) fn submit_sharded(&self, mut jobs: Vec<QueryJob>) {
        if jobs.is_empty() {
            return;
        }
        let shard_len = jobs.len().div_ceil(self.threads);
        while jobs.len() > shard_len {
            let tail = jobs.split_off(shard_len);
            self.submit(std::mem::replace(&mut jobs, tail));
        }
        self.submit(jobs);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker's recv() fail and exit.
        drop(self.jobs.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Vec<QueryJob>>>, stats: &StatsCollector) {
    // One long-lived QueryContext per worker thread: after the first few
    // queries its buffers reach the working-set high-water mark and the
    // whole query hot path stops allocating. The context is not tied to a
    // snapshot, so it survives reindex swaps (buffers resize on the next
    // query if the dimensionality changed), and a panicking query leaves
    // only stale-but-cleared-on-reuse state behind.
    let mut ctx = QueryContext::new();
    loop {
        // Hold the mutex only for the receive itself, never during a query.
        let shard = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling worker panicked mid-recv
        };
        let Ok(shard) = shard else { return };
        for job in shard {
            // Isolate panics to the offending job: the worker survives (the
            // pool never respawns threads), the rest of the shard still
            // runs, and only the panicking job's caller sees its reply
            // channel close.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(test)]
                if job.query.first() == Some(&CRASH_TEST_SENTINEL) {
                    panic!("injected worker panic (test only)");
                }
                match job.fanout_budget {
                    Some(budget) => job
                        .snapshot
                        .query_fanout_with_context(&job.query, job.k, budget, &mut ctx),
                    None => job.snapshot.query_with_context(&job.query, job.k, &mut ctx),
                }
            }));
            match outcome {
                Ok(result) => {
                    stats.record_query(job.enqueued.elapsed(), &result.stats);
                    job.reply.complete(job.slot, Some(result));
                }
                Err(_) => job.reply.complete(job.slot, None),
            }
        }
    }
}
