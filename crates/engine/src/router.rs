//! Multi-index routing: a named map of [`ShardedEngine`]s served by one
//! process.
//!
//! PR 1–3 made one process serve exactly one dataset; the router lifts
//! that to several. It is the same snapshot-cell idea one level up: the
//! engines themselves are immutable-snapshot machines, and the router is
//! the single mutable slot saying *which engines exist* — a
//! `RwLock<HashMap<String, ShardedEngine>>` read once per routed
//! command, never on the per-query hot path inside an engine. Every
//! attached entry is a [`ShardedEngine`]; a plain [`crate::Engine`]
//! attaches as a single-shard one (`impl Into<ShardedEngine>`), so the
//! monolithic call sites read unchanged.
//!
//! The TCP layer resolves a connection's *current* index name through
//! [`Router::get`] on every routed verb, so an [`Router::attach`] or
//! [`Router::detach`] is visible to every connection at its next command:
//! a detached name answers `ERR index '<name>' is not attached` instead
//! of querying a ghost. Engines are cheaply clonable (everything behind
//! `Arc`s), so `get` hands out clones and a detached engine keeps
//! answering in-flight work until the last clone drops.
//!
//! Names are wire-protocol tokens: 1–64 characters from
//! `[A-Za-z0-9_.-]` (no whitespace — the protocol is space-delimited).
//! The first index ever attached becomes the *default* new connections
//! start on; detaching it promotes the lexicographically smallest
//! remaining name (or clears the default when the router empties).

use crate::ShardedEngine;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Longest accepted index name (a wire-protocol token).
pub const MAX_INDEX_NAME_LEN: usize = 64;

/// A cheaply clonable, thread-safe map of named [`ShardedEngine`]s.
///
/// All clones share one underlying map; the TCP accept loop hands a clone
/// to every connection handler.
#[derive(Clone, Default)]
pub struct Router {
    inner: Arc<RouterInner>,
}

#[derive(Default)]
struct RouterInner {
    indexes: RwLock<HashMap<String, ShardedEngine>>,
    /// Name new connections start on. Set by the first attach, repointed
    /// to the smallest remaining name when its index is detached.
    default: Mutex<Option<String>>,
}

impl Router {
    /// An empty router: no index attached, no default. Clients must
    /// `ATTACH` (or the host must [`Router::attach`]) before querying.
    pub fn new() -> Self {
        Self::default()
    }

    /// A router pre-loaded with one engine, which becomes the default.
    pub fn with_engine(name: &str, engine: impl Into<ShardedEngine>) -> Result<Self, RouterError> {
        let router = Self::new();
        router.attach(name, engine)?;
        Ok(router)
    }

    /// Validates an index name against the wire-token rules
    /// (1..=[`MAX_INDEX_NAME_LEN`] chars from `[A-Za-z0-9_.-]`).
    pub fn validate_name(name: &str) -> Result<(), RouterError> {
        let ok = !name.is_empty()
            && name.len() <= MAX_INDEX_NAME_LEN
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'));
        if ok {
            Ok(())
        } else {
            Err(RouterError::InvalidName(name.to_string()))
        }
    }

    /// Attaches `engine` under `name`. The first attach sets the default
    /// index new connections start on.
    pub fn attach(&self, name: &str, engine: impl Into<ShardedEngine>) -> Result<(), RouterError> {
        Self::validate_name(name)?;
        let engine = engine.into();
        let mut indexes = self.inner.indexes.write().expect("router lock poisoned");
        if indexes.contains_key(name) {
            return Err(RouterError::DuplicateIndex(name.to_string()));
        }
        indexes.insert(name.to_string(), engine);
        let mut default = self.inner.default.lock().expect("router default poisoned");
        if default.is_none() {
            *default = Some(name.to_string());
        }
        Ok(())
    }

    /// Detaches and returns the engine under `name`. In-flight work on
    /// clones of it completes normally; connections whose current index
    /// was `name` get `ERR index ... is not attached` on their next
    /// routed command. Detaching the default promotes the smallest
    /// remaining name.
    pub fn detach(&self, name: &str) -> Result<ShardedEngine, RouterError> {
        let mut indexes = self.inner.indexes.write().expect("router lock poisoned");
        let engine = indexes
            .remove(name)
            .ok_or_else(|| RouterError::UnknownIndex(name.to_string()))?;
        let mut default = self.inner.default.lock().expect("router default poisoned");
        if default.as_deref() == Some(name) {
            *default = indexes.keys().min().cloned();
        }
        Ok(engine)
    }

    /// A clone of the engine under `name`, if attached.
    pub fn get(&self, name: &str) -> Option<ShardedEngine> {
        self.inner
            .indexes
            .read()
            .expect("router lock poisoned")
            .get(name)
            .cloned()
    }

    /// All attached names, sorted (the `LISTINDEXES` payload).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .indexes
            .read()
            .expect("router lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The index new connections start on (`None` when nothing is
    /// attached).
    pub fn default_name(&self) -> Option<String> {
        self.inner
            .default
            .lock()
            .expect("router default poisoned")
            .clone()
    }

    /// Number of attached indexes.
    pub fn len(&self) -> usize {
        self.inner
            .indexes
            .read()
            .expect("router lock poisoned")
            .len()
    }

    /// `true` when no index is attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("indexes", &self.names())
            .field("default", &self.default_name())
            .finish()
    }
}

/// Why a router operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterError {
    /// The name is empty, too long, or holds a non-token character.
    InvalidName(String),
    /// An index with this name is already attached.
    DuplicateIndex(String),
    /// No index with this name is attached.
    UnknownIndex(String),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::InvalidName(name) => write!(
                f,
                "invalid index name '{name}' (1..={MAX_INDEX_NAME_LEN} chars of [A-Za-z0-9_.-])"
            ),
            RouterError::DuplicateIndex(name) => {
                write!(f, "an index named '{name}' is already attached")
            }
            RouterError::UnknownIndex(name) => write!(f, "unknown index '{name}'"),
        }
    }
}

impl std::error::Error for RouterError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig};
    use pm_lsh_core::{PmLsh, PmLshParams};
    use pm_lsh_metric::Dataset;

    fn tiny_engine(value: f32) -> Engine {
        let ds = Dataset::from_rows(vec![vec![value, value], vec![value + 1.0, value]]);
        Engine::new(
            PmLsh::build(ds, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn attach_detach_and_default_promotion() {
        let router = Router::new();
        assert!(router.is_empty());
        assert_eq!(router.default_name(), None);

        router.attach("beta", tiny_engine(0.0)).unwrap();
        router.attach("alpha", tiny_engine(1.0)).unwrap();
        assert_eq!(router.default_name().as_deref(), Some("beta"));
        assert_eq!(router.names(), ["alpha", "beta"]);
        assert_eq!(router.len(), 2);

        assert_eq!(
            router.attach("beta", tiny_engine(2.0)).unwrap_err(),
            RouterError::DuplicateIndex("beta".to_string())
        );

        // Detaching the default promotes the smallest remaining name.
        router.detach("beta").unwrap();
        assert_eq!(router.default_name().as_deref(), Some("alpha"));
        assert!(router.get("beta").is_none());
        assert!(router.get("alpha").is_some());

        assert_eq!(
            router.detach("beta").unwrap_err(),
            RouterError::UnknownIndex("beta".to_string())
        );

        router.detach("alpha").unwrap();
        assert!(router.is_empty());
        assert_eq!(router.default_name(), None);
    }

    #[test]
    fn name_validation() {
        assert!(Router::validate_name("audio-v2.1_final").is_ok());
        assert!(Router::validate_name("").is_err());
        assert!(Router::validate_name("has space").is_err());
        assert!(Router::validate_name("newline\n").is_err());
        assert!(Router::validate_name(&"x".repeat(MAX_INDEX_NAME_LEN)).is_ok());
        assert!(Router::validate_name(&"x".repeat(MAX_INDEX_NAME_LEN + 1)).is_err());
    }

    #[test]
    fn detached_engine_clones_keep_answering() {
        let router = Router::with_engine("only", tiny_engine(0.0)).unwrap();
        let held = router.get("only").unwrap();
        router.detach("only").unwrap();
        // The clone taken before the detach still answers.
        let res = held.query(&[0.0, 0.0], 1);
        assert_eq!(res.neighbors.len(), 1);
    }
}
