//! Sharded scatter-gather serving: `S` independent [`Engine`]s behind the
//! monolithic engine's API.
//!
//! A [`ShardedEngine`] deals the dataset round-robin into `S` shards
//! (`pm_lsh_core::shard::partition`), builds one [`PmLsh`] per shard, and
//! gives every shard its own snapshot cell, worker pool and micro-batcher
//! — an [`Engine`] each. The pay-off over one monolithic engine:
//!
//! * **Build parallelism beyond the pivot regions.** The bulk loader's
//!   concurrency is bounded by the `s ≈ 5` pivot regions; `S` shards
//!   build `S` trees concurrently on top of that.
//! * **O(n/S) mutations.** Copy-on-write publication clones only the
//!   owning shard, so a single `INSERT`/`DELETE` pays `O(n/S)` instead of
//!   `O(n)`.
//!
//! # Scatter-gather and the βn + k budget
//!
//! [`ShardedEngine::query`] fans the query to every shard concurrently
//! (one pinned snapshot and one micro-batched request per shard), then
//! merges the `S` top-k answers through one [`TopK`] heap — `Neighbor`
//! orders by `(dist, id)`, so the merge is a deterministic total order.
//! Each fan-out leg runs Algorithm 2 *without* the line-4 early stop
//! (that test compares the final top-k against `c·r`, and no single
//! shard holds the final top-k) and spends the *pooled* budget
//! `B = min(⌈β·n⌉ + k, n)` computed over the total live count, clamped
//! to the shard's own size — see [`PmLsh::query_fanout_into`]. Because a
//! verified set is always a prefix of the projected-distance order, and
//! a point's rank within its shard never exceeds its global rank, every
//! candidate the monolithic engine verifies is verified by some shard:
//! the merged candidate pool is a superset of the monolith's, the
//! per-shard budgets sum to `Σ_s min(B, n_s) ≥ B = ⌈β·n⌉ + k`, and
//! `recall(sharded) ≥ recall(monolithic)` holds *deterministically*, not
//! just in expectation — the paper's §4.4 quality guarantee survives
//! partitioning. The price is aggregate verification work (up to `S·B`
//! candidates instead of `B`), spent on `S` trees of `n/S` points in
//! parallel, which is the classic scatter-gather latency-for-throughput
//! trade.
//!
//! # Global ids
//!
//! Clients see one flat id space; shards number rows locally. The two are
//! related by the interleaved bijection in [`pm_lsh_core::shard`]
//! (`global = local·S + shard`), and inserts go to the shard with the
//! fewest stored rows (ties to the lowest shard index), which keeps the
//! globally visible id sequence *identical* to a monolithic engine's —
//! freshly built or mid-churn. The equivalence harness in
//! `tests/sharded_parity.rs` and `tests/sharded_model.rs` holds a
//! monolithic twin to exactly that standard.
//!
//! With `S == 1` every entry point delegates to the single inner engine
//! (the id mapping degenerates to the identity), so a `ShardedEngine` of
//! one shard is bit-for-bit the monolithic engine.

use crate::batch::Request;
use crate::pool::{QueryJob, ReplySink};
use crate::{
    panic_for_query_error, try_validate, Engine, EngineConfig, IndexInfo, MutOp, MutationError,
    MutationReport, QueryError, ReindexError, ReindexReport, ReindexTicket,
};
use pm_lsh_core::shard::{owner, partition, to_global, to_local};
use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams, QueryResult, QueryStats};
use pm_lsh_metric::{Dataset, Neighbor, PointId, TopK};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

/// `S` independent [`Engine`]s serving one logical index — see the
/// module docs for the partitioning, budget and id-mapping story.
///
/// Cloning is cheap and shares every shard's pool, queue and statistics,
/// exactly like cloning an [`Engine`].
#[derive(Clone)]
pub struct ShardedEngine {
    shards: Vec<Engine>,
}

impl From<Engine> for ShardedEngine {
    fn from(engine: Engine) -> Self {
        Self {
            shards: vec![engine],
        }
    }
}

impl ShardedEngine {
    /// Partitions `data` round-robin into `shards` shards, builds one
    /// [`PmLsh`] per shard (each with `params` and `opts`), and spins up
    /// one [`Engine`] per shard with `config`.
    ///
    /// # Panics
    /// Panics when `shards` is zero or `data` holds fewer points than
    /// `shards` (every shard must serve a non-empty index).
    pub fn build(
        data: &Dataset,
        params: PmLshParams,
        opts: BuildOptions,
        shards: usize,
        config: EngineConfig,
    ) -> Self {
        assert!(shards > 0, "shard count must be positive");
        assert!(
            data.len() >= shards,
            "{} points cannot populate {shards} shards",
            data.len()
        );
        // One OS thread per shard: the builds are independent and
        // deterministic, so concurrency changes wall-clock only — this is
        // the "build parallelism beyond the pivot regions" the module
        // docs promise. `opts` still governs intra-shard threading.
        let indexes: Vec<PmLsh> = std::thread::scope(|scope| {
            let handles: Vec<_> = partition(data, shards)
                .into_iter()
                .map(|part| {
                    scope.spawn(move || PmLsh::build_with_opts(Arc::new(part), params, opts))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build panicked"))
                .collect()
        });
        Self::from_indexes(indexes, config)
    }

    /// Wraps pre-built per-shard indexes (the `.pmlsh` manifest load
    /// path) into engines; shard order is id-significant and must match
    /// the order they were built or saved in.
    ///
    /// # Panics
    /// Panics when `indexes` is empty.
    pub fn from_indexes(indexes: Vec<PmLsh>, config: EngineConfig) -> Self {
        assert!(!indexes.is_empty(), "a sharded engine needs >= 1 shard");
        Self {
            shards: indexes
                .into_iter()
                .map(|index| Engine::new(index, config))
                .collect(),
        }
    }

    /// Wraps already-running engines as shards (shard order is
    /// id-significant).
    ///
    /// # Panics
    /// Panics when `engines` is empty.
    pub fn from_engines(engines: Vec<Engine>) -> Self {
        assert!(!engines.is_empty(), "a sharded engine needs >= 1 shard");
        Self { shards: engines }
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines, in id order (shard `s` owns global ids
    /// `≡ s (mod S)`). Exposed for the parity/invariant test harness.
    pub fn shards(&self) -> &[Engine] {
        &self.shards
    }

    /// Original-space dimensionality served by every shard.
    pub fn dim(&self) -> usize {
        self.shards[0].index().data().dim()
    }

    /// The PM-LSH parameters the shards were built with (identical across
    /// shards by construction).
    pub fn params(&self) -> PmLshParams {
        *self.shards[0].index().params()
    }

    /// Live points across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index().len()).sum()
    }

    /// `false` — a served index is non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical snapshot generation: the *sum* of the shard epochs.
    /// Every single-point mutation bumps exactly one shard (+1) and a
    /// reindex bumps every shard (+S), so the sum is monotone and starts
    /// at 0, like the monolithic epoch.
    pub fn epoch(&self) -> u64 {
        self.shards.iter().map(Engine::epoch).sum()
    }

    /// Summed Algorithm 2 candidate budget across shards for one query —
    /// `Σ_s min(B, n_s)` with the pooled `B = min(⌈β·n⌉ + k, n)` every
    /// fan-out leg spends, which the parity harness proves is at least
    /// the monolithic `⌈β·n⌉ + k` (see the module docs).
    pub fn candidate_budget(&self, k: usize) -> usize {
        if self.shards.len() == 1 {
            return self.shards[0].index().candidate_budget(k);
        }
        let snaps: Vec<Arc<PmLsh>> = self.shards.iter().map(|s| s.index()).collect();
        let total: usize = snaps.iter().map(|s| s.len()).sum();
        let budget = pooled_budget(&snaps, total, k.min(total));
        snaps.iter().map(|s| budget.min(s.len())).sum()
    }

    /// A summary of the served state (the TCP `INDEXINFO` payload):
    /// points, epoch and budget-relevant counts summed over shards,
    /// parameters from shard 0 (identical everywhere), `reindexing` true
    /// while *any* shard rebuilds, `pct` the slowest shard's gauge.
    pub fn info(&self) -> IndexInfo {
        let mut merged = self.shards[0].info();
        merged.shards = self.shards.len();
        for shard in &self.shards[1..] {
            let info = shard.info();
            merged.points += info.points;
            merged.epoch += info.epoch;
            merged.reindexing |= info.reindexing;
            merged.pct = merged.pct.min(info.pct);
        }
        if merged.reindexing {
            merged.state = "building";
        }
        merged
    }

    /// Merged serving statistics. Logical query counts (`queries`, `qps`,
    /// `mean_ms`) come from shard 0 — every scatter-gather query visits
    /// every shard, so shard 0 sees each logical query exactly once. The
    /// quantiles `p50_ms`/`p99_ms` are the *worst* across shards: a
    /// scatter-gather answer is gated by its slowest leg, so the
    /// per-shard maximum is the conservative logical tail. Work counters
    /// aggregate over all shards (that is where the work actually
    /// happened): the per-query execution counters and `batches` sum,
    /// and `mean_batch` is the batches-weighted mean of the per-shard
    /// means, so `mean_batch × batches` remains the total number of
    /// coalesced requests — the invariant each shard's own pair obeys.
    pub fn stats(&self) -> crate::EngineStats {
        let mut merged = self.shards[0].stats();
        // Recover each shard's total coalesced-request count from its
        // (mean, count) pair so the merged pair multiplies back to the
        // true total instead of inheriting shard 0's mean verbatim.
        let mut batched_requests = merged.mean_batch * merged.batches as f64;
        for shard in &self.shards[1..] {
            let s = shard.stats();
            merged.query_stats.merge(&s.query_stats);
            merged.batches += s.batches;
            batched_requests += s.mean_batch * s.batches as f64;
            merged.p50_ms = merged.p50_ms.max(s.p50_ms);
            merged.p99_ms = merged.p99_ms.max(s.p99_ms);
        }
        merged.mean_batch = if merged.batches == 0 {
            0.0
        } else {
            batched_requests / merged.batches as f64
        };
        merged
    }

    /// Scatter-gather `(c, k)`-ANN: fans the query to every shard's
    /// micro-batcher concurrently, merges the `S` answers through one
    /// [`TopK`], and maps shard-local ids back to global ids. Results and
    /// failure modes mirror [`Engine::try_query`]; with one shard this
    /// *is* [`Engine::try_query`].
    pub fn try_query(&self, q: &[f32], k: usize) -> Result<QueryResult, QueryError> {
        if self.shards.len() == 1 {
            return self.shards[0].try_query(q, k);
        }
        // Pin one snapshot per shard up front: the whole fan-out answers
        // against a consistent set even if mutations land mid-query.
        let snaps: Vec<Arc<PmLsh>> = self.shards.iter().map(|s| s.index()).collect();
        try_validate(&snaps[0], q, k)?;
        let total_live: usize = snaps.iter().map(|s| s.len()).sum();
        let k = k.min(total_live);
        let budget = pooled_budget(&snaps, total_live, k);

        // Scatter: enqueue on every shard before receiving from any, so
        // the shards execute concurrently; one reply channel per shard
        // keeps the shard attribution the local→global mapping needs.
        let receivers: Vec<_> = self
            .shards
            .iter()
            .zip(&snaps)
            .map(|(shard, snap)| {
                let (reply, receive) = channel();
                // Engine's fields are crate-visible: this enqueues on the
                // shard's own micro-batcher, exactly like Engine::try_query.
                // Fan-out leg: the shard spends the pooled budget so the
                // merged candidate pool is a superset of the monolith's
                // (see `PmLsh::query_fanout_into` for the rank argument).
                shard.queue.enqueue(Request {
                    snapshot: Arc::clone(snap),
                    query: q.to_vec(),
                    k: k.min(snap.len()),
                    fanout_budget: Some(budget),
                    enqueued: Instant::now(),
                    reply: ReplySink::Channel(reply),
                });
                receive
            })
            .collect();

        // Gather: merge through one heap. Neighbor orders by (dist, id)
        // and global ids are unique across shards, so the merged top-k is
        // a deterministic total order regardless of arrival order.
        let shards = self.shards.len();
        let mut top = TopK::new(k);
        let mut stats = QueryStats::default();
        for (s, receive) in receivers.into_iter().enumerate() {
            // A dropped sender means that shard's worker panicked; the
            // whole logical query reports Internal, like the monolith.
            let (_slot, result) = receive.recv().map_err(|_| QueryError::Internal)?;
            stats.merge(&result.stats);
            for n in &result.neighbors {
                top.push(n.dist, to_global(n.id, s, shards));
            }
        }
        Ok(QueryResult {
            neighbors: top.into_sorted_vec(),
            stats,
        })
    }

    /// The completion-callback twin of [`ShardedEngine::try_query`], for
    /// the serving reactor: no thread parks waiting for the gather.
    ///
    /// Validation runs synchronously (an invalid query returns `Err`
    /// without invoking `cb`); a valid query is scattered to every
    /// shard's micro-batcher exactly as in [`ShardedEngine::try_query`] —
    /// same pooled budget, same per-leg `k` clamp, same local→global id
    /// mapping, bit-identical merged answer — but the gather happens in
    /// the legs' completion callbacks: each decrements a shared countdown
    /// and the last one standing fires `cb` with the merged result. A
    /// panicked leg yields `Err(QueryError::Internal)`, like the monolith.
    pub fn submit_query<F>(&self, q: &[f32], k: usize, cb: F) -> Result<(), QueryError>
    where
        F: FnOnce(Result<QueryResult, QueryError>) + Send + 'static,
    {
        if self.shards.len() == 1 {
            return self.shards[0].submit_query(q, k, cb);
        }
        let snaps: Vec<Arc<PmLsh>> = self.shards.iter().map(|s| s.index()).collect();
        try_validate(&snaps[0], q, k)?;
        let total_live: usize = snaps.iter().map(|s| s.len()).sum();
        let k = k.min(total_live);
        let budget = pooled_budget(&snaps, total_live, k);
        let shards = self.shards.len();

        type GatherCb = Box<dyn FnOnce(Result<QueryResult, QueryError>) + Send>;
        /// The in-flight merge state all `S` legs share.
        struct Gather {
            top: TopK,
            stats: QueryStats,
            pending: usize,
            failed: bool,
            cb: Option<GatherCb>,
        }
        let gather = Arc::new(std::sync::Mutex::new(Gather {
            top: TopK::new(k),
            stats: QueryStats::default(),
            pending: shards,
            failed: false,
            cb: Some(Box::new(cb)),
        }));

        for (s, (shard, snap)) in self.shards.iter().zip(&snaps).enumerate() {
            let gather = Arc::clone(&gather);
            let leg = Box::new(move |_slot: usize, result: Option<QueryResult>| {
                let finished = {
                    let mut g = gather.lock().expect("sharded gather poisoned");
                    match result {
                        Some(result) => {
                            g.stats.merge(&result.stats);
                            for n in &result.neighbors {
                                g.top.push(n.dist, to_global(n.id, s, shards));
                            }
                        }
                        None => g.failed = true,
                    }
                    g.pending -= 1;
                    if g.pending == 0 {
                        let top = std::mem::replace(&mut g.top, TopK::new(1));
                        Some((
                            g.cb.take().expect("gather fired twice"),
                            top,
                            g.stats,
                            g.failed,
                        ))
                    } else {
                        None
                    }
                };
                // Fire outside the lock: the callback may be arbitrarily
                // heavy (it wakes the reactor and formats the reply).
                if let Some((cb, top, stats, failed)) = finished {
                    if failed {
                        cb(Err(QueryError::Internal));
                    } else {
                        cb(Ok(QueryResult {
                            neighbors: top.into_sorted_vec(),
                            stats,
                        }));
                    }
                }
            });
            shard.queue.enqueue(Request {
                snapshot: Arc::clone(snap),
                query: q.to_vec(),
                k: k.min(snap.len()),
                fanout_budget: Some(budget),
                enqueued: Instant::now(),
                reply: ReplySink::Callback(leg),
            });
        }
        Ok(())
    }

    /// The panicking [`ShardedEngine::try_query`], mirroring
    /// [`Engine::query`].
    ///
    /// # Panics
    /// On a dimension mismatch, a non-finite query component, or `k == 0`.
    pub fn query(&self, q: &[f32], k: usize) -> QueryResult {
        self.try_query(q, k)
            .unwrap_or_else(|e| panic_for_query_error(e))
    }

    /// Scatter-gather batch: every query is fanned to every shard's
    /// worker pool (bypassing the micro-batcher — a batch already is a
    /// batch), answers are merged per query, and input order is
    /// preserved. Mirrors [`Engine::query_batch`], panics included.
    ///
    /// # Panics
    /// On a dimension mismatch, a non-finite query component, or `k == 0`.
    pub fn query_batch(&self, queries: &[impl AsRef<[f32]>], k: usize) -> Vec<QueryResult> {
        if self.shards.len() == 1 {
            return self.shards[0].query_batch(queries, k);
        }
        if queries.is_empty() {
            return Vec::new();
        }
        let snaps: Vec<Arc<PmLsh>> = self.shards.iter().map(|s| s.index()).collect();
        for q in queries {
            if let Err(e) = try_validate(&snaps[0], q.as_ref(), k) {
                panic_for_query_error(e);
            }
        }
        let total_live: usize = snaps.iter().map(|s| s.len()).sum();
        let k = k.min(total_live);
        let budget = pooled_budget(&snaps, total_live, k);
        let shards = self.shards.len();
        let enqueued = Instant::now();
        let (reply, receive) = channel();
        // slot = query_index · S + shard encodes both coordinates the
        // gather side needs through the pool's one usize slot.
        for (s, (shard, snap)) in self.shards.iter().zip(&snaps).enumerate() {
            let jobs: Vec<QueryJob> = queries
                .iter()
                .enumerate()
                .map(|(qi, q)| QueryJob {
                    slot: qi * shards + s,
                    snapshot: Arc::clone(snap),
                    query: q.as_ref().to_vec(),
                    k: k.min(snap.len()),
                    fanout_budget: Some(budget),
                    enqueued,
                    reply: ReplySink::Channel(reply.clone()),
                })
                .collect();
            shard.pool.submit_sharded(jobs);
        }
        drop(reply);

        let mut tops: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
        let mut stats: Vec<QueryStats> = vec![QueryStats::default(); queries.len()];
        for _ in 0..queries.len() * shards {
            let (slot, result) = receive
                .recv()
                .expect("query execution panicked in the engine worker pool");
            let (qi, s) = (slot / shards, slot % shards);
            stats[qi].merge(&result.stats);
            for n in &result.neighbors {
                tops[qi].push(n.dist, to_global(n.id, s, shards));
            }
        }
        tops.into_iter()
            .zip(stats)
            .map(|(top, stats)| QueryResult {
                neighbors: top.into_sorted_vec(),
                stats,
            })
            .collect()
    }

    /// Scatter-gather `(r, c)`-ball-cover (Algorithm 1): every shard
    /// answers on the calling thread against its pinned snapshot, and the
    /// closest hit (ties to the lowest global id) wins. Each shard spends
    /// its own `⌈β·n_s⌉ + 1` candidate cap, so the summed work mirrors
    /// the monolithic `⌈β·n⌉ + 1` bound the same way `query` does.
    pub fn query_bc(&self, q: &[f32], r: f64) -> Option<Neighbor> {
        let shards = self.shards.len();
        if shards == 1 {
            return self.shards[0].index().query_bc(q, r);
        }
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, shard)| {
                shard.index().query_bc(q, r).map(|n| Neighbor {
                    dist: n.dist,
                    id: to_global(n.id, s, shards),
                })
            })
            .min()
    }

    /// Inserts one point into the shard with the fewest stored rows (ties
    /// to the lowest shard index) and reports the *global* id — a
    /// placement rule that keeps the assigned id sequence identical to a
    /// monolithic engine's (see the module docs). The copy-on-write clone
    /// touches only that shard: O(n/S).
    ///
    /// `points` and `epoch` in the report aggregate over all shards, like
    /// [`ShardedEngine::info`].
    pub fn insert(&self, point: &[f32]) -> Result<MutationReport, MutationError> {
        if self.shards.len() == 1 {
            return self.shards[0].insert(point);
        }
        let target = self
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(_, shard)| shard.index().data().len())
            .map(|(s, _)| s)
            .expect("a sharded engine holds >= 1 shard");
        let report = self.shards[target].insert(point)?;
        Ok(self.globalize(
            target,
            report,
            to_global(report.id, target, self.shards.len()),
        ))
    }

    /// Deletes the point with *global* id `id` by routing to its owning
    /// shard (`id mod S`); the clone is O(n/S). A shard's last live point
    /// cannot be deleted ([`MutationError::WouldEmptyIndex`]) — with ids
    /// dealt round-robin a shard only runs that low when the whole index
    /// is nearly empty.
    pub fn delete(&self, id: PointId) -> Result<MutationReport, MutationError> {
        let shards = self.shards.len();
        if shards == 1 {
            return self.shards[0].delete(id);
        }
        let target = owner(id, shards);
        let report = self.shards[target]
            .delete(to_local(id, shards))
            .map_err(|e| match e {
                // The shard speaks local ids; the caller sent a global one.
                MutationError::UnknownId(_) => MutationError::UnknownId(id),
                other => other,
            })?;
        Ok(self.globalize(target, report, id))
    }

    /// Applies a batch of interleaved inserts and deletes across the
    /// shard set — the sharded [`Engine::apply`]. Ops are bucketed by
    /// owning shard (a delete to `global mod S`, an insert to the shard
    /// with the fewest stored rows at its point in the sequence, ties to
    /// the lowest shard index — the same placement rule as
    /// [`ShardedEngine::insert`], so the assigned global-id sequence
    /// stays identical to a monolithic engine's), and the `S` sub-batches
    /// apply *concurrently*, each paying one O(n/S) clone and at most one
    /// epoch bump. Where the monolith's batch bumps the logical epoch by
    /// exactly 1, the sharded batch bumps it by the number of shards that
    /// applied at least one op (between 1 and S) — still one publication
    /// per touched shard instead of one per op.
    ///
    /// Failures are per-op, in input order, exactly as in
    /// [`Engine::apply`]: invalid inserts are rejected up front (and do
    /// not consume a global id, matching the monolith), unknown-id and
    /// would-empty deletes are rejected by their owning shard against its
    /// evolving state. A shard-level refusal (a mid-rebuild shard
    /// returning [`MutationError::ReindexInProgress`]) marks *that
    /// shard's* ops failed while the other sub-batches stand — there is
    /// no cross-shard rollback; each shard's sub-batch is individually
    /// atomic. [`MutationError::WouldEmptyIndex`] guards each *shard's*
    /// last live point, mirroring single-op sharded deletes.
    pub fn apply(&self, ops: &[MutOp]) -> Result<crate::BatchReport, MutationError> {
        let shards = self.shards.len();
        if shards == 1 {
            return self.shards[0].apply(ops);
        }
        let dim = self.dim();
        // Route every op: static insert validation + placement simulation
        // over per-shard stored-row counts (tombstones included — local
        // ids are storage-order, so placement must track stored rows, not
        // live ones). A rejected insert consumes no slot anywhere.
        let mut results: Vec<Option<Result<PointId, MutationError>>> = vec![None; ops.len()];
        let mut stored: Vec<usize> = self.shards.iter().map(|s| s.index().data().len()).collect();
        let mut sub: Vec<Vec<MutOp>> = vec![Vec::new(); shards];
        let mut routing: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (i, op) in ops.iter().enumerate() {
            match op {
                MutOp::Insert(p) => {
                    if p.len() != dim {
                        results[i] = Some(Err(MutationError::DimensionMismatch {
                            expected: dim,
                            got: p.len(),
                        }));
                        continue;
                    }
                    if crate::validate_points(p).is_err() {
                        results[i] = Some(Err(MutationError::NonFiniteComponent));
                        continue;
                    }
                    let target = (0..shards)
                        .min_by_key(|&s| (stored[s], s))
                        .expect("a sharded engine holds >= 1 shard");
                    stored[target] += 1;
                    sub[target].push(MutOp::Insert(p.clone()));
                    routing[target].push(i);
                }
                MutOp::Delete(id) => {
                    let target = owner(*id, shards);
                    sub[target].push(MutOp::Delete(to_local(*id, shards)));
                    routing[target].push(i);
                }
            }
        }
        // Apply the sub-batches concurrently: each shard takes its own
        // writer lock, clones its own O(n/S) index once, and swaps once.
        let reports: Vec<Result<crate::BatchReport, MutationError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&sub)
                .map(|(shard, ops)| scope.spawn(move || shard.apply(ops)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard batch apply panicked"))
                .collect()
        });
        // Stitch per-shard outcomes back into input order, mapping local
        // ids (and local-id error payloads) back to global.
        for (s, report) in reports.into_iter().enumerate() {
            match report {
                Ok(rep) => {
                    for (j, r) in rep.results.into_iter().enumerate() {
                        let i = routing[s][j];
                        results[i] = Some(match r {
                            Ok(local) => Ok(to_global(local, s, shards)),
                            Err(MutationError::UnknownId(_)) => match &ops[i] {
                                MutOp::Delete(id) => Err(MutationError::UnknownId(*id)),
                                MutOp::Insert(_) => unreachable!("inserts cannot miss an id"),
                            },
                            Err(other) => Err(other),
                        });
                    }
                }
                Err(e) => {
                    for &i in &routing[s] {
                        results[i] = Some(Err(e));
                    }
                }
            }
        }
        let results: Vec<Result<PointId, MutationError>> = results
            .into_iter()
            .map(|r| r.expect("every op was routed or rejected up front"))
            .collect();
        let applied = results.iter().filter(|r| r.is_ok()).count();
        Ok(crate::BatchReport {
            epoch: self.epoch(),
            points: self.len(),
            applied,
            results,
        })
    }

    /// Rewrites a shard-local mutation report in global terms: the mapped
    /// id, the shard-summed epoch and the shard-summed live count.
    fn globalize(&self, target: usize, report: MutationReport, id: PointId) -> MutationReport {
        let mut points = report.points;
        let mut epoch = report.epoch;
        for (s, shard) in self.shards.iter().enumerate() {
            if s != target {
                points += shard.index().len();
                epoch += shard.epoch();
            }
        }
        MutationReport { id, epoch, points }
    }

    /// Rebuilds every shard over a fresh round-robin partition of `data`
    /// on background threads and returns once every shard has swapped —
    /// the sharded [`Engine::reindex`]. Queries keep flowing throughout;
    /// a query that lands mid-swap may see a mix of old and new shards
    /// for one fan-out (each shard swap is individually atomic).
    ///
    /// In addition to the monolithic validations, `data` must hold at
    /// least `S` points ([`ReindexError::EmptyDataset`] otherwise — every
    /// shard must stay non-empty).
    pub fn reindex(
        &self,
        data: impl Into<Arc<Dataset>>,
        params: PmLshParams,
        opts: BuildOptions,
    ) -> Result<ReindexReport, ReindexError> {
        let data = data.into();
        if self.shards.len() == 1 {
            return self.shards[0].reindex(data, params, opts);
        }
        // Validate the whole dataset first so the caller sees exactly the
        // monolithic engine's errors, then the shard-count floor.
        if data.is_empty() || data.len() < self.shards.len() {
            return Err(ReindexError::EmptyDataset);
        }
        let served_dim = self.dim();
        if data.dim() != served_dim {
            return Err(ReindexError::DimensionMismatch {
                served: served_dim,
                offered: data.dim(),
            });
        }
        if crate::validate_points(data.as_flat()).is_err() {
            return Err(ReindexError::NonFiniteData);
        }
        let mut tickets: Vec<ReindexTicket> = Vec::with_capacity(self.shards.len());
        let mut failure: Option<ReindexError> = None;
        for (shard, part) in self.shards.iter().zip(partition(&data, self.shards.len())) {
            match shard.begin_reindex(part, params, opts) {
                Ok(ticket) => tickets.push(ticket),
                Err(e) => {
                    // Shards that already started still complete and swap;
                    // drain them before reporting so the error leaves no
                    // rebuild running behind the caller's back.
                    failure = Some(e);
                    break;
                }
            }
        }
        let mut report = ReindexReport {
            epoch: 0,
            points: 0,
            build_secs: 0.0,
        };
        for ticket in tickets {
            let r = ticket.wait();
            report.epoch += r.epoch;
            report.points += r.points;
            report.build_secs = report.build_secs.max(r.build_secs);
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Atomically snapshots the served state to disk. One shard writes
    /// the plain single-file `.pmlsh` format; `S > 1` writes one
    /// `.pmlsh` file per shard plus a checksummed manifest at `path`
    /// (`pm_lsh_persist::save_sharded`), which `ATTACH` and the CLI
    /// restore as a whole set. Every shard snapshot is pinned up front,
    /// so the saved set is one consistent fan-out view.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<pm_lsh_persist::SaveReport, pm_lsh_persist::PersistError> {
        if self.shards.len() == 1 {
            return self.shards[0].save(path);
        }
        let snaps: Vec<Arc<PmLsh>> = self.shards.iter().map(|s| s.index()).collect();
        pm_lsh_persist::save_sharded(&snaps, path)
    }

    /// Restores a [`ShardedEngine`] from `path`: a sharded manifest
    /// (written by [`ShardedEngine::save`] at `S > 1`) restores the whole
    /// set; a plain `.pmlsh` file restores a single shard.
    pub fn load(
        path: impl AsRef<std::path::Path>,
        config: EngineConfig,
    ) -> Result<Self, pm_lsh_persist::PersistError> {
        let path = path.as_ref();
        if pm_lsh_persist::is_manifest_file(path) {
            Ok(Self::from_indexes(
                pm_lsh_persist::load_sharded(path)?,
                config,
            ))
        } else {
            Ok(Engine::new(pm_lsh_persist::load(path)?, config).into())
        }
    }
}

/// The monolithic Algorithm 2 budget `min(⌈β·n⌉ + k, total)` computed
/// over the whole shard set's `total` live points — what every fan-out
/// leg spends (clamped to its own live count), so the merged candidate
/// pool provably covers the monolith's. Mirrors
/// `PmLsh::candidate_budget` term for term; β is identical across shards
/// by construction.
fn pooled_budget(snaps: &[Arc<PmLsh>], total: usize, k: usize) -> usize {
    let beta = snaps[0].derived().beta;
    ((beta * total as f64).ceil() as usize + k).min(total)
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("points", &self.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_stats::Rng;
    use std::time::Duration;

    fn tiny_engine(seed: u64) -> Engine {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(4, 20);
        let mut buf = [0.0f32; 4];
        for _ in 0..20 {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        Engine::new(
            PmLsh::build(ds, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        )
    }

    /// Regression for the incoherent stats merge: summing `batches`
    /// across shards while keeping shard 0's `mean_batch` verbatim broke
    /// `mean_batch × batches == Σ batched_requests`. The merge must keep
    /// that invariant and report the worst per-shard tail.
    #[test]
    fn stats_merge_is_coherent_across_shards() {
        let engines = vec![tiny_engine(1), tiny_engine(2), tiny_engine(3)];
        let qs = pm_lsh_core::QueryStats {
            candidates_verified: 1,
            projected_dist_computations: 1,
            rounds: 1,
        };
        // Distinct per-shard batching profiles: (batches, requests) =
        // (1, 2), (2, 12), (1, 1) — total 4 batches, 15 requests. Taking
        // shard 0's mean (2.0) would claim 8 requests; the weighted mean
        // 15/4 = 3.75 multiplies back correctly.
        engines[0].stats.record_batch(2);
        engines[1].stats.record_batch(5);
        engines[1].stats.record_batch(7);
        engines[2].stats.record_batch(1);
        // Distinct latency profiles: shard 2 is the slow leg, so the
        // merged tail must report its quantiles, not shard 0's.
        engines[0]
            .stats
            .record_query(Duration::from_micros(100), &qs);
        engines[1]
            .stats
            .record_query(Duration::from_micros(200), &qs);
        engines[2]
            .stats
            .record_query(Duration::from_millis(50), &qs);
        let per_shard: Vec<crate::EngineStats> = engines.iter().map(Engine::stats).collect();

        let sharded = ShardedEngine::from_engines(engines);
        let merged = sharded.stats();

        assert_eq!(merged.batches, 4);
        let total_requests = merged.mean_batch * merged.batches as f64;
        assert!(
            (total_requests - 15.0).abs() < 1e-9,
            "mean_batch × batches = {total_requests}, want 15"
        );
        assert!(
            (merged.mean_batch - 3.75).abs() < 1e-9,
            "{}",
            merged.mean_batch
        );
        let worst_p50 = per_shard.iter().map(|s| s.p50_ms).fold(0.0, f64::max);
        let worst_p99 = per_shard.iter().map(|s| s.p99_ms).fold(0.0, f64::max);
        assert_eq!(merged.p50_ms, worst_p50);
        assert_eq!(merged.p99_ms, worst_p99);
        assert!(
            merged.p99_ms > 10.0,
            "slow shard's tail lost: {}",
            merged.p99_ms
        );
        // Execution counters aggregate over all shards.
        assert_eq!(merged.query_stats.candidates_verified, 3);
        // Logical query counts still come from shard 0.
        assert_eq!(merged.queries, per_shard[0].queries);
    }

    #[test]
    fn stats_merge_with_no_batches_reports_zero_mean() {
        let sharded = ShardedEngine::from_engines(vec![tiny_engine(4), tiny_engine(5)]);
        let merged = sharded.stats();
        assert_eq!(merged.batches, 0);
        assert_eq!(merged.mean_batch, 0.0);
    }
}
