//! The length-prefixed binary wire format negotiated by `HELLO binary`.
//!
//! The default newline/text protocol round-trips every query component
//! through decimal — at d = 4096 the parse/format cost rivals the ANN
//! search itself. This frame format carries the same requests and
//! replies as raw little-endian bytes. Negotiation happens in text: a
//! client sends `HELLO binary\n`, the server answers `OK binary\n`, and
//! *both directions switch to frames from the next byte on*.
//!
//! Every frame is a `u32` little-endian **payload length** followed by
//! that many payload bytes. The payload's first byte is an opcode
//! (requests) or status (replies):
//!
//! Request payloads:
//!
//! | op | name  | layout after the op byte                               |
//! |----|-------|--------------------------------------------------------|
//! | 1  | QUERY | `k: u32 LE`, `d: u32 LE`, then `d × f32 LE` components |
//! | 2  | PING  | empty                                                  |
//!
//! Reply payloads:
//!
//! | status | name | layout after the status byte                         |
//! |--------|------|------------------------------------------------------|
//! | 0      | OK   | `count: u32 LE`, then `count × (id u64 LE, dist f32 LE)` |
//! | 1      | ERR  | UTF-8 message (no `ERR ` prefix, no newline)         |
//! | 2      | PONG | empty                                                |
//!
//! Ids are `u64` on the wire (the in-memory `PointId` is `u32` today;
//! the width is headroom, not a conversion risk). Distances are the
//! engine's own `f32` bits, so text/binary parity is exact, not
//! approximate.
//!
//! Decoding here is *pure*: slices in, values out, no I/O. The reactor
//! owns framing (accumulate 4 + len bytes, enforce [`frame_cap`]); the
//! CLI's `WireClient` reuses the same encoders so both ends agree by
//! construction.

use pm_lsh_metric::Neighbor;

/// Request opcode: a k-NN query.
pub const OP_QUERY: u8 = 1;
/// Request opcode: liveness probe.
pub const OP_PING: u8 = 2;
/// Reply status: success, neighbor list follows.
pub const STATUS_OK: u8 = 0;
/// Reply status: error, UTF-8 message follows.
pub const STATUS_ERR: u8 = 1;
/// Reply status: answer to [`OP_PING`].
pub const STATUS_PONG: u8 = 2;

/// Largest accepted *payload* length for a connection whose current
/// index has dimensionality `dim` — the binary analogue of the text
/// protocol's line cap. A QUERY needs `9 + 4·dim` payload bytes; the
/// headroom is for future ops, the 512 floor for connections with no
/// index attached yet.
pub fn frame_cap(dim: usize) -> usize {
    (64 + 8 * dim).max(512)
}

/// A decoded binary request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// k-NN query: `k` neighbors for the given components.
    Query {
        /// Requested neighbor count (validated by the engine, not here).
        k: u32,
        /// Query vector components, exactly as sent.
        query: Vec<f32>,
    },
    /// Liveness probe; answered with PONG.
    Ping,
}

/// A decoded binary reply frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Neighbors, nearest first, as `(id, dist)` pairs.
    Ok(Vec<(u64, f32)>),
    /// Error message (without the text protocol's `ERR ` prefix).
    Err(String),
    /// Answer to a PING.
    Pong,
}

/// Why a well-delimited frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Zero-length payload: there is no opcode to dispatch on.
    Empty,
    /// The first payload byte is not a known opcode/status.
    UnknownOpcode(u8),
    /// Right opcode, wrong shape (field truncated, length mismatch…).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Empty => write!(f, "empty frame"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn u32_le(bytes: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<4>()?;
    Some((u32::from_le_bytes(*head), rest))
}

/// Appends a framed QUERY request (length prefix included) to `out`.
pub fn encode_query(k: u32, query: &[f32], out: &mut Vec<u8>) {
    let len = 1 + 4 + 4 + 4 * query.len();
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(OP_QUERY);
    out.extend_from_slice(&k.to_le_bytes());
    out.extend_from_slice(&(query.len() as u32).to_le_bytes());
    for component in query {
        out.extend_from_slice(&component.to_le_bytes());
    }
}

/// Appends a framed PING request to `out`.
pub fn encode_ping(out: &mut Vec<u8>) {
    out.extend_from_slice(&1u32.to_le_bytes());
    out.push(OP_PING);
}

/// Appends a framed OK reply carrying `neighbors` to `out`.
pub fn encode_ok(neighbors: &[Neighbor], out: &mut Vec<u8>) {
    let len = 1 + 4 + 12 * neighbors.len();
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(STATUS_OK);
    out.extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
    for n in neighbors {
        out.extend_from_slice(&u64::from(n.id).to_le_bytes());
        out.extend_from_slice(&n.dist.to_le_bytes());
    }
}

/// Appends a framed ERR reply to `out`. `message` carries no `ERR `
/// prefix and no trailing newline — those are text-protocol framing.
pub fn encode_err(message: &str, out: &mut Vec<u8>) {
    let len = 1 + message.len();
    out.reserve(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(STATUS_ERR);
    out.extend_from_slice(message.as_bytes());
}

/// Appends a framed PONG reply to `out`.
pub fn encode_pong(out: &mut Vec<u8>) {
    out.extend_from_slice(&1u32.to_le_bytes());
    out.push(STATUS_PONG);
}

/// Decodes one request payload (the bytes *after* the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    let (&op, body) = payload.split_first().ok_or(FrameError::Empty)?;
    match op {
        OP_QUERY => {
            let (k, body) = u32_le(body).ok_or(FrameError::Malformed("QUERY truncated at k"))?;
            let (d, body) = u32_le(body).ok_or(FrameError::Malformed("QUERY truncated at d"))?;
            if body.len() as u64 != u64::from(d) * 4 {
                return Err(FrameError::Malformed(
                    "QUERY component bytes disagree with d",
                ));
            }
            let query = body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
                .collect();
            Ok(Request::Query { k, query })
        }
        OP_PING => {
            if body.is_empty() {
                Ok(Request::Ping)
            } else {
                Err(FrameError::Malformed("PING carries a body"))
            }
        }
        other => Err(FrameError::UnknownOpcode(other)),
    }
}

/// Decodes one reply payload (the bytes *after* the length prefix).
pub fn decode_reply(payload: &[u8]) -> Result<Reply, FrameError> {
    let (&status, body) = payload.split_first().ok_or(FrameError::Empty)?;
    match status {
        STATUS_OK => {
            let (count, body) =
                u32_le(body).ok_or(FrameError::Malformed("OK truncated at count"))?;
            if body.len() as u64 != u64::from(count) * 12 {
                return Err(FrameError::Malformed(
                    "OK neighbor bytes disagree with count",
                ));
            }
            let neighbors = body
                .chunks_exact(12)
                .map(|pair| {
                    let id = u64::from_le_bytes(pair[..8].try_into().expect("chunks_exact(12)"));
                    let dist = f32::from_le_bytes(pair[8..].try_into().expect("chunks_exact(12)"));
                    (id, dist)
                })
                .collect();
            Ok(Reply::Ok(neighbors))
        }
        STATUS_ERR => match std::str::from_utf8(body) {
            Ok(message) => Ok(Reply::Err(message.to_string())),
            Err(_) => Err(FrameError::Malformed("ERR message is not UTF-8")),
        },
        STATUS_PONG => {
            if body.is_empty() {
                Ok(Reply::Pong)
            } else {
                Err(FrameError::Malformed("PONG carries a body"))
            }
        }
        other => Err(FrameError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(framed: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
        assert_eq!(framed.len(), 4 + len, "length prefix covers the payload");
        &framed[4..]
    }

    #[test]
    fn query_roundtrip_preserves_bits() {
        let q = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e7, -0.0];
        let mut framed = Vec::new();
        encode_query(7, &q, &mut framed);
        match decode_request(payload(&framed)).unwrap() {
            Request::Query { k, query } => {
                assert_eq!(k, 7);
                assert_eq!(query.len(), q.len());
                for (a, b) in query.iter().zip(&q) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut framed = Vec::new();
        encode_ping(&mut framed);
        assert_eq!(decode_request(payload(&framed)).unwrap(), Request::Ping);
        framed.clear();
        encode_pong(&mut framed);
        assert_eq!(decode_reply(payload(&framed)).unwrap(), Reply::Pong);
    }

    #[test]
    fn ok_reply_roundtrip() {
        let neighbors = [
            Neighbor { dist: 0.5, id: 3 },
            Neighbor {
                dist: 1.25,
                id: u32::MAX,
            },
        ];
        let mut framed = Vec::new();
        encode_ok(&neighbors, &mut framed);
        match decode_reply(payload(&framed)).unwrap() {
            Reply::Ok(pairs) => {
                assert_eq!(pairs.len(), 2);
                assert_eq!(pairs[0], (3, 0.5));
                assert_eq!(pairs[1].0, u64::from(u32::MAX));
                assert_eq!(pairs[1].1.to_bits(), 1.25f32.to_bits());
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn err_reply_roundtrip() {
        let mut framed = Vec::new();
        encode_err("query contains a non-finite component", &mut framed);
        assert_eq!(
            decode_reply(payload(&framed)).unwrap(),
            Reply::Err("query contains a non-finite component".to_string())
        );
    }

    #[test]
    fn empty_frame_and_unknown_opcodes_are_rejected() {
        assert_eq!(decode_request(&[]), Err(FrameError::Empty));
        assert_eq!(decode_reply(&[]), Err(FrameError::Empty));
        assert_eq!(decode_request(&[99]), Err(FrameError::UnknownOpcode(99)));
        assert_eq!(decode_reply(&[99]), Err(FrameError::UnknownOpcode(99)));
    }

    #[test]
    fn malformed_shapes_are_rejected_not_panicked() {
        // QUERY truncated mid-k and mid-d.
        assert!(matches!(
            decode_request(&[OP_QUERY, 1, 0]),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(&[OP_QUERY, 1, 0, 0, 0, 2]),
            Err(FrameError::Malformed(_))
        ));
        // d promises two components, body carries one.
        let mut bad = vec![OP_QUERY];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(matches!(
            decode_request(&bad),
            Err(FrameError::Malformed(_))
        ));
        // PING/PONG with trailing junk.
        assert!(matches!(
            decode_request(&[OP_PING, 0]),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            decode_reply(&[STATUS_PONG, 0]),
            Err(FrameError::Malformed(_))
        ));
        // OK whose count disagrees with the byte count.
        let mut bad = vec![STATUS_OK];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 12]);
        assert!(matches!(decode_reply(&bad), Err(FrameError::Malformed(_))));
        // ERR with invalid UTF-8.
        assert!(matches!(
            decode_reply(&[STATUS_ERR, 0xFF, 0xFE]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn frame_cap_scales_with_dimensionality() {
        assert_eq!(frame_cap(0), 512);
        assert_eq!(frame_cap(56), 512);
        assert_eq!(frame_cap(192), 64 + 8 * 192);
        assert_eq!(frame_cap(4096), 64 + 8 * 4096);
        // The cap always admits a legal QUERY at that dimensionality.
        for d in [0usize, 1, 56, 192, 4096] {
            assert!(9 + 4 * d <= frame_cap(d));
        }
    }
}
