//! The micro-batching request queue in front of the worker pool.
//!
//! Single blocking queries (the TCP serving path: many connections, one
//! query each) enter through a bounded channel. A collector thread groups
//! whatever is waiting — up to `batch_size` requests, waiting at most
//! `max_wait` after the first — and hands the group to the pool as one
//! shard per worker. Coalescing amortizes channel and mutex traffic over
//! several queries and gives the engine a natural backpressure point: when
//! the queue is full, callers block instead of piling unbounded work onto
//! the pool.

use crate::pool::{QueryJob, ReplySink, WorkerPool};
use crate::stats::StatsCollector;
use pm_lsh_core::PmLsh;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One request waiting to be micro-batched.
pub(crate) struct Request {
    /// The snapshot pinned for this request at enqueue time.
    pub snapshot: Arc<PmLsh>,
    pub query: Vec<f32>,
    pub k: usize,
    /// Per-shard leg of a scatter-gather query (see
    /// [`QueryJob::fanout_budget`]).
    pub fanout_budget: Option<usize>,
    pub enqueued: Instant,
    pub reply: ReplySink,
}

/// The bounded queue plus its collector thread. Dropping it closes the
/// queue and joins the collector (which flushes whatever is pending).
pub(crate) struct BatchQueue {
    requests: Option<SyncSender<Request>>,
    collector: Option<JoinHandle<()>>,
}

impl BatchQueue {
    pub(crate) fn new(
        pool: Arc<WorkerPool>,
        stats: Arc<StatsCollector>,
        batch_size: usize,
        max_wait: Duration,
        queue_depth: usize,
    ) -> Self {
        let (tx, rx) = sync_channel::<Request>(queue_depth.max(1));
        let batch_size = batch_size.max(1);
        let collector = std::thread::Builder::new()
            .name("pmlsh-batcher".to_string())
            .spawn(move || collector_loop(&rx, &pool, &stats, batch_size, max_wait))
            .expect("failed to spawn engine batcher thread");
        Self {
            requests: Some(tx),
            collector: Some(collector),
        }
    }

    /// Enqueues one request, blocking when the queue is full (backpressure).
    pub(crate) fn enqueue(&self, request: Request) {
        self.requests
            .as_ref()
            .expect("batch queue already shut down")
            .send(request)
            .expect("engine batcher exited");
    }
}

impl Drop for BatchQueue {
    fn drop(&mut self) {
        drop(self.requests.take());
        if let Some(handle) = self.collector.take() {
            let _ = handle.join();
        }
    }
}

fn collector_loop(
    rx: &Receiver<Request>,
    pool: &WorkerPool,
    stats: &StatsCollector,
    batch_size: usize,
    max_wait: Duration,
) {
    loop {
        // Block for the first request of the next batch.
        let Ok(first) = rx.recv() else { return };
        let mut batch = vec![first];
        let deadline = Instant::now() + max_wait;
        let mut disconnected = false;
        while batch.len() < batch_size {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        stats.record_batch(batch.len());
        let jobs: Vec<QueryJob> = batch
            .into_iter()
            .map(|request| QueryJob {
                slot: 0,
                snapshot: request.snapshot,
                query: request.query,
                k: request.k,
                fanout_budget: request.fanout_budget,
                enqueued: request.enqueued,
                reply: request.reply,
            })
            .collect();
        pool.submit_sharded(jobs);
        if disconnected {
            return;
        }
    }
}
