//! The atomic snapshot cell: one mutable slot holding the served index.
//!
//! The engine's hot path is built on immutable snapshots — workers never
//! lock while *querying* — but serving a system that can be reindexed
//! needs exactly one point of mutability: which snapshot is current. An
//! `ArcSwap`-style cell would be the off-the-shelf answer; external crates
//! don't resolve offline, so this is the hand-rolled equivalent on
//! `Mutex<Arc<PmLsh>>`:
//!
//! * [`SnapshotCell::load`] — lock, clone the `Arc`, unlock. The critical
//!   section is a pointer copy and a refcount increment (a few dozen ns),
//!   taken once per request at enqueue time — and only once for a whole
//!   `query_batch` — so contention is negligible next to actual query
//!   work.
//! * [`SnapshotCell::swap`] — lock, replace the `Arc`, bump the epoch.
//!   In-flight queries keep whatever snapshot they loaded; the old index
//!   is freed when its last query finishes. Queries therefore never block
//!   on a rebuild and never observe a half-built index.
//!
//! The `rebuilding` flag serializes rebuilds (one at a time) without ever
//! being consulted by the query path.

use pm_lsh_core::PmLsh;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// The swappable snapshot slot plus its generation counter.
pub(crate) struct SnapshotCell {
    slot: Mutex<Arc<PmLsh>>,
    epoch: AtomicU64,
    rebuilding: AtomicBool,
    /// Coarse percentage of the rebuild in progress (meaningful only while
    /// `rebuilding`): updated at phase boundaries by the rebuild thread,
    /// read lock-free by `INDEXINFO`. 100 whenever the cell is serving.
    progress: AtomicU8,
    /// Serializes *writers* (single-point mutations among themselves, and
    /// a finishing rebuild's swap against an in-flight mutation) without
    /// ever being touched by the read path. A mutation holds this lock
    /// across its load → clone-and-patch → swap sequence, so no other
    /// publication can interleave and orphan its work; `slot` is still
    /// only locked for the pointer copy, so readers never wait on a
    /// clone-and-patch in progress.
    write: Mutex<()>,
}

impl SnapshotCell {
    pub(crate) fn new(index: Arc<PmLsh>) -> Self {
        Self {
            slot: Mutex::new(index),
            epoch: AtomicU64::new(0),
            rebuilding: AtomicBool::new(false),
            progress: AtomicU8::new(100),
            write: Mutex::new(()),
        }
    }

    /// Claims the writer slot for a load → patch → swap sequence. The
    /// guard must be held across the whole sequence.
    pub(crate) fn begin_write(&self) -> std::sync::MutexGuard<'_, ()> {
        self.write.lock().expect("write lock poisoned")
    }

    /// The current snapshot. Callers hold it for as long as they need —
    /// a concurrent [`SnapshotCell::swap`] never invalidates it.
    pub(crate) fn load(&self) -> Arc<PmLsh> {
        Arc::clone(&self.slot.lock().expect("snapshot lock poisoned"))
    }

    /// The current snapshot together with its epoch, read under one lock
    /// acquisition so the pair is always consistent (a bare `load()` +
    /// `epoch()` could straddle a swap).
    pub(crate) fn load_with_epoch(&self) -> (Arc<PmLsh>, u64) {
        let slot = self.slot.lock().expect("snapshot lock poisoned");
        (Arc::clone(&slot), self.epoch.load(Ordering::SeqCst))
    }

    /// Publishes a new snapshot and returns the new epoch. The displaced
    /// index stays alive until the last in-flight query drops its `Arc`.
    pub(crate) fn swap(&self, next: Arc<PmLsh>) -> u64 {
        let mut slot = self.slot.lock().expect("snapshot lock poisoned");
        *slot = next;
        // The epoch bump happens under the slot lock, so epoch N is never
        // observed alongside a snapshot older than N's.
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Generation counter: 0 for the snapshot the engine started with,
    /// +1 per completed swap.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Claims the (single) rebuild slot; `false` when a rebuild is already
    /// running. Claiming resets the progress gauge to 0.
    pub(crate) fn try_begin_rebuild(&self) -> bool {
        let claimed = self
            .rebuilding
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if claimed {
            self.progress.store(0, Ordering::SeqCst);
        }
        claimed
    }

    /// Releases the rebuild slot and restores the serving gauge.
    pub(crate) fn end_rebuild(&self) {
        self.progress.store(100, Ordering::SeqCst);
        self.rebuilding.store(false, Ordering::SeqCst);
    }

    /// Advances the rebuild progress gauge (phase boundaries only; there
    /// is no per-point instrumentation inside the build).
    pub(crate) fn set_progress(&self, pct: u8) {
        self.progress.store(pct.min(100), Ordering::SeqCst);
    }

    /// The current progress gauge: 100 while serving, the rebuild's
    /// last-reported phase percentage while rebuilding.
    pub(crate) fn progress(&self) -> u8 {
        self.progress.load(Ordering::SeqCst)
    }

    /// `true` while a rebuild claimed via [`Self::try_begin_rebuild`] runs.
    pub(crate) fn is_rebuilding(&self) -> bool {
        self.rebuilding.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_core::PmLshParams;
    use pm_lsh_metric::Dataset;

    fn tiny_index(value: f32) -> Arc<PmLsh> {
        let ds = Dataset::from_rows(vec![vec![value, value], vec![value + 1.0, value]]);
        Arc::new(PmLsh::build(ds, PmLshParams::default()))
    }

    #[test]
    fn load_survives_swap() {
        let cell = SnapshotCell::new(tiny_index(0.0));
        let held = cell.load();
        assert_eq!(cell.epoch(), 0);
        let e = cell.swap(tiny_index(10.0));
        assert_eq!(e, 1);
        assert_eq!(cell.epoch(), 1);
        // The pre-swap snapshot is still fully usable.
        assert_eq!(held.data().point(0), &[0.0, 0.0]);
        assert_eq!(cell.load().data().point(0), &[10.0, 10.0]);
    }

    #[test]
    fn rebuild_slot_is_exclusive() {
        let cell = SnapshotCell::new(tiny_index(0.0));
        assert!(cell.try_begin_rebuild());
        assert!(cell.is_rebuilding());
        assert!(!cell.try_begin_rebuild());
        cell.end_rebuild();
        assert!(!cell.is_rebuilding());
        assert!(cell.try_begin_rebuild());
    }
}
