//! `pm-lsh-engine` — a concurrent, batched query engine and TCP serving
//! layer over the PM-LSH index.
//!
//! The sibling crates answer one query at a time on the calling thread;
//! this crate turns the [`PmLsh`] index into a serving system. It is the
//! deployment-facing layer the paper itself stops short of (index
//! construction and query answering are Sections 4–5; serving them under
//! concurrent traffic is ours):
//!
//! * [`Engine`] holds the current `Arc<PmLsh>` snapshot in an atomic
//!   snapshot cell plus a fixed pool of worker threads (`std::thread` +
//!   `std::sync::mpsc`, like everything else in the workspace: no external
//!   dependencies). [`Engine::query`] is a blocking call that travels
//!   through the micro-batching request queue; [`Engine::query_batch`]
//!   shards a whole query set across the pool and returns results in input
//!   order.
//! * [`Engine::reindex`] rebuilds the index over a new dataset on a
//!   background thread and atomically swaps the snapshot in. Queries are
//!   never blocked and never fail during a reindex: every request pins
//!   the current snapshot when it enters the engine (a batch pins one
//!   snapshot for all its queries), so in-flight work completes on the
//!   index it started with while new work sees the new one.
//!   [`Engine::info`] reports the snapshot generation ([`IndexInfo`]).
//! * [`Engine::insert`] / [`Engine::delete`] apply single-point mutations
//!   *between* rebuilds, via copy-on-write snapshot publication: the
//!   current snapshot is cloned, patched and swapped in under a writer
//!   lock, bumping the epoch; readers keep pinning immutable snapshots
//!   and never block on a mutation ([`MutationReport`],
//!   [`MutationError`]). On the wire these are the AUTH-gated
//!   `INSERT`/`DELETE` verbs.
//! * [`Engine::apply`] is the amortized batch form: one clone, one
//!   in-place patch of W interleaved inserts/deletes, one swap — one
//!   epoch bump for the whole batch instead of one per point, turning
//!   write cost from O(W·n) into O(n) + O(W) ([`BatchReport`]; the
//!   AUTH-gated `BATCH` verb on the wire).
//! * The micro-batcher (a bounded channel and a collector thread) groups
//!   up to `batch_size` concurrent requests, waiting at most `max_wait`
//!   after the first, before handing them to the pool — one channel send
//!   per worker per batch instead of one per query, and a natural
//!   backpressure point when the queue fills.
//! * [`EngineStats`] aggregates throughput, p50/p99 latency and the summed
//!   per-query [`QueryStats`] counters, so benchmarks can draw scaling
//!   curves against thread count.
//! * [`Engine::try_query`] is the non-panicking query entry point: every
//!   failure mode, a mid-execution worker panic included, is a typed
//!   [`QueryError`] — what lets the TCP layer answer `ERR` lines instead
//!   of dropping clients.
//! * [`Router`] maps index *names* to engines so one process serves
//!   several datasets; [`serve_router`] exposes the whole map over TCP
//!   with per-connection index selection (`USE`), attach/detach verbs,
//!   optional token auth, a connection cap, and graceful drain
//!   ([`ServerConfig`], [`ServerHandle::shutdown`] → [`DrainReport`]).
//!   [`serve`] stays the one-engine convenience (see [`server`] for the
//!   exact grammar, or `docs/PROTOCOL.md` in the repository for the full
//!   specification).
//!
//! Queries on a built snapshot are pure reads, so the hot path takes no
//! locks beyond one snapshot load per request (one per *batch* for
//! [`Engine::query_batch`]); the compile-time assertions at the bottom of
//! this module pin down that [`PmLsh`] and [`Dataset`] stay `Send + Sync`.
//!
//! # Quick start
//!
//! ```
//! use pm_lsh_core::{PmLsh, PmLshParams};
//! use pm_lsh_engine::{Engine, EngineConfig};
//! use pm_lsh_metric::Dataset;
//! use pm_lsh_stats::Rng;
//!
//! let mut rng = Rng::new(9);
//! let mut data = Dataset::with_capacity(32, 400);
//! let mut buf = [0.0f32; 32];
//! for _ in 0..400 {
//!     rng.fill_normal(&mut buf);
//!     data.push(&buf);
//! }
//! let queries: Vec<Vec<f32>> = (0..8).map(|i| data.point(i).to_vec()).collect();
//!
//! let index = PmLsh::build(data, PmLshParams::default());
//! let engine = Engine::new(index, EngineConfig { threads: 4, ..Default::default() });
//!
//! let results = engine.query_batch(&queries, 5);
//! assert_eq!(results.len(), 8);
//! assert_eq!(results[3].neighbors[0].id, 3); // input order is preserved
//! assert_eq!(engine.stats().queries, 8);
//! ```

#![warn(missing_docs)]

mod batch;
pub mod frame;
mod pool;
mod reactor;
pub mod router;
pub mod server;
pub mod sharded;
mod snapshot;
mod stats;

pub use pm_lsh_core::MutOp;
pub use router::{Router, RouterError};
pub use server::{serve, serve_router, DrainReport, ServerConfig, ServerHandle};
pub use sharded::ShardedEngine;
pub use stats::EngineStats;

use crate::batch::{BatchQueue, Request};
use crate::pool::{QueryJob, ReplySink, WorkerPool};
use crate::snapshot::SnapshotCell;
use crate::stats::StatsCollector;
use pm_lsh_core::{BuildOptions, MutReject, PmLsh, PmLshParams, QueryResult, QueryStats};
use pm_lsh_metric::Dataset;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for an [`Engine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads in the pool. `0` means available parallelism.
    pub threads: usize,
    /// Most requests one micro-batch may coalesce.
    pub batch_size: usize,
    /// Longest the batcher waits after a batch's first request.
    pub max_wait: Duration,
    /// Bounded request-queue capacity; full means callers block.
    pub queue_depth: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            batch_size: 32,
            max_wait: Duration::from_micros(200),
            queue_depth: 1024,
        }
    }
}

impl EngineConfig {
    /// The effective thread count (`threads`, or available parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// A concurrent query engine over one immutable PM-LSH snapshot.
///
/// Cloning is cheap and shares the pool, the queue and the statistics
/// (everything is behind `Arc`s), so one engine can serve many threads —
/// the TCP layer clones it into every connection handler.
#[derive(Clone)]
pub struct Engine {
    snapshot: Arc<SnapshotCell>,
    pool: Arc<WorkerPool>,
    queue: Arc<BatchQueue>,
    stats: Arc<StatsCollector>,
    config: EngineConfig,
}

impl Engine {
    /// Spins up the worker pool and batcher over a built index.
    pub fn new(index: impl Into<Arc<PmLsh>>, config: EngineConfig) -> Self {
        let snapshot = Arc::new(SnapshotCell::new(index.into()));
        let stats = Arc::new(StatsCollector::new());
        let pool = Arc::new(WorkerPool::new(
            config.effective_threads(),
            Arc::clone(&stats),
        ));
        let queue = Arc::new(BatchQueue::new(
            Arc::clone(&pool),
            Arc::clone(&stats),
            config.batch_size,
            config.max_wait,
            config.queue_depth,
        ));
        Self {
            snapshot,
            pool,
            queue,
            stats,
            config,
        }
    }

    /// The currently served index snapshot.
    ///
    /// The returned `Arc` stays fully usable for as long as the caller
    /// holds it, even across a concurrent [`Engine::reindex`] — it just
    /// stops being *current* once a swap lands. Load it once per logical
    /// operation rather than caching it long-term.
    pub fn index(&self) -> Arc<PmLsh> {
        self.snapshot.load()
    }

    /// The snapshot generation: 0 at construction, +1 per snapshot
    /// publication — a completed [`Engine::reindex`] swap or a
    /// single-point [`Engine::insert`]/[`Engine::delete`].
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Inserts one point into the served index and publishes the mutated
    /// snapshot, returning the assigned external id and the new epoch.
    ///
    /// Publication is copy-on-write: the current snapshot is cloned,
    /// patched (`PmLsh::insert`), and swapped in under the cell's writer
    /// lock — readers keep pinning immutable `Arc<PmLsh>` snapshots and
    /// never wait on the clone, in-flight queries finish on the snapshot
    /// they started with, and queries arriving after the swap see the new
    /// point. The clone makes a single mutation O(n); for bulk loads use
    /// [`Engine::reindex`], which pays the build once for the whole
    /// dataset.
    pub fn insert(&self, point: &[f32]) -> Result<MutationReport, MutationError> {
        let _writer = self.snapshot.begin_write();
        if self.snapshot.is_rebuilding() {
            return Err(MutationError::ReindexInProgress);
        }
        let current = self.snapshot.load();
        if point.len() != current.data().dim() {
            return Err(MutationError::DimensionMismatch {
                expected: current.data().dim(),
                got: point.len(),
            });
        }
        if validate_points(point).is_err() {
            return Err(MutationError::NonFiniteComponent);
        }
        let mut next = (*current).clone();
        let id = next.insert(point);
        let points = next.len();
        let epoch = self.snapshot.swap(Arc::new(next));
        Ok(MutationReport { id, epoch, points })
    }

    /// Deletes the point with external id `id` and publishes the mutated
    /// snapshot (same copy-on-write discipline as [`Engine::insert`]).
    /// The last live point cannot be deleted: a served index is non-empty
    /// by construction, and every connected client holds protocol state
    /// derived from it.
    pub fn delete(&self, id: pm_lsh_metric::PointId) -> Result<MutationReport, MutationError> {
        let _writer = self.snapshot.begin_write();
        if self.snapshot.is_rebuilding() {
            return Err(MutationError::ReindexInProgress);
        }
        let current = self.snapshot.load();
        if !current.contains(id) {
            return Err(MutationError::UnknownId(id));
        }
        if current.len() == 1 {
            return Err(MutationError::WouldEmptyIndex);
        }
        let mut next = (*current).clone();
        let deleted = next.delete(id);
        debug_assert!(deleted, "contains() said the id was live");
        let points = next.len();
        let epoch = self.snapshot.swap(Arc::new(next));
        Ok(MutationReport { id, epoch, points })
    }

    /// Applies a whole batch of interleaved inserts and deletes as *one*
    /// copy-on-write publication: the writer lock is taken once, the
    /// current snapshot is cloned once, all `W` ops are patched into the
    /// clone ([`PmLsh::apply`]), and the result is swapped in once — one
    /// epoch bump for the whole batch. Against `W` calls to
    /// [`Engine::insert`]/[`Engine::delete`] this turns write cost from
    /// O(W·n) into O(n) + O(W), and readers observe a single atomic
    /// transition instead of `W` intermediate snapshots.
    ///
    /// Failures are per-op, not per-batch: a rejected op (wrong
    /// dimensionality, non-finite component, unknown id, would-empty) is
    /// reported in its slot of [`BatchReport::results`] while the rest of
    /// the batch still applies. Ops apply in order, so a delete may target
    /// an id inserted earlier in the same batch, and
    /// [`MutationError::WouldEmptyIndex`] is judged against the evolving
    /// state. If *no* op applies, nothing is published and the epoch does
    /// not move.
    ///
    /// The batch-level error is [`MutationError::ReindexInProgress`]: a
    /// background rebuild's swap would silently discard the whole batch,
    /// so batches wait it out, exactly like single-op mutations.
    pub fn apply(&self, ops: &[MutOp]) -> Result<BatchReport, MutationError> {
        let _writer = self.snapshot.begin_write();
        if self.snapshot.is_rebuilding() {
            return Err(MutationError::ReindexInProgress);
        }
        let (current, epoch) = self.snapshot.load_with_epoch();
        if ops.is_empty() {
            return Ok(BatchReport {
                epoch,
                points: current.len(),
                applied: 0,
                results: Vec::new(),
            });
        }
        let mut next = (*current).clone();
        let results: Vec<Result<pm_lsh_metric::PointId, MutationError>> = next
            .apply(ops)
            .into_iter()
            .map(|r| r.map_err(mutation_error_for_reject))
            .collect();
        let applied = results.iter().filter(|r| r.is_ok()).count();
        let points = next.len();
        let epoch = if applied > 0 {
            self.snapshot.swap(Arc::new(next))
        } else {
            epoch
        };
        Ok(BatchReport {
            epoch,
            points,
            applied,
            results,
        })
    }

    /// A summary of the served snapshot (the TCP `INDEXINFO` payload).
    /// Snapshot fields and `epoch` are read under one lock, so the pair is
    /// always consistent; `reindexing` is inherently transient.
    pub fn info(&self) -> IndexInfo {
        let (index, epoch) = self.snapshot.load_with_epoch();
        let reindexing = self.snapshot.is_rebuilding();
        IndexInfo {
            points: index.len(),
            dim: index.data().dim(),
            m: index.params().m,
            c: index.params().c,
            epoch,
            reindexing,
            state: if reindexing { "building" } else { "serving" },
            pct: if reindexing {
                self.snapshot.progress()
            } else {
                100
            },
            shards: 1,
        }
    }

    /// Atomically writes the currently served snapshot to `path` as a
    /// `.pmlsh` file (see `pm-lsh-persist`). The snapshot is pinned once
    /// at entry: serialization runs on the calling thread against that
    /// immutable `Arc`, holding no engine locks, so concurrent queries,
    /// mutations and reindexes proceed undisturbed — a mutation landing
    /// mid-save is simply not part of the saved snapshot.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<pm_lsh_persist::SaveReport, pm_lsh_persist::PersistError> {
        let snapshot = self.snapshot.load();
        pm_lsh_persist::save(&snapshot, path)
    }

    /// Rebuilds the served index over `data` on a background thread and
    /// atomically swaps it in, without ever blocking concurrent queries:
    /// in-flight work finishes on the snapshot it started with, work
    /// arriving after the swap runs on the new one, and no query can
    /// observe a half-built index.
    ///
    /// Returns immediately with a [`ReindexTicket`]; call
    /// [`ReindexTicket::wait`] for the completion report (or drop the
    /// ticket to let the rebuild finish unobserved). Only one reindex may
    /// run at a time, and the new dataset must keep the served
    /// dimensionality — connected clients hold protocol state derived
    /// from `dim`.
    pub fn begin_reindex(
        &self,
        data: impl Into<Arc<Dataset>>,
        params: PmLshParams,
        opts: BuildOptions,
    ) -> Result<ReindexTicket, ReindexError> {
        let data = data.into();
        if data.is_empty() {
            return Err(ReindexError::EmptyDataset);
        }
        let served_dim = self.snapshot.load().data().dim();
        if data.dim() != served_dim {
            return Err(ReindexError::DimensionMismatch {
                served: served_dim,
                offered: data.dim(),
            });
        }
        // A NaN/Inf component would panic deep inside the build (pivot
        // selection compares distances with `partial_cmp().unwrap()`).
        // Validate here so a poisoned dataset file is an ERR reply on the
        // wire, not a dead build thread — the same policy as query
        // validation, and what keeps `ReindexTicket::wait`'s no-panic
        // claim true.
        if validate_points(data.as_flat()).is_err() {
            return Err(ReindexError::NonFiniteData);
        }
        if !self.snapshot.try_begin_rebuild() {
            return Err(ReindexError::InProgress);
        }
        let snapshot = Arc::clone(&self.snapshot);
        let handle = std::thread::Builder::new()
            .name("pmlsh-reindex".to_string())
            .spawn(move || {
                // Release the rebuild slot even if the build panics, so a
                // poisoned dataset cannot wedge reindexing forever.
                struct RebuildSlot(Arc<SnapshotCell>);
                impl Drop for RebuildSlot {
                    fn drop(&mut self) {
                        self.0.end_rebuild();
                    }
                }
                let _slot = RebuildSlot(Arc::clone(&snapshot));
                let start = Instant::now();
                let points = data.len();
                // Phase-boundary progress for INDEXINFO: the build itself
                // has no per-point instrumentation, so the gauge moves in
                // coarse steps — 10 entering the build, 90 when the built
                // index awaits its swap, 100 once serving resumes.
                snapshot.set_progress(10);
                let next = Arc::new(PmLsh::build_with_opts(data, params, opts));
                snapshot.set_progress(90);
                // The swap itself goes through the writer lock so it can
                // never interleave inside a mutation's load → patch →
                // swap sequence (which would silently orphan the
                // mutation); a rebuild landing *after* a mutation
                // replaces the dataset wholesale by design.
                let epoch = {
                    let _writer = snapshot.begin_write();
                    snapshot.swap(next)
                };
                ReindexReport {
                    epoch,
                    points,
                    build_secs: start.elapsed().as_secs_f64(),
                }
            });
        match handle {
            Ok(handle) => Ok(ReindexTicket { handle }),
            Err(_) => {
                self.snapshot.end_rebuild();
                Err(ReindexError::SpawnFailed)
            }
        }
    }

    /// [`Engine::begin_reindex`] + [`ReindexTicket::wait`]: blocks the
    /// *calling* thread until the swap lands (concurrent queries keep
    /// flowing the whole time) and returns the completion report.
    pub fn reindex(
        &self,
        data: impl Into<Arc<Dataset>>,
        params: PmLshParams,
        opts: BuildOptions,
    ) -> Result<ReindexReport, ReindexError> {
        Ok(self.begin_reindex(data, params, opts)?.wait())
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker threads actually running.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Answers one `(c, k)`-ANN query, blocking until a worker replies.
    ///
    /// The request travels through the micro-batching queue, so concurrent
    /// callers (e.g. TCP connections) are coalesced automatically. Results
    /// are bit-identical to [`PmLsh::query`] — the engine adds concurrency,
    /// never approximation. `k` larger than the indexed point count is
    /// clamped to it (a kNN answer can never exceed `n`), which also keeps
    /// an absurd client-supplied `k` from forcing a giant allocation.
    ///
    /// # Panics
    ///
    /// On a dimension mismatch, a non-finite query component, or `k == 0`
    /// — every [`QueryError`]. Callers serving untrusted input (the TCP
    /// layer) use [`Engine::try_query`] instead and turn each variant
    /// into an `ERR` reply.
    pub fn query(&self, q: &[f32], k: usize) -> QueryResult {
        self.try_query(q, k)
            .unwrap_or_else(|e| panic_for_query_error(e))
    }

    /// The non-panicking [`Engine::query`]: every way a query can fail is
    /// a typed [`QueryError`] instead of a panic — including a worker
    /// panic mid-execution ([`QueryError::Internal`]), which used to
    /// propagate out of `query` and tear down whatever thread was serving
    /// the caller (a TCP client saw a raw disconnect with no reply).
    pub fn try_query(&self, q: &[f32], k: usize) -> Result<QueryResult, QueryError> {
        let snapshot = self.snapshot.load();
        try_validate(&snapshot, q, k)?;
        let (reply, receive) = channel();
        let k = k.min(snapshot.len());
        self.queue.enqueue(Request {
            snapshot,
            query: q.to_vec(),
            k,
            fanout_budget: None,
            enqueued: Instant::now(),
            reply: ReplySink::Channel(reply),
        });
        // The worker drops the reply sender without answering exactly when
        // the query panicked inside the pool's catch_unwind.
        match receive.recv() {
            Ok((_slot, result)) => Ok(result),
            Err(_) => Err(QueryError::Internal),
        }
    }

    /// The completion-callback twin of [`Engine::try_query`], for callers
    /// that must not park a thread per request — the serving reactor.
    ///
    /// Validation runs synchronously: an invalid query is returned as
    /// `Err` *without* invoking `cb`. A valid query is enqueued through
    /// the same micro-batching queue as [`Engine::try_query`] (results
    /// stay bit-identical) and `cb` fires exactly once, on a worker
    /// thread, with the result — `Err(QueryError::Internal)` when the
    /// worker panicked. Note `enqueue` applies backpressure: when the
    /// bounded queue is full this call blocks until space frees, exactly
    /// like the blocking entry point.
    pub fn submit_query<F>(&self, q: &[f32], k: usize, cb: F) -> Result<(), QueryError>
    where
        F: FnOnce(Result<QueryResult, QueryError>) + Send + 'static,
    {
        let snapshot = self.snapshot.load();
        try_validate(&snapshot, q, k)?;
        let k = k.min(snapshot.len());
        self.queue.enqueue(Request {
            snapshot,
            query: q.to_vec(),
            k,
            fanout_budget: None,
            enqueued: Instant::now(),
            reply: ReplySink::Callback(Box::new(move |_slot, result| {
                cb(result.ok_or(QueryError::Internal));
            })),
        });
        Ok(())
    }

    /// Answers a batch of queries across the whole pool, preserving input
    /// order. The batch bypasses the micro-batcher (it is already a batch)
    /// and is sharded into one contiguous chunk per worker. `k` is clamped
    /// to the indexed point count, as in [`Engine::query`].
    ///
    /// # Panics
    ///
    /// On a dimension mismatch, a non-finite query component, or `k == 0`.
    pub fn query_batch(&self, queries: &[impl AsRef<[f32]>], k: usize) -> Vec<QueryResult> {
        if queries.is_empty() {
            return Vec::new();
        }
        let snapshot = self.snapshot.load();
        for q in queries {
            // Same rules as try_query; batch callers keep the panicking
            // contract of Engine::query.
            if let Err(e) = try_validate(&snapshot, q.as_ref(), k) {
                panic_for_query_error(e);
            }
        }
        let k = k.min(snapshot.len());
        let enqueued = Instant::now();
        let (reply, receive) = channel();
        // One snapshot pin for the whole batch: even if a reindex swap
        // lands mid-batch, every result indexes the same dataset.
        let jobs: Vec<QueryJob> = queries
            .iter()
            .enumerate()
            .map(|(slot, q)| QueryJob {
                slot,
                snapshot: Arc::clone(&snapshot),
                query: q.as_ref().to_vec(),
                k,
                fanout_budget: None,
                enqueued,
                reply: ReplySink::Channel(reply.clone()),
            })
            .collect();
        self.pool.submit_sharded(jobs);
        drop(reply);

        let mut results: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();
        for _ in 0..queries.len() {
            let (slot, result) = receive
                .recv()
                .expect("query execution panicked in the engine worker pool");
            results[slot] = Some(result);
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot answered"))
            .collect()
    }

    /// A point-in-time snapshot of the serving statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }
}

/// The single numeric-validity gate for every path that feeds floats into
/// the index stack — queries ([`Engine::try_query`], [`Engine::query_batch`]),
/// single-point inserts ([`Engine::insert`]), whole-dataset ingest
/// ([`Engine::begin_reindex`] and the TCP `ATTACH` handler). A NaN/Inf
/// smuggled past any of these panics deep inside distance kernels or pivot
/// selection on some worker thread; rejecting here, on the caller's
/// thread, turns every poisoned input into a typed error (an `ERR` line on
/// the wire).
///
/// Returns `Err(i)` with the flat index of the first non-finite component.
pub fn validate_points(values: &[f32]) -> Result<(), usize> {
    match values.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(i),
    }
}

/// The single source of truth for query validation, shared by
/// [`Engine::try_query`] and [`Engine::query_batch`].
fn try_validate(snapshot: &PmLsh, q: &[f32], k: usize) -> Result<(), QueryError> {
    if q.len() != snapshot.data().dim() {
        return Err(QueryError::DimensionMismatch {
            expected: snapshot.data().dim(),
            got: q.len(),
        });
    }
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    if validate_points(q).is_err() {
        return Err(QueryError::NonFiniteComponent);
    }
    Ok(())
}

/// The panicking contract of [`Engine::query`]/[`Engine::query_batch`]:
/// each [`QueryError`] maps to its historical panic message.
fn panic_for_query_error(e: QueryError) -> ! {
    match e {
        QueryError::DimensionMismatch { .. } => {
            panic!("query has wrong dimensionality for the served index")
        }
        QueryError::ZeroK => panic!("k must be positive"),
        QueryError::NonFiniteComponent => panic!("query contains a non-finite component"),
        QueryError::Internal => panic!("query execution panicked in the engine worker pool"),
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let index = self.snapshot.load();
        f.debug_struct("Engine")
            .field("points", &index.len())
            .field("dim", &index.data().dim())
            .field("epoch", &self.snapshot.epoch())
            .field("threads", &self.pool.threads())
            .field("config", &self.config)
            .finish()
    }
}

/// Why a query failed ([`Engine::try_query`]).
///
/// [`Engine::query`] turns each variant into a panic with the historical
/// message; the TCP layer turns each into an `ERR` reply line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query vector's length differs from the served dimensionality.
    DimensionMismatch {
        /// Dimensionality of the served snapshot.
        expected: usize,
        /// Components in the offered query vector.
        got: usize,
    },
    /// `k == 0` — a kNN query must request at least one neighbor.
    ZeroK,
    /// The query contains a NaN or infinite component.
    NonFiniteComponent,
    /// The worker executing the query panicked (the pool catches the
    /// panic and survives; only this query is lost). Validated inputs
    /// cannot reach this — it indicates a bug, but one the serving layer
    /// reports as `ERR internal error` instead of dropping the client.
    Internal,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "query has {got} components, index dimensionality is {expected}"
                )
            }
            QueryError::ZeroK => write!(f, "k must be positive"),
            QueryError::NonFiniteComponent => {
                write!(f, "query contains a non-finite component")
            }
            QueryError::Internal => {
                write!(f, "query execution panicked in the engine worker pool")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Why a reindex could not start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReindexError {
    /// Another reindex is still building; retry after it completes.
    InProgress,
    /// The offered dataset's dimensionality differs from the served one.
    DimensionMismatch {
        /// Dimensionality of the snapshot currently being served.
        served: usize,
        /// Dimensionality of the dataset offered for reindexing.
        offered: usize,
    },
    /// The offered dataset holds no points (an index cannot be empty).
    EmptyDataset,
    /// The offered dataset contains a NaN or infinite component.
    NonFiniteData,
    /// The OS refused to spawn the background build thread.
    SpawnFailed,
}

impl std::fmt::Display for ReindexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReindexError::InProgress => write!(f, "a reindex is already in progress"),
            ReindexError::DimensionMismatch { served, offered } => write!(
                f,
                "dimension mismatch: serving R^{served}, offered R^{offered}"
            ),
            ReindexError::EmptyDataset => write!(f, "cannot reindex onto an empty dataset"),
            ReindexError::NonFiniteData => {
                write!(f, "dataset contains a non-finite (NaN/Inf) component")
            }
            ReindexError::SpawnFailed => write!(f, "failed to spawn the reindex thread"),
        }
    }
}

impl std::error::Error for ReindexError {}

/// Why a single-point mutation ([`Engine::insert`]/[`Engine::delete`])
/// was refused. The TCP layer turns each variant into an `ERR` reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// The offered point's length differs from the served dimensionality.
    DimensionMismatch {
        /// Dimensionality of the served snapshot.
        expected: usize,
        /// Components in the offered point.
        got: usize,
    },
    /// The offered point contains a NaN or infinite component.
    NonFiniteComponent,
    /// No live point carries this external id (never indexed, or already
    /// deleted).
    UnknownId(pm_lsh_metric::PointId),
    /// Deleting this point would empty the index; a served index is
    /// non-empty by construction (`REINDEX` onto a new dataset instead).
    WouldEmptyIndex,
    /// A background reindex is building; its swap would silently discard
    /// a concurrent mutation, so mutations wait it out.
    ReindexInProgress,
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::DimensionMismatch { expected, got } => write!(
                f,
                "point has {got} components, index dimensionality is {expected}"
            ),
            MutationError::NonFiniteComponent => {
                write!(f, "point contains a non-finite component")
            }
            MutationError::UnknownId(id) => write!(f, "unknown point id {id}"),
            MutationError::WouldEmptyIndex => {
                write!(f, "cannot delete the last indexed point")
            }
            MutationError::ReindexInProgress => {
                write!(f, "a reindex is in progress; retry once it completes")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Maps a core-layer per-op rejection ([`MutReject`]) onto the engine's
/// mutation vocabulary — the same `ERR` strings single-op `INSERT`/`DELETE`
/// produce on the wire.
fn mutation_error_for_reject(r: MutReject) -> MutationError {
    match r {
        MutReject::WrongDim { expected, got } => MutationError::DimensionMismatch { expected, got },
        MutReject::NonFinite => MutationError::NonFiniteComponent,
        MutReject::UnknownId(id) => MutationError::UnknownId(id),
        MutReject::WouldEmpty => MutationError::WouldEmptyIndex,
    }
}

/// Summary of a published batch mutation ([`Engine::apply`] /
/// [`ShardedEngine::apply`]).
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// The epoch after the batch: the single publication's epoch for a
    /// monolithic engine (unchanged if no op applied), the summed
    /// per-shard epoch for a sharded one.
    pub epoch: u64,
    /// Live points after the batch.
    pub points: usize,
    /// How many ops applied (`results.iter().filter(|r| r.is_ok())`).
    pub applied: usize,
    /// Per-op outcomes in input order: the external id inserted/deleted,
    /// or why that one op was refused.
    pub results: Vec<Result<pm_lsh_metric::PointId, MutationError>>,
}

impl BatchReport {
    /// How many ops were refused.
    pub fn failed(&self) -> usize {
        self.results.len() - self.applied
    }
}

/// Summary of a published single-point mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationReport {
    /// The external id inserted or deleted.
    pub id: pm_lsh_metric::PointId,
    /// The epoch the mutated snapshot was published as.
    pub epoch: u64,
    /// Live points in the published snapshot.
    pub points: usize,
}

/// Summary of a completed reindex.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReindexReport {
    /// The epoch the new snapshot was published as.
    pub epoch: u64,
    /// Points in the new snapshot.
    pub points: usize,
    /// Wall-clock build time, up to and including the swap.
    pub build_secs: f64,
}

/// A running background reindex (see [`Engine::begin_reindex`]).
///
/// Dropping the ticket detaches the rebuild: it still completes and swaps,
/// just unobserved.
#[derive(Debug)]
pub struct ReindexTicket {
    handle: JoinHandle<ReindexReport>,
}

impl ReindexTicket {
    /// Blocks until the rebuild has swapped its snapshot in.
    ///
    /// # Panics
    /// Propagates a panic from the build thread (a build can only panic on
    /// arguments [`Engine::begin_reindex`] already validated, so this is a
    /// bug, not an operational error).
    pub fn wait(self) -> ReindexReport {
        self.handle.join().expect("reindex build thread panicked")
    }

    /// `true` once the background build has finished (swap included);
    /// [`ReindexTicket::wait`] will not block.
    pub fn is_done(&self) -> bool {
        self.handle.is_finished()
    }
}

/// A point-in-time description of the served snapshot, as reported by
/// [`Engine::info`] and the TCP `INDEXINFO` verb.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexInfo {
    /// Indexed points `n`.
    pub points: usize,
    /// Original-space dimensionality `d`.
    pub dim: usize,
    /// Number of Gaussian hash functions `m`.
    pub m: u32,
    /// Approximation ratio `c`.
    pub c: f64,
    /// Snapshot generation (0 = the index the engine started with).
    pub epoch: u64,
    /// `true` while a background reindex is building.
    pub reindexing: bool,
    /// `"building"` while a background reindex runs, `"serving"` otherwise
    /// (the same fact as `reindexing`, in the wire protocol's vocabulary).
    pub state: &'static str,
    /// Coarse progress percentage: 100 while serving, the rebuild's
    /// phase-boundary gauge while building (the slowest shard's gauge
    /// when sharded).
    pub pct: u8,
    /// Shards serving this logical index (1 for a monolithic engine).
    pub shards: usize,
}

impl std::fmt::Display for IndexInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "points={} dim={} m={} c={} epoch={} reindexing={} state={} pct={} shards={}",
            self.points,
            self.dim,
            self.m,
            self.c,
            self.epoch,
            self.reindexing,
            self.state,
            self.pct,
            self.shards
        )
    }
}

// The engine's whole premise is lock-free shared reads of one snapshot:
// everything it shares across threads must stay `Send + Sync`. These
// compile-time assertions (hand-rolled `static_assertions`) catch any
// future `Rc`/`Cell`/raw-pointer regression in the index stack at build
// time rather than at `thread::spawn` call sites.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Dataset>();
    assert_send_sync::<PmLsh>();
    assert_send_sync::<QueryResult>();
    assert_send_sync::<QueryStats>();
    assert_send_sync::<Engine>();
    assert_send_sync::<ShardedEngine>();
    assert_send_sync::<EngineStats>();
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<IndexInfo>();
    assert_send_sync::<ReindexTicket>();
    assert_send_sync::<Router>();
    assert_send_sync::<ServerConfig>();
    assert_send_sync::<QueryError>();
    assert_send_sync::<MutationError>();
    assert_send_sync::<MutationReport>();
    assert_send_sync::<MutOp>();
    assert_send_sync::<BatchReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_core::PmLshParams;
    use pm_lsh_stats::Rng;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn single_query_matches_index() {
        let data = blob(500, 16, 1);
        let q = data.point(7).to_vec();
        let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
        let engine = Engine::new(Arc::clone(&index), EngineConfig::default());
        let direct = index.query(&q, 5);
        let served = engine.query(&q, 5);
        assert_eq!(served.neighbors, direct.neighbors);
        assert_eq!(served.stats, direct.stats);
        assert_eq!(engine.stats().queries, 1);
    }

    #[test]
    fn batch_preserves_order_and_matches_sequential() {
        let data = blob(600, 12, 2);
        let queries: Vec<Vec<f32>> = (0..17).map(|i| data.point(i).to_vec()).collect();
        let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
        let engine = Engine::new(
            Arc::clone(&index),
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        );
        let batch = engine.query_batch(&queries, 3);
        assert_eq!(batch.len(), 17);
        for (qi, q) in queries.iter().enumerate() {
            let single = index.query(q, 3);
            assert_eq!(batch[qi].neighbors, single.neighbors, "query {qi}");
            assert_eq!(batch[qi].stats, single.stats, "query {qi}");
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 17);
        assert_eq!(
            stats.query_stats,
            batch.iter().map(|r| r.stats).sum(),
            "aggregated counters must equal the per-query sum"
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let data = blob(100, 8, 3);
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        let no_queries: &[Vec<f32>] = &[];
        assert!(engine.query_batch(no_queries, 4).is_empty());
        assert_eq!(engine.stats().queries, 0);
    }

    #[test]
    fn concurrent_callers_share_one_engine() {
        let data = blob(400, 10, 4);
        let queries: Vec<Vec<f32>> = (0..24).map(|i| data.point(i).to_vec()).collect();
        let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
        let engine = Engine::new(
            Arc::clone(&index),
            EngineConfig {
                threads: 3,
                batch_size: 8,
                max_wait: Duration::from_millis(1),
                ..Default::default()
            },
        );
        std::thread::scope(|scope| {
            for chunk in queries.chunks(6) {
                let engine = engine.clone();
                let index = Arc::clone(&index);
                scope.spawn(move || {
                    for q in chunk {
                        let served = engine.query(q, 4);
                        let direct = index.query(q, 4);
                        assert_eq!(served.neighbors, direct.neighbors);
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.queries, 24);
        assert!(stats.batches >= 1 && stats.batches <= 24);
        assert!(stats.mean_batch >= 1.0);
    }

    #[test]
    fn absurd_k_is_clamped_to_n() {
        let data = blob(60, 6, 7);
        let q = data.point(0).to_vec();
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        // Would be a multi-terabyte TopK allocation if not clamped.
        let res = engine.query(&q, usize::MAX / 2);
        assert_eq!(res.neighbors.len(), 60);
        let batch = engine.query_batch(&[&q[..]], usize::MAX / 2);
        assert_eq!(batch[0].neighbors.len(), 60);
    }

    #[test]
    fn try_query_returns_typed_errors_instead_of_panicking() {
        let data = blob(80, 8, 8);
        let q = data.point(0).to_vec();
        let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
        let engine = Engine::new(
            Arc::clone(&index),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );

        // The happy path is bit-identical to the panicking entry point.
        let direct = index.query(&q, 3);
        let tried = engine.try_query(&q, 3).expect("valid query");
        assert_eq!(tried.neighbors, direct.neighbors);
        assert_eq!(tried.stats, direct.stats);

        assert_eq!(
            engine.try_query(&q[..4], 3).unwrap_err(),
            QueryError::DimensionMismatch {
                expected: 8,
                got: 4
            }
        );
        assert_eq!(engine.try_query(&q, 0).unwrap_err(), QueryError::ZeroK);
        let mut poisoned = q.clone();
        poisoned[2] = f32::INFINITY;
        assert_eq!(
            engine.try_query(&poisoned, 3).unwrap_err(),
            QueryError::NonFiniteComponent
        );

        // A worker panic mid-query is Internal, not a caller panic — and
        // the pool survives to answer the next query.
        let mut crashing = q.clone();
        crashing[0] = crate::pool::CRASH_TEST_SENTINEL;
        assert_eq!(
            engine.try_query(&crashing, 3).unwrap_err(),
            QueryError::Internal
        );
        assert_eq!(engine.try_query(&q, 3).unwrap().neighbors, direct.neighbors);
    }

    #[test]
    fn validate_points_reports_first_offender() {
        assert_eq!(validate_points(&[]), Ok(()));
        assert_eq!(validate_points(&[0.0, -1.5, 3.0e30]), Ok(()));
        assert_eq!(validate_points(&[0.0, f32::NAN, f32::NAN]), Err(1));
        assert_eq!(validate_points(&[f32::NEG_INFINITY]), Err(0));
        assert_eq!(validate_points(&[1.0, 2.0, f32::INFINITY]), Err(2));
    }

    #[test]
    fn insert_and_delete_publish_new_snapshots() {
        let data = blob(200, 8, 90);
        let q = data.point(0).to_vec();
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(engine.epoch(), 0);

        // Insert: fresh id, epoch bump, immediately queryable at dist 0.
        let point = vec![7.5f32; 8];
        let ins = engine.insert(&point).expect("insert");
        assert_eq!(ins.id, 200);
        assert_eq!(ins.epoch, 1);
        assert_eq!(ins.points, 201);
        assert_eq!(engine.info().points, 201);
        let res = engine.query(&point, 1);
        assert_eq!(res.neighbors[0].id, 200);
        assert_eq!(res.neighbors[0].dist, 0.0);

        // A snapshot pinned before the delete keeps answering with the
        // point; the served index no longer returns it.
        let held = engine.index();
        let del = engine.delete(200).expect("delete");
        assert_eq!(del.epoch, 2);
        assert_eq!(del.points, 200);
        assert!(held.contains(200), "pinned snapshot must be immutable");
        let res = engine.query(&point, 1);
        assert_ne!(res.neighbors[0].id, 200, "deleted id served");

        // Typed refusals, with the index left fully usable.
        assert_eq!(
            engine.delete(200).unwrap_err(),
            MutationError::UnknownId(200)
        );
        assert_eq!(
            engine.insert(&[1.0, 2.0]).unwrap_err(),
            MutationError::DimensionMismatch {
                expected: 8,
                got: 2
            }
        );
        let mut poisoned = point.clone();
        poisoned[3] = f32::NAN;
        assert_eq!(
            engine.insert(&poisoned).unwrap_err(),
            MutationError::NonFiniteComponent
        );
        assert_eq!(engine.epoch(), 2, "refused mutations must not publish");
        assert_eq!(engine.query(&q, 3).neighbors.len(), 3);
    }

    #[test]
    fn delete_refuses_to_empty_the_index() {
        let ds = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let engine = Engine::new(
            PmLsh::build(ds, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        engine.delete(0).expect("first delete");
        assert_eq!(
            engine.delete(1).unwrap_err(),
            MutationError::WouldEmptyIndex
        );
        assert_eq!(engine.info().points, 1);
    }

    #[test]
    fn concurrent_queries_never_fail_during_mutation_churn() {
        let data = blob(500, 10, 91);
        let queries: Vec<Vec<f32>> = (0..8).map(|i| data.point(i).to_vec()).collect();
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        std::thread::scope(|scope| {
            let mutator = {
                let engine = engine.clone();
                scope.spawn(move || {
                    let mut inserted = Vec::new();
                    for round in 0..30 {
                        let v = vec![round as f32 * 0.1; 10];
                        inserted.push(engine.insert(&v).expect("insert").id);
                        if round % 3 == 0 {
                            let id = inserted.remove(0);
                            engine.delete(id).expect("delete");
                        }
                    }
                })
            };
            for chunk in queries.chunks(2) {
                let engine = engine.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        for q in chunk {
                            let res = engine.try_query(q, 5).expect("query during churn");
                            assert_eq!(res.neighbors.len(), 5);
                        }
                    }
                });
            }
            mutator.join().expect("mutator");
        });
        // 30 inserts + 10 deletes = 40 publications.
        assert_eq!(engine.epoch(), 40);
    }

    #[test]
    #[should_panic(expected = "non-finite component")]
    fn non_finite_query_panics_on_the_caller_thread() {
        let data = blob(50, 8, 6);
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let mut q = [0.5f32; 8];
        q[3] = f32::NAN;
        engine.query(&q, 1);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn dimension_mismatch_panics_on_the_caller_thread() {
        let data = blob(50, 8, 5);
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        engine.query(&[0.0f32; 4], 1);
    }
}
