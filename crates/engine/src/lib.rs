//! `pm-lsh-engine` — a concurrent, batched query engine and TCP serving
//! layer over the PM-LSH index.
//!
//! The sibling crates answer one query at a time on the calling thread;
//! this crate turns the immutable [`PmLsh`] index into a serving system:
//!
//! * [`Engine`] wraps an `Arc<PmLsh>` snapshot plus a fixed pool of worker
//!   threads (`std::thread` + `std::sync::mpsc`, like everything else in
//!   the workspace: no external dependencies). [`Engine::query`] is a
//!   blocking call that travels through the micro-batching request queue;
//!   [`Engine::query_batch`] shards a whole query set across the pool and
//!   returns results in input order.
//! * The micro-batcher (a bounded channel and a collector thread) groups
//!   up to `batch_size` concurrent requests, waiting at most `max_wait`
//!   after the first, before handing them to the pool — one channel send
//!   per worker per batch instead of one per query, and a natural
//!   backpressure point when the queue fills.
//! * [`EngineStats`] aggregates throughput, p50/p99 latency and the summed
//!   per-query [`QueryStats`] counters, so benchmarks can draw scaling
//!   curves against thread count.
//! * [`serve`] exposes the engine over TCP with a newline-delimited text
//!   protocol (see [`server`] for the exact grammar).
//!
//! Queries on a built index are pure reads, so the engine needs no locks on
//! the hot path; the compile-time assertions at the bottom of this module
//! pin down that [`PmLsh`] and [`Dataset`] stay `Send + Sync`.
//!
//! # Quick start
//!
//! ```
//! use pm_lsh_core::{PmLsh, PmLshParams};
//! use pm_lsh_engine::{Engine, EngineConfig};
//! use pm_lsh_metric::Dataset;
//! use pm_lsh_stats::Rng;
//!
//! let mut rng = Rng::new(9);
//! let mut data = Dataset::with_capacity(32, 400);
//! let mut buf = [0.0f32; 32];
//! for _ in 0..400 {
//!     rng.fill_normal(&mut buf);
//!     data.push(&buf);
//! }
//! let queries: Vec<Vec<f32>> = (0..8).map(|i| data.point(i).to_vec()).collect();
//!
//! let index = PmLsh::build(data, PmLshParams::default());
//! let engine = Engine::new(index, EngineConfig { threads: 4, ..Default::default() });
//!
//! let results = engine.query_batch(&queries, 5);
//! assert_eq!(results.len(), 8);
//! assert_eq!(results[3].neighbors[0].id, 3); // input order is preserved
//! assert_eq!(engine.stats().queries, 8);
//! ```

#![warn(missing_docs)]

mod batch;
mod pool;
pub mod server;
mod stats;

pub use server::{serve, ServerHandle};
pub use stats::EngineStats;

use crate::batch::{BatchQueue, Request};
use crate::pool::{QueryJob, WorkerPool};
use crate::stats::StatsCollector;
use pm_lsh_core::{PmLsh, QueryResult, QueryStats};
use pm_lsh_metric::Dataset;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for an [`Engine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads in the pool. `0` means available parallelism.
    pub threads: usize,
    /// Most requests one micro-batch may coalesce.
    pub batch_size: usize,
    /// Longest the batcher waits after a batch's first request.
    pub max_wait: Duration,
    /// Bounded request-queue capacity; full means callers block.
    pub queue_depth: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            batch_size: 32,
            max_wait: Duration::from_micros(200),
            queue_depth: 1024,
        }
    }
}

impl EngineConfig {
    /// The effective thread count (`threads`, or available parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// A concurrent query engine over one immutable PM-LSH snapshot.
///
/// Cloning is cheap and shares the pool, the queue and the statistics
/// (everything is behind `Arc`s), so one engine can serve many threads —
/// the TCP layer clones it into every connection handler.
#[derive(Clone)]
pub struct Engine {
    index: Arc<PmLsh>,
    pool: Arc<WorkerPool>,
    queue: Arc<BatchQueue>,
    stats: Arc<StatsCollector>,
    config: EngineConfig,
}

impl Engine {
    /// Spins up the worker pool and batcher over a built index.
    pub fn new(index: impl Into<Arc<PmLsh>>, config: EngineConfig) -> Self {
        let index = index.into();
        let stats = Arc::new(StatsCollector::new());
        let pool = Arc::new(WorkerPool::new(
            Arc::clone(&index),
            config.effective_threads(),
            Arc::clone(&stats),
        ));
        let queue = Arc::new(BatchQueue::new(
            Arc::clone(&pool),
            Arc::clone(&stats),
            config.batch_size,
            config.max_wait,
            config.queue_depth,
        ));
        Self {
            index,
            pool,
            queue,
            stats,
            config,
        }
    }

    /// The served index snapshot.
    pub fn index(&self) -> &Arc<PmLsh> {
        &self.index
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker threads actually running.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Answers one `(c, k)`-ANN query, blocking until a worker replies.
    ///
    /// The request travels through the micro-batching queue, so concurrent
    /// callers (e.g. TCP connections) are coalesced automatically. Results
    /// are bit-identical to [`PmLsh::query`] — the engine adds concurrency,
    /// never approximation. `k` larger than the indexed point count is
    /// clamped to it (a kNN answer can never exceed `n`), which also keeps
    /// an absurd client-supplied `k` from forcing a giant allocation.
    ///
    /// # Panics
    ///
    /// On a dimension mismatch, a non-finite query component, or `k == 0`.
    pub fn query(&self, q: &[f32], k: usize) -> QueryResult {
        self.validate(q, k);
        let (reply, receive) = channel();
        self.queue.enqueue(Request {
            query: q.to_vec(),
            k: k.min(self.index.len()),
            enqueued: Instant::now(),
            reply,
        });
        let (_slot, result) = receive
            .recv()
            .expect("query execution panicked in the engine worker pool");
        result
    }

    /// Answers a batch of queries across the whole pool, preserving input
    /// order. The batch bypasses the micro-batcher (it is already a batch)
    /// and is sharded into one contiguous chunk per worker. `k` is clamped
    /// to the indexed point count, as in [`Engine::query`].
    ///
    /// # Panics
    ///
    /// On a dimension mismatch, a non-finite query component, or `k == 0`.
    pub fn query_batch(&self, queries: &[impl AsRef<[f32]>], k: usize) -> Vec<QueryResult> {
        if queries.is_empty() {
            return Vec::new();
        }
        for q in queries {
            self.validate(q.as_ref(), k);
        }
        let k = k.min(self.index.len());
        let enqueued = Instant::now();
        let (reply, receive) = channel();
        let jobs: Vec<QueryJob> = queries
            .iter()
            .enumerate()
            .map(|(slot, q)| QueryJob {
                slot,
                query: q.as_ref().to_vec(),
                k,
                enqueued,
                reply: reply.clone(),
            })
            .collect();
        self.pool.submit_sharded(jobs);
        drop(reply);

        let mut results: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();
        for _ in 0..queries.len() {
            let (slot, result) = receive
                .recv()
                .expect("query execution panicked in the engine worker pool");
            results[slot] = Some(result);
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch slot answered"))
            .collect()
    }

    /// A point-in-time snapshot of the serving statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    fn validate(&self, q: &[f32], k: usize) {
        assert_eq!(
            q.len(),
            self.index.data().dim(),
            "query has wrong dimensionality for the served index"
        );
        assert!(k >= 1, "k must be positive");
        // Reject NaN/inf on the caller's thread: a non-finite component
        // would otherwise take down the worker that draws the job (and the
        // caller would only see a dropped reply channel).
        assert!(
            q.iter().all(|v| v.is_finite()),
            "query contains a non-finite component"
        );
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("points", &self.index.len())
            .field("dim", &self.index.data().dim())
            .field("threads", &self.pool.threads())
            .field("config", &self.config)
            .finish()
    }
}

// The engine's whole premise is lock-free shared reads of one snapshot:
// everything it shares across threads must stay `Send + Sync`. These
// compile-time assertions (hand-rolled `static_assertions`) catch any
// future `Rc`/`Cell`/raw-pointer regression in the index stack at build
// time rather than at `thread::spawn` call sites.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Dataset>();
    assert_send_sync::<PmLsh>();
    assert_send_sync::<QueryResult>();
    assert_send_sync::<QueryStats>();
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineStats>();
    assert_send_sync::<ServerHandle>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_core::PmLshParams;
    use pm_lsh_stats::Rng;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn single_query_matches_index() {
        let data = blob(500, 16, 1);
        let q = data.point(7).to_vec();
        let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
        let engine = Engine::new(Arc::clone(&index), EngineConfig::default());
        let direct = index.query(&q, 5);
        let served = engine.query(&q, 5);
        assert_eq!(served.neighbors, direct.neighbors);
        assert_eq!(served.stats, direct.stats);
        assert_eq!(engine.stats().queries, 1);
    }

    #[test]
    fn batch_preserves_order_and_matches_sequential() {
        let data = blob(600, 12, 2);
        let queries: Vec<Vec<f32>> = (0..17).map(|i| data.point(i).to_vec()).collect();
        let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
        let engine = Engine::new(
            Arc::clone(&index),
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        );
        let batch = engine.query_batch(&queries, 3);
        assert_eq!(batch.len(), 17);
        for (qi, q) in queries.iter().enumerate() {
            let single = index.query(q, 3);
            assert_eq!(batch[qi].neighbors, single.neighbors, "query {qi}");
            assert_eq!(batch[qi].stats, single.stats, "query {qi}");
        }
        let stats = engine.stats();
        assert_eq!(stats.queries, 17);
        assert_eq!(
            stats.query_stats,
            batch.iter().map(|r| r.stats).sum(),
            "aggregated counters must equal the per-query sum"
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let data = blob(100, 8, 3);
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        let no_queries: &[Vec<f32>] = &[];
        assert!(engine.query_batch(no_queries, 4).is_empty());
        assert_eq!(engine.stats().queries, 0);
    }

    #[test]
    fn concurrent_callers_share_one_engine() {
        let data = blob(400, 10, 4);
        let queries: Vec<Vec<f32>> = (0..24).map(|i| data.point(i).to_vec()).collect();
        let index = Arc::new(PmLsh::build(data, PmLshParams::default()));
        let engine = Engine::new(
            Arc::clone(&index),
            EngineConfig {
                threads: 3,
                batch_size: 8,
                max_wait: Duration::from_millis(1),
                ..Default::default()
            },
        );
        std::thread::scope(|scope| {
            for chunk in queries.chunks(6) {
                let engine = engine.clone();
                let index = Arc::clone(&index);
                scope.spawn(move || {
                    for q in chunk {
                        let served = engine.query(q, 4);
                        let direct = index.query(q, 4);
                        assert_eq!(served.neighbors, direct.neighbors);
                    }
                });
            }
        });
        let stats = engine.stats();
        assert_eq!(stats.queries, 24);
        assert!(stats.batches >= 1 && stats.batches <= 24);
        assert!(stats.mean_batch >= 1.0);
    }

    #[test]
    fn absurd_k_is_clamped_to_n() {
        let data = blob(60, 6, 7);
        let q = data.point(0).to_vec();
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        );
        // Would be a multi-terabyte TopK allocation if not clamped.
        let res = engine.query(&q, usize::MAX / 2);
        assert_eq!(res.neighbors.len(), 60);
        let batch = engine.query_batch(&[&q[..]], usize::MAX / 2);
        assert_eq!(batch[0].neighbors.len(), 60);
    }

    #[test]
    #[should_panic(expected = "non-finite component")]
    fn non_finite_query_panics_on_the_caller_thread() {
        let data = blob(50, 8, 6);
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let mut q = [0.5f32; 8];
        q[3] = f32::NAN;
        engine.query(&q, 1);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn dimension_mismatch_panics_on_the_caller_thread() {
        let data = blob(50, 8, 5);
        let engine = Engine::new(
            PmLsh::build(data, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        engine.query(&[0.0f32; 4], 1);
    }
}
