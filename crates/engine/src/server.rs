//! TCP serving layer: an event-driven reactor speaking a
//! newline-delimited text protocol (with an optional length-prefixed
//! binary mode) over a [`Router`] of named engines, with graceful drain,
//! connection caps, and optional token authentication.
//!
//! # Wire protocol
//!
//! One request per line, one response line per request, UTF-8, fields
//! separated by single spaces:
//!
//! ```text
//! QUERY <k> <v1> ... <vd>  ->  OK <id>:<dist>,<id>:<dist>,...
//! PING                     ->  PONG
//! HELLO [text|binary]      ->  OK text | OK binary (switches framing)
//! STATS                    ->  STATS index=<name> <EngineStats as one line>
//! INDEXINFO                ->  INDEXINFO name=<name> points=... dim=... m=... c=... epoch=... reindexing=... state=... pct=... shards=...
//! LISTINDEXES              ->  INDEXES <name1>,<name2>,...   (sorted; bare "INDEXES" when empty)
//! USE <name>               ->  OK using <name>
//! AUTH <token>             ->  OK authenticated
//! ATTACH <name> <path>     ->  OK attached <name> points=<n> dim=<d> secs=<s>   (auth-gated)
//! DETACH <name>            ->  OK detached <name>                               (auth-gated)
//! REINDEX <path>           ->  OK index=<name> epoch=<e> points=<n> secs=<s>    (auth-gated)
//! INSERT <v1> ... <vd>     ->  OK id=<id> epoch=<e> points=<n>                  (auth-gated)
//! DELETE <id>              ->  OK deleted <id> epoch=<e> points=<n>             (auth-gated)
//! BATCH <count>            ->  OK applied=<a> failed=<f> epoch=<e> points=<n>   (auth-gated;
//!                              <count> op lines follow, then the reply + <f> FAIL lines)
//! SAVE <path>              ->  OK saved <name> points=<n> bytes=<b> secs=<s>    (auth-gated)
//! QUIT                     ->  BYE (and the server closes the connection)
//! anything else            ->  ERR <message>
//! ```
//!
//! `HELLO binary` switches the connection to the length-prefixed binary
//! frame format of [`crate::frame`] — the server answers `OK binary` in
//! text and both directions speak frames from the next byte on. Binary
//! mode carries `QUERY` and `PING` only; everything else (attach,
//! auth, index management) stays on text connections. Text remains the
//! default: a client that never says `HELLO` sees the protocol above,
//! byte for byte.
//!
//! `QUERY`, `STATS`, `INDEXINFO`, `REINDEX`, `INSERT`, `DELETE` and
//! `SAVE` operate on the connection's *current* index — the router's
//! default at connect time, switched with `USE`. When
//! [`ServerConfig::auth_token`] is set, the mutating verbs
//! (`REINDEX`/`ATTACH`/`DETACH`/`INSERT`/`DELETE`) and `SAVE` (which
//! writes server-side files) answer `ERR authentication required` until
//! the connection sends a matching `AUTH <token>`; without a configured
//! token they are open (and `AUTH` answers `OK authentication not
//! required`). [`ServerHandle::set_auth_token`] swaps the accepted token
//! at runtime without a restart.
//!
//! `ATTACH` auto-detects the file format: a `.pmlsh` snapshot (by magic
//! bytes — see `pm-lsh-persist`) is loaded directly and serves within
//! milliseconds with its saved parameters; a sharded manifest (also by
//! magic bytes) restores the whole shard set as one [`ShardedEngine`];
//! fvecs/csv datasets are built from scratch with
//! [`ServerConfig::attach_params`].
//! `INSERT`/`DELETE` publish a fresh snapshot per call (each bumps the
//! `INDEXINFO` epoch); a `QUERY` after an `OK` reply observes the
//! mutation.
//!
//! `BATCH <count>` amortizes that cost: the `count` lines that follow
//! (each a bare `INSERT <v1> ... <vd>` or `DELETE <id>`, at most
//! `BATCH_MAX_OPS` of them) are collected without being interpreted as
//! top-level commands, syntactically validated *all-or-nothing* (any
//! malformed line answers one `ERR batch line <i>: ...` and nothing
//! applies), then applied through [`Engine::apply`] as one copy-on-write
//! publication — the epoch bumps once per batch, not once per op. The
//! reply is one `OK applied=<a> failed=<f> epoch=<e> points=<n>` line
//! followed by exactly `f` lines `FAIL <op-index> <message>` for ops the
//! engine refused semantically (wrong dimensionality, non-finite after
//! parse, unknown id, would-empty); the rest of the batch still applies.
//! `BATCH` is text-only and auth-gated like the other mutating verbs.
//!
//! Malformed input never takes the server down: every parse failure is an
//! `ERR` response, every I/O failure closes only that connection, a `k`
//! beyond the indexed point count is clamped, and request lines are
//! capped at `max(512, 64 + 32·d)` bytes of the current index (512 with
//! none selected; binary frames at [`crate::frame::frame_cap`]). The
//! full specification, with a worked `nc` transcript, lives in
//! `docs/PROTOCOL.md`.
//!
//! # Serving reactor
//!
//! One `pmlsh-reactor` thread owns every socket. It runs a readiness
//! loop over the `crate::reactor` poller (epoll on Linux): the
//! listener, a self-pipe waker, and all live connections are registered
//! under tokens, and the thread sleeps in `epoll_wait` until one of them
//! has something to say — no per-connection threads, no polling.
//!
//! * **Non-blocking I/O with backpressure** — each connection carries a
//!   read buffer (capped at its line/frame cap) and a write buffer.
//!   Read interest is suspended while a request is in flight or the
//!   write buffer is past its high-water mark, so a slow or flooding
//!   client throttles itself, never the reactor.
//! * **Query offload** — `QUERY` is validated inline, then submitted to
//!   the engine's worker pool with a completion callback; the callback
//!   formats the reply on the worker thread and wakes the reactor to
//!   write it out. Slow verbs (`ATTACH`/`REINDEX`/`INSERT`/`DELETE`/
//!   `BATCH`/`SAVE`/`DETACH`) run on one-off `pmlsh-op` threads the
//!   same way.
//!   Either way a connection has at most one request in flight; replies
//!   keep request order by construction.
//! * **Connection caps** — at [`ServerConfig::max_connections`] live
//!   connections, further accepts are answered
//!   `ERR server at connection capacity` and closed;
//!   [`ServerConfig::max_connections_per_index`] bounds how many
//!   connections may sit on one index (enforced at accept for the
//!   default index and on `USE`).
//! * **Accept-error backoff** — persistent `accept()` failures (e.g. fd
//!   exhaustion, `EMFILE`) deregister the listener and re-register after
//!   an exponential backoff (capped at [`MAX_ACCEPT_BACKOFF`]) instead
//!   of busy-looping at 100% CPU.
//! * **Graceful drain** — [`ServerHandle::shutdown`] flips the stop flag
//!   and wakes the reactor, which refuses the accept backlog with
//!   `ERR server shutting down`, closes the listener, tells every idle
//!   connection the same, and lets in-flight requests finish — replies
//!   in progress arrive intact, *then* the shutdown notice. There is no
//!   polling interval: drain begins at the next readiness wakeup.
//!   Whoever is still alive at the drain deadline has its socket
//!   force-closed. The outcome is reported as a [`DrainReport`].
//!
//! Binding port 0 picks a free port — [`ServerHandle::addr`] reports it,
//! which is how the loopback tests run without port clashes.

use crate::frame;
use crate::reactor::{wake_pair, Event, Interest, Poller, WakeReceiver, Waker};
use crate::router::Router;
use crate::{Engine, EngineConfig, QueryError, ShardedEngine};
use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
use pm_lsh_metric::Neighbor;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest sleep between consecutive failing `accept()` calls.
pub const MAX_ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// How long a failed `AUTH` guess stalls its connection (and only its
/// connection) before the `ERR bad token` reply — an online brute-force
/// throttle, implemented as a reactor timer, not a sleeping thread.
const AUTH_THROTTLE: Duration = Duration::from_millis(100);

/// Write-buffer high-water mark: past this many un-flushed reply bytes a
/// connection's read interest is suspended until the peer drains.
const WRITE_HIGH_WATER: usize = 64 * 1024;

/// Most op lines one `BATCH <count>` request may carry. Bounds how much
/// a single connection can buffer server-side before the batch applies.
const BATCH_MAX_OPS: usize = 4096;

/// First token pair of a successful `BATCH` reply:
/// `OK applied=<a> failed=<f> epoch=<e> points=<n>`.
const BATCH_OK_PREFIX: &str = "OK applied=";

/// Prefix of each per-op failure line following a `BATCH` reply:
/// `FAIL <op-index> <message>` — exactly `failed` of them.
const BATCH_FAIL_PREFIX: &str = "FAIL ";

/// Poller token of the listening socket.
const LISTENER: u64 = 0;
/// Poller token of the waker pipe's read end.
const WAKER: u64 = 1;
/// First token handed to an accepted connection (monotonic, never
/// reused, so a stale completion can never hit a recycled connection).
const FIRST_CONN: u64 = 2;

/// Serving-layer knobs (the engine itself is tuned via [`EngineConfig`]).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Most simultaneous live connections; further accepts are answered
    /// `ERR server at connection capacity` and closed.
    pub max_connections: usize,
    /// Most simultaneous live connections whose *current* index is the
    /// same one — a noisy tenant cannot starve every other index of
    /// connection slots. Enforced at accept time (against the default
    /// index) and on `USE`. The default (`usize::MAX`) disables the
    /// quota.
    pub max_connections_per_index: usize,
    /// How long [`ServerHandle::shutdown`] (and the handle's `Drop`)
    /// waits for in-flight connections before force-closing them.
    pub drain_timeout: Duration,
    /// When set, `REINDEX`/`ATTACH`/`DETACH` require a prior
    /// `AUTH <token>` on the same connection. Swappable at runtime with
    /// [`ServerHandle::set_auth_token`].
    pub auth_token: Option<String>,
    /// Index parameters for datasets attached over the wire
    /// (`ATTACH <name> <path>`).
    pub attach_params: PmLshParams,
    /// Engine configuration (worker pool, batcher) for engines created by
    /// wire `ATTACH` — each attached index runs its own pool.
    pub attach_engine_config: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 1024,
            max_connections_per_index: usize::MAX,
            drain_timeout: Duration::from_secs(5),
            auth_token: None,
            attach_params: PmLshParams::default(),
            attach_engine_config: EngineConfig::default(),
        }
    }
}

/// How a shutdown's drain went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// `true` when no live connection remains (cleanly or after forcing).
    pub drained: bool,
    /// Connections whose sockets had to be force-closed at the deadline.
    pub forced: usize,
}

/// A running server: the reactor thread and the shutdown switch.
///
/// Dropping the handle drains the server with the configured
/// [`ServerConfig::drain_timeout`]; call [`ServerHandle::join`] instead to
/// serve until the process dies.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connections right now.
    pub fn connections(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }

    /// Replaces the accepted `AUTH` token without a restart. Connections
    /// that already authenticated stay authenticated; new `AUTH`
    /// attempts (and the auth state of new connections) are judged
    /// against the new value. `None` turns authentication off.
    pub fn set_auth_token(&self, token: Option<String>) {
        *self.shared.auth.write().expect("auth token lock poisoned") = token;
    }

    /// Blocks until the reactor thread exits (i.e. forever, unless another
    /// handle clone... there is none — effectively: serve until killed).
    pub fn join(mut self) {
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }

    /// Gracefully drains with the configured
    /// [`ServerConfig::drain_timeout`]: stops accepting, lets every
    /// in-flight request finish and its reply arrive intact, tells each
    /// connection `ERR server shutting down`, and waits for them to
    /// close. Connections still alive at the deadline are force-closed.
    pub fn shutdown(mut self) -> DrainReport {
        let timeout = self.shared.config.drain_timeout;
        self.drain(timeout)
    }

    /// [`ServerHandle::shutdown`] with an explicit drain deadline.
    pub fn shutdown_within(mut self, timeout: Duration) -> DrainReport {
        self.drain(timeout)
    }

    fn drain(&mut self, timeout: Duration) -> DrainReport {
        *self
            .shared
            .drain_timeout
            .lock()
            .expect("drain timeout lock poisoned") = timeout;
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        self.shared
            .report
            .lock()
            .expect("drain report lock poisoned")
            .take()
            .unwrap_or(DrainReport {
                // The reactor died without reporting (a panic): the best
                // available answer is whether anything is still live.
                drained: self.shared.live.load(Ordering::SeqCst) == 0,
                forced: 0,
            })
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.reactor.is_some() {
            let timeout = self.shared.config.drain_timeout;
            self.drain(timeout);
        }
    }
}

/// Serves a single engine under the index name `"default"` with a default
/// [`ServerConfig`] — the one-dataset convenience over [`serve_router`].
/// Accepts a plain [`Engine`] (serving it as a single shard) or a
/// [`ShardedEngine`].
pub fn serve(
    engine: impl Into<ShardedEngine>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    let router = Router::with_engine("default", engine)
        .expect("'default' is a valid index name for a fresh router");
    serve_router(router, addr, ServerConfig::default())
}

/// Binds `addr` (e.g. `("127.0.0.1", 0)` or `"0.0.0.0:7878"`) and serves
/// every index attached to `router` — including ones attached or detached
/// while running — until the returned handle is shut down or dropped.
pub fn serve_router(
    router: Router,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let (waker, waker_rx) = wake_pair()?;
    poller.add(listener.as_raw_fd(), LISTENER, Interest::READ)?;
    poller.add(waker_rx.fd(), WAKER, Interest::READ)?;
    let shared = Arc::new(Shared {
        router,
        auth: RwLock::new(config.auth_token.clone()),
        drain_timeout: Mutex::new(config.drain_timeout),
        config,
        stop: AtomicBool::new(false),
        live: AtomicUsize::new(0),
        completions: Mutex::new(Vec::new()),
        waker,
        report: Mutex::new(None),
    });
    let reactor = Reactor {
        shared: Arc::clone(&shared),
        poller,
        waker_rx,
        listener: Some(listener),
        accept_errors: 0,
        accept_resume: None,
        conns: HashMap::new(),
        next_token: FIRST_CONN,
        timers: Vec::new(),
        per_index: HashMap::new(),
        draining: false,
        drain_deadline: None,
        forced: 0,
        events: Vec::new(),
    };
    let thread = std::thread::Builder::new()
        .name("pmlsh-reactor".to_string())
        .spawn(move || reactor.run())?;
    Ok(ServerHandle {
        addr,
        shared,
        reactor: Some(thread),
    })
}

/// A finished off-reactor operation (a worker-pool query or a `pmlsh-op`
/// thread) waiting for the reactor to write its reply bytes out.
#[derive(Debug)]
struct Completion {
    /// The connection's poller token.
    conn: u64,
    /// The fully formatted reply (text line or binary frame).
    reply: Vec<u8>,
}

/// Everything the reactor, the worker completions and the handle share.
#[derive(Debug)]
struct Shared {
    router: Router,
    config: ServerConfig,
    /// The live auth token — [`ServerHandle::set_auth_token`] writes,
    /// `AUTH` handling reads. Separate from `config.auth_token` (the
    /// boot value) so a swap needs no restart.
    auth: RwLock<Option<String>>,
    stop: AtomicBool,
    live: AtomicUsize,
    /// The deadline [`ServerHandle::drain`] wants; read by the reactor
    /// when the stop flag lands.
    drain_timeout: Mutex<Duration>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    report: Mutex<Option<DrainReport>>,
}

impl Shared {
    /// Queues `reply` for `conn` and wakes the reactor. Callable from any
    /// thread; a reply for a connection that died in the meantime is
    /// silently dropped by the reactor.
    fn complete(&self, conn: u64, reply: Vec<u8>) {
        self.completions
            .lock()
            .expect("completion queue poisoned")
            .push(Completion { conn, reply });
        self.waker.wake();
    }
}

/// Sleep after the `n`-th consecutive `accept()` error (n >= 1):
/// 500 µs doubling up to [`MAX_ACCEPT_BACKOFF`]. Under persistent fd
/// exhaustion (`EMFILE`) an unthrottled accept loop spins a full core;
/// this bounds it to ~20 attempts/s while recovering in one successful
/// accept.
fn accept_backoff(consecutive_errors: u32) -> Duration {
    let base = Duration::from_micros(500);
    let doublings = consecutive_errors.saturating_sub(1).min(10);
    (base * 2u32.pow(doublings)).min(MAX_ACCEPT_BACKOFF)
}

/// Answers a connection the server will not serve with a final `ERR` line
/// and closes it. Best-effort: a refusal must never block the reactor on
/// a slow peer.
fn refuse(mut stream: TcpStream, message: &[u8]) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(message);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-connection protocol state (cloned into `pmlsh-op` threads for
/// offloaded verbs, so it must stay cheap to copy).
#[derive(Clone, Debug)]
struct ConnState {
    /// The index `QUERY`/`STATS`/`INDEXINFO`/`REINDEX` route to. Starts
    /// at the router's default; switched with `USE`. The name can go
    /// stale (`DETACH`), in which case routed verbs answer `ERR`.
    index: Option<String>,
    /// `true` once the connection may use mutating verbs — immediately
    /// when no auth token is configured, after a correct `AUTH`
    /// otherwise.
    authed: bool,
    /// The current index's dimensionality (0 with none selected), cached
    /// per connection so the per-request path costs no snapshot load — a
    /// snapshot invariant (reindex rejects dimension changes), refreshed
    /// on `USE`.
    dim: usize,
    /// Request-line byte cap, derived from `dim` (512 floor).
    line_cap: usize,
    /// Binary-frame payload cap, derived from `dim` (512 floor).
    frame_cap: usize,
}

impl ConnState {
    /// Points this connection at `engine` under `name` (or at nothing).
    fn select(&mut self, name: Option<String>, engine: Option<&ShardedEngine>) {
        self.index = name;
        self.dim = engine.map_or(0, ShardedEngine::dim);
        // A legitimate line is `QUERY <k> <v1..vd>`: ~32 bytes per float
        // is generous; the 512-byte floor leaves room for ATTACH/REINDEX
        // paths even at tiny dimensionalities (and with no index selected
        // at all).
        self.line_cap = (64 + 32 * self.dim).max(512);
        self.frame_cap = frame::frame_cap(self.dim);
    }
}

/// One live connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// Bytes read but not yet consumed as requests.
    buf_in: Vec<u8>,
    /// Reply bytes not yet written; `out_pos` is how far the socket got.
    buf_out: Vec<u8>,
    out_pos: usize,
    state: ConnState,
    /// `true` after `HELLO binary`: requests and replies are frames.
    binary: bool,
    /// A request is off on a worker/op thread; input is paused until its
    /// completion arrives (which also keeps replies in request order).
    inflight: bool,
    /// Mid-`BATCH` accumulation: `Some((expected, ops))` from a valid
    /// `BATCH <count>` header until `expected` op lines have arrived —
    /// lines collected here are never interpreted as top-level commands.
    /// The whole request gets one reply, delivered after the last line.
    batch: Option<(usize, Vec<String>)>,
    /// The peer finished writing (read returned 0).
    eof: bool,
    /// No further requests will be accepted; close once `buf_out` flushes.
    closing: bool,
    /// The interest currently registered in the poller.
    interest: Interest,
}

impl Conn {
    /// Flushed everything it ever will — safe to close.
    fn done(&self) -> bool {
        self.closing && self.out_pos >= self.buf_out.len()
    }

    /// How many input bytes may accumulate before reads pause. Enough
    /// for any single legal request plus its delimiter/prefix;
    /// pipelined requests beyond it simply wait in the kernel buffer.
    fn in_cap(&self) -> usize {
        if self.binary {
            self.state.frame_cap + 4
        } else {
            self.state.line_cap + 1
        }
    }

    /// Queues a text reply line (text-mode verbs only).
    fn reply_line(&mut self, line: &str) {
        self.buf_out.extend_from_slice(line.as_bytes());
        self.buf_out.push(b'\n');
    }

    /// Queues an error reply in the connection's current framing.
    /// `prefixed` is the text form (`ERR ...`); binary mode strips the
    /// prefix and sends the message as an ERR frame.
    fn reply_err(&mut self, prefixed: &str) {
        if self.binary {
            let message = prefixed.strip_prefix("ERR ").unwrap_or(prefixed);
            frame::encode_err(message, &mut self.buf_out);
        } else {
            self.reply_line(prefixed);
        }
    }

    /// Declares the connection unusable (hard I/O error): drop any
    /// unwritable replies and let `done()` close it.
    fn mark_dead(&mut self) {
        self.closing = true;
        self.buf_out.clear();
        self.out_pos = 0;
    }
}

/// One parsed request, either framing.
enum WireRequest {
    Line(String),
    Frame(frame::Request),
}

/// The event loop: owns the poller, the listener, and every connection.
struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    waker_rx: WakeReceiver,
    /// `None` once a drain closed it.
    listener: Option<TcpListener>,
    accept_errors: u32,
    /// `Some(when)` while the listener is deregistered after accept
    /// errors; re-registered once `when` passes.
    accept_resume: Option<Instant>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Pending delayed replies (the failed-`AUTH` throttle): when each
    /// fires, the reply is delivered like a completion.
    timers: Vec<(Instant, u64, Vec<u8>)>,
    /// Live connections per current index name — the
    /// [`ServerConfig::max_connections_per_index`] quota ledger.
    per_index: HashMap<String, usize>,
    draining: bool,
    drain_deadline: Option<Instant>,
    forced: usize,
    events: Vec<Event>,
}

impl Reactor {
    fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if let Some(deadline) = self.drain_deadline {
                if Instant::now() >= deadline {
                    self.force_close_all();
                }
            }
            if self.draining && self.conns.is_empty() {
                *self
                    .shared
                    .report
                    .lock()
                    .expect("drain report lock poisoned") = Some(DrainReport {
                    drained: true,
                    forced: self.forced,
                });
                return;
            }
            let timeout = self.next_timeout();
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                // epoll_wait fails only on programming errors (EBADF,
                // EINVAL); there is no serving without a poller.
                self.force_close_all();
                *self
                    .shared
                    .report
                    .lock()
                    .expect("drain report lock poisoned") = Some(DrainReport {
                    drained: true,
                    forced: self.forced,
                });
                return;
            }
            for &event in &events {
                match event.token {
                    WAKER => self.waker_rx.drain(&self.shared.waker),
                    LISTENER => self.accept_ready(),
                    _ => self.handle_conn_event(event),
                }
            }
            self.events = events;
            self.run_completions();
            self.run_timers();
            self.maybe_resume_accept();
        }
    }

    /// How long the next `wait` may sleep: until the earliest timer,
    /// accept-backoff expiry, or drain deadline (forever if none).
    fn next_timeout(&self) -> Option<Duration> {
        let mut deadline: Option<Instant> = None;
        for (when, _, _) in &self.timers {
            deadline = Some(deadline.map_or(*when, |d| d.min(*when)));
        }
        if let Some(when) = self.accept_resume {
            deadline = Some(deadline.map_or(when, |d| d.min(when)));
        }
        if let Some(when) = self.drain_deadline {
            deadline = Some(deadline.map_or(when, |d| d.min(when)));
        }
        deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    // -- accept path ------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.accept_errors = 0;
                    self.admit(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent failure (EMFILE and friends): silence the
                    // listener in the poller and retry after a backoff,
                    // so the reactor keeps serving live connections at
                    // full speed instead of spinning on accept().
                    self.accept_errors += 1;
                    let _ = self.poller.delete(listener.as_raw_fd());
                    self.accept_resume = Some(Instant::now() + accept_backoff(self.accept_errors));
                    return;
                }
            }
        }
    }

    /// Re-registers a backed-off listener once its resume time passes.
    fn maybe_resume_accept(&mut self) {
        let Some(resume) = self.accept_resume else {
            return;
        };
        if Instant::now() < resume {
            return;
        }
        match self.listener.as_ref() {
            Some(listener) => {
                match self
                    .poller
                    .add(listener.as_raw_fd(), LISTENER, Interest::READ)
                {
                    Ok(()) => self.accept_resume = None,
                    Err(_) => self.accept_resume = Some(Instant::now() + MAX_ACCEPT_BACKOFF),
                }
            }
            None => self.accept_resume = None,
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.draining || self.shared.stop.load(Ordering::SeqCst) {
            refuse(stream, b"ERR server shutting down\n");
            return;
        }
        if self.conns.len() >= self.shared.config.max_connections {
            refuse(stream, b"ERR server at connection capacity\n");
            return;
        }
        let default = self.shared.router.default_name();
        if let Some(name) = default.as_deref() {
            if self.index_full(name) {
                refuse(
                    stream,
                    format!("ERR index '{name}' at connection capacity\n").as_bytes(),
                );
                return;
            }
        }
        stream.set_nodelay(true).ok();
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            // Nothing was counted yet; dropping the stream is the whole
            // cleanup.
            return;
        }
        let mut state = ConnState {
            index: None,
            authed: self
                .shared
                .auth
                .read()
                .expect("auth token lock poisoned")
                .is_none(),
            dim: 0,
            line_cap: 0,
            frame_cap: 0,
        };
        let engine = default
            .as_deref()
            .and_then(|name| self.shared.router.get(name));
        state.select(default, engine.as_ref());
        if let Some(name) = state.index.clone() {
            *self.per_index.entry(name).or_insert(0) += 1;
        }
        self.shared.live.fetch_add(1, Ordering::SeqCst);
        self.conns.insert(
            token,
            Conn {
                stream,
                token,
                buf_in: Vec::new(),
                buf_out: Vec::new(),
                out_pos: 0,
                state,
                binary: false,
                inflight: false,
                batch: None,
                eof: false,
                closing: false,
                interest: Interest::READ,
            },
        );
    }

    fn index_full(&self, name: &str) -> bool {
        self.per_index.get(name).copied().unwrap_or(0)
            >= self.shared.config.max_connections_per_index
    }

    fn release_quota(&mut self, name: &str) {
        if let Some(count) = self.per_index.get_mut(name) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.per_index.remove(name);
            }
        }
    }

    // -- connection events ------------------------------------------------

    fn handle_conn_event(&mut self, event: Event) {
        // Remove-operate-reinsert keeps the borrow checker out of the
        // way: every helper below gets `&mut self` and the owned Conn.
        let Some(mut conn) = self.conns.remove(&event.token) else {
            return;
        };
        let mut dead = false;
        if event.readable {
            dead = self.do_read(&mut conn);
        } else if event.hangup {
            // HUP/ERR with read interest suspended (a request in flight,
            // or write backpressure): the peer fully vanished.
            dead = true;
        }
        if !dead && event.writable {
            self.try_flush(&mut conn);
        }
        self.finish(conn, dead);
    }

    /// Reinserts a connection with refreshed poller interest, or closes
    /// it when it is dead or has said everything it ever will.
    fn finish(&mut self, mut conn: Conn, dead: bool) {
        if dead || conn.done() {
            self.close_conn(conn);
        } else {
            self.update_interest(&mut conn);
            self.conns.insert(conn.token, conn);
        }
    }

    /// Drains the socket into `buf_in` (up to the input cap) and
    /// processes whatever requests completed. Returns `true` when the
    /// connection suffered a hard read error.
    fn do_read(&mut self, conn: &mut Conn) -> bool {
        let mut scratch = [0u8; 16384];
        loop {
            if conn.buf_in.len() > conn.in_cap() {
                // Backpressure: stop reading; the level-triggered poller
                // re-fires once processing makes room.
                break;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => conn.buf_in.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        self.process_input(conn);
        false
    }

    /// Consumes complete requests from `buf_in` (at most one in flight at
    /// a time), then applies the drain/EOF epilogue and flushes.
    ///
    /// The drain flag is only consulted once the buffered complete
    /// requests are handled: a request the client already finished
    /// writing is answered even if the drain lands first — the protocol
    /// promises that every owed reply is delivered before
    /// `ERR server shutting down`. (A client that keeps the pipeline
    /// saturated can ride that promise only until the drain deadline
    /// force-closes its socket.)
    fn process_input(&mut self, conn: &mut Conn) {
        while !conn.inflight && !conn.closing {
            match self.take_request(conn) {
                Some(request) => self.handle_request(conn, request),
                None => break,
            }
        }
        if !conn.inflight && !conn.closing {
            if self.draining {
                conn.reply_err("ERR server shutting down");
                conn.closing = true;
            } else if conn.eof {
                conn.closing = true;
            }
        }
        self.try_flush(conn);
    }

    /// Extracts one complete request from `buf_in`, if any. Protocol
    /// violations (oversized line/frame, malformed frame) queue their
    /// `ERR` and mark the connection closing.
    fn take_request(&mut self, conn: &mut Conn) -> Option<WireRequest> {
        if conn.binary {
            return self.take_frame(conn);
        }
        let cap = conn.state.line_cap;
        let window = conn.buf_in.len().min(cap + 1);
        if let Some(i) = conn.buf_in[..window].iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = conn.buf_in.drain(..=i).collect();
            return Some(WireRequest::Line(
                String::from_utf8_lossy(&line).into_owned(),
            ));
        }
        if conn.buf_in.len() > cap {
            conn.reply_line("ERR line exceeds protocol maximum");
            conn.closing = true;
            return None;
        }
        if conn.eof && !conn.buf_in.is_empty() {
            // A final unterminated line still gets answered.
            let line = std::mem::take(&mut conn.buf_in);
            return Some(WireRequest::Line(
                String::from_utf8_lossy(&line).into_owned(),
            ));
        }
        None
    }

    fn take_frame(&mut self, conn: &mut Conn) -> Option<WireRequest> {
        if conn.buf_in.len() < 4 {
            // A truncated length prefix at EOF is a clean close, not an
            // error: the peer simply hung up between frames.
            return None;
        }
        let len = u32::from_le_bytes(conn.buf_in[..4].try_into().expect("4-byte slice")) as usize;
        if len > conn.state.frame_cap {
            conn.reply_err("ERR frame exceeds protocol maximum");
            conn.closing = true;
            return None;
        }
        if conn.buf_in.len() < 4 + len {
            // Mid-frame EOF: nothing sensible to answer; close cleanly.
            return None;
        }
        let mut framed: Vec<u8> = conn.buf_in.drain(..4 + len).collect();
        let payload = framed.split_off(4);
        match frame::decode_request(&payload) {
            Ok(request) => Some(WireRequest::Frame(request)),
            Err(e) => {
                conn.reply_err(&format!("ERR {e}"));
                conn.closing = true;
                None
            }
        }
    }

    fn handle_request(&mut self, conn: &mut Conn, request: WireRequest) {
        match request {
            WireRequest::Line(text) => self.handle_line(conn, &text),
            WireRequest::Frame(frame::Request::Ping) => frame::encode_pong(&mut conn.buf_out),
            WireRequest::Frame(frame::Request::Query { k, query }) => {
                self.start_query(conn, query, k as usize);
            }
        }
    }

    fn handle_line(&mut self, conn: &mut Conn, line: &str) {
        if conn.batch.is_some() {
            // Mid-BATCH: this line is an op, never a command — even a
            // line that spells "QUIT" is just a (malformed) op.
            return self.accumulate_batch(conn, line);
        }
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        let mut fields = line.split_ascii_whitespace();
        match fields.next() {
            Some("QUERY") => {
                let k: usize = match fields.next().map(str::parse) {
                    Some(Ok(k)) if k >= 1 => k,
                    _ => return conn.reply_line("ERR QUERY needs a positive integer k"),
                };
                // Sized off the connection's cached dimensionality so a
                // well-formed high-d query never reallocates mid-parse.
                let mut query = Vec::with_capacity(conn.state.dim.max(16));
                for field in fields {
                    match field.parse::<f32>() {
                        Ok(v) if v.is_finite() => query.push(v),
                        _ => {
                            return conn.reply_line(&format!("ERR bad vector component '{field}'"))
                        }
                    }
                }
                self.start_query(conn, query, k);
            }
            Some("PING") => conn.reply_line("PONG"),
            Some("HELLO") => match (fields.next(), fields.next()) {
                (None, _) | (Some("text"), None) => {
                    conn.binary = false;
                    conn.reply_line("OK text");
                }
                (Some("binary"), None) => {
                    // The acknowledgement itself is text; everything
                    // after it speaks frames.
                    conn.reply_line("OK binary");
                    conn.binary = true;
                }
                _ => conn.reply_line("ERR HELLO supports: text, binary"),
            },
            Some("STATS") => match current_engine(&self.shared, &conn.state) {
                Ok((name, engine)) => {
                    conn.reply_line(&format!("STATS index={name} {}", engine.stats()));
                }
                Err(err) => conn.reply_line(&err),
            },
            Some("INDEXINFO") => match current_engine(&self.shared, &conn.state) {
                Ok((name, engine)) => {
                    conn.reply_line(&format!("INDEXINFO name={name} {}", engine.info()));
                }
                Err(err) => conn.reply_line(&err),
            },
            Some("LISTINDEXES") => {
                let names = self.shared.router.names();
                conn.reply_line(&if names.is_empty() {
                    "INDEXES".to_string()
                } else {
                    format!("INDEXES {}", names.join(","))
                });
            }
            Some("USE") => self.answer_use(conn, fields),
            Some("AUTH") => self.answer_auth(conn, fields),
            Some("BATCH") => {
                let count: usize = match fields.next().map(str::parse) {
                    Some(Ok(c)) if c >= 1 => c,
                    _ => return conn.reply_line("ERR BATCH needs a positive op count"),
                };
                if fields.next().is_some() {
                    return conn.reply_line("ERR BATCH takes exactly one op count");
                }
                if count > BATCH_MAX_OPS {
                    return conn
                        .reply_line(&format!("ERR BATCH accepts at most {BATCH_MAX_OPS} ops"));
                }
                // No header ack: the single reply comes once all `count`
                // op lines have arrived (and been validated + applied).
                conn.batch = Some((count, Vec::with_capacity(count.min(256))));
            }
            Some("ATTACH") | Some("DETACH") | Some("REINDEX") | Some("INSERT") | Some("DELETE")
            | Some("SAVE") => self.offload(conn, line.to_string()),
            Some("QUIT") => {
                conn.reply_line("BYE");
                conn.closing = true;
            }
            Some(other) => conn.reply_line(&format!("ERR unknown command '{other}'")),
            None => {}
        }
    }

    fn answer_use<'a>(&mut self, conn: &mut Conn, mut fields: impl Iterator<Item = &'a str>) {
        let Some(name) = fields.next() else {
            return conn.reply_line("ERR USE needs an index name");
        };
        if fields.next().is_some() {
            return conn.reply_line("ERR USE takes exactly one index name");
        }
        match self.shared.router.get(name) {
            Some(engine) => {
                if conn.state.index.as_deref() == Some(name) {
                    // Re-selecting the current index refreshes the cached
                    // dimensionality without touching the quota ledger.
                    conn.state.select(Some(name.to_string()), Some(&engine));
                    return conn.reply_line(&format!("OK using {name}"));
                }
                if self.index_full(name) {
                    return conn.reply_line(&format!("ERR index '{name}' at connection capacity"));
                }
                if let Some(old) = conn.state.index.clone() {
                    self.release_quota(&old);
                }
                *self.per_index.entry(name.to_string()).or_insert(0) += 1;
                conn.state.select(Some(name.to_string()), Some(&engine));
                conn.reply_line(&format!("OK using {name}"));
            }
            None => conn.reply_line(&format!("ERR unknown index '{name}' (see LISTINDEXES)")),
        }
    }

    fn answer_auth<'a>(&mut self, conn: &mut Conn, mut fields: impl Iterator<Item = &'a str>) {
        let Some(token) = fields.next() else {
            return conn.reply_line("ERR AUTH needs a token");
        };
        if fields.next().is_some() {
            return conn.reply_line("ERR AUTH takes exactly one (whitespace-free) token");
        }
        let expected = self
            .shared
            .auth
            .read()
            .expect("auth token lock poisoned")
            .clone();
        match expected.as_deref() {
            None => conn.reply_line("OK authentication not required"),
            Some(expected) if token_matches(expected, token) => {
                conn.state.authed = true;
                conn.reply_line("OK authenticated");
            }
            Some(_) => {
                // Throttle online brute force: one failed guess costs
                // this connection (and only this connection) a beat. The
                // delay is a reactor timer — nobody sleeps.
                conn.inflight = true;
                self.timers.push((
                    Instant::now() + AUTH_THROTTLE,
                    conn.token,
                    b"ERR bad token\n".to_vec(),
                ));
            }
        }
    }

    /// Submits a validated-enough `QUERY` to the engine's worker pool
    /// with a completion callback that formats the reply off-reactor.
    fn start_query(&mut self, conn: &mut Conn, query: Vec<f32>, k: usize) {
        let engine = match current_engine(&self.shared, &conn.state) {
            Ok((_name, engine)) => engine,
            Err(err) => return conn.reply_err(&err),
        };
        let shared = Arc::clone(&self.shared);
        let token = conn.token;
        let binary = conn.binary;
        let submitted = engine.submit_query(&query, k, move |result| {
            let reply = match result {
                Ok(result) => {
                    if binary {
                        let mut out = Vec::new();
                        frame::encode_ok(&result.neighbors, &mut out);
                        out
                    } else {
                        format_ok_text(&result.neighbors)
                    }
                }
                Err(e) => {
                    let message = query_err_message(&e);
                    if binary {
                        let mut out = Vec::new();
                        frame::encode_err(&message, &mut out);
                        out
                    } else {
                        format!("ERR {message}\n").into_bytes()
                    }
                }
            };
            shared.complete(token, reply);
        });
        match submitted {
            Ok(()) => conn.inflight = true,
            // Validation failed synchronously (dimension mismatch, k=0,
            // NaN component): an ERR reply, and the connection lives on.
            Err(e) => conn.reply_err(&format!("ERR {}", query_err_message(&e))),
        }
    }

    /// Runs a slow verb (`ATTACH`/`DETACH`/`REINDEX`/`INSERT`/`DELETE`/
    /// `SAVE` — builds, file I/O, engine teardown) on a one-off thread so
    /// the reactor keeps serving every other connection meanwhile.
    fn offload(&mut self, conn: &mut Conn, line: String) {
        let shared = Arc::clone(&self.shared);
        let state = conn.state.clone();
        let token = conn.token;
        let spawned = std::thread::Builder::new()
            .name("pmlsh-op".to_string())
            .spawn(move || {
                let mut reply = answer_slow(&line, &shared, &state).into_bytes();
                reply.push(b'\n');
                shared.complete(token, reply);
            });
        match spawned {
            Ok(_) => conn.inflight = true,
            // Out of threads: fail the request, not the connection.
            Err(_) => conn.reply_line("ERR internal error"),
        }
    }

    /// Collects one op line of an in-progress `BATCH`; once the header's
    /// count is reached, the whole batch is offloaded as one unit.
    fn accumulate_batch(&mut self, conn: &mut Conn, line: &str) {
        let Some((expected, mut ops)) = conn.batch.take() else {
            return;
        };
        ops.push(line.trim().to_string());
        if ops.len() < expected {
            conn.batch = Some((expected, ops));
        } else {
            self.offload_batch(conn, ops);
        }
    }

    /// Runs a completed `BATCH` on a one-off `pmlsh-op` thread, exactly
    /// like [`Reactor::offload`] — the reply may span multiple lines
    /// (the `OK` summary plus one `FAIL` line per refused op).
    fn offload_batch(&mut self, conn: &mut Conn, ops: Vec<String>) {
        let shared = Arc::clone(&self.shared);
        let state = conn.state.clone();
        let token = conn.token;
        let spawned = std::thread::Builder::new()
            .name("pmlsh-op".to_string())
            .spawn(move || {
                let mut reply = answer_batch(&ops, &shared, &state).into_bytes();
                reply.push(b'\n');
                shared.complete(token, reply);
            });
        match spawned {
            Ok(_) => conn.inflight = true,
            Err(_) => conn.reply_line("ERR internal error"),
        }
    }

    // -- completions and timers -------------------------------------------

    fn run_completions(&mut self) {
        let completions = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .expect("completion queue poisoned"),
        );
        for completion in completions {
            self.deliver(completion.conn, completion.reply);
        }
    }

    fn run_timers(&mut self) {
        let now = Instant::now();
        let mut due = Vec::new();
        self.timers.retain_mut(|(when, token, reply)| {
            if *when <= now {
                due.push((*token, std::mem::take(reply)));
                false
            } else {
                true
            }
        });
        for (token, reply) in due {
            self.deliver(token, reply);
        }
    }

    /// Hands an off-reactor reply to its connection and resumes request
    /// processing (buffered pipelined requests, drain/EOF epilogue). A
    /// reply for a connection that died in the meantime is dropped.
    fn deliver(&mut self, token: u64, reply: Vec<u8>) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        conn.inflight = false;
        conn.buf_out.extend_from_slice(&reply);
        self.process_input(&mut conn);
        self.finish(conn, false);
    }

    // -- writes and lifecycle ---------------------------------------------

    /// Writes as much of `buf_out` as the socket accepts right now. Hard
    /// errors mark the connection dead (see [`Conn::mark_dead`]).
    fn try_flush(&mut self, conn: &mut Conn) {
        while conn.out_pos < conn.buf_out.len() {
            match conn.stream.write(&conn.buf_out[conn.out_pos..]) {
                Ok(0) => return conn.mark_dead(),
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return conn.mark_dead(),
            }
        }
        if conn.out_pos >= conn.buf_out.len() {
            conn.buf_out.clear();
            conn.out_pos = 0;
        }
    }

    /// Re-derives what the poller should watch for this connection and
    /// applies it if it changed.
    fn update_interest(&mut self, conn: &mut Conn) {
        let pending = conn.buf_out.len() - conn.out_pos;
        let want = Interest {
            // No reads while a request is in flight (serial processing,
            // natural backpressure), while closing, after EOF, or while
            // the peer is too slow draining replies.
            read: !conn.inflight && !conn.closing && !conn.eof && pending < WRITE_HIGH_WATER,
            write: pending > 0,
        };
        if want != conn.interest
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, conn: Conn) {
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        if let Some(name) = conn.state.index.as_deref() {
            let name = name.to_string();
            self.release_quota(&name);
        }
        self.shared.live.fetch_sub(1, Ordering::SeqCst);
        // Dropping the stream closes the socket.
    }

    // -- drain -------------------------------------------------------------

    /// Starts the graceful drain: refuse the accept backlog, close the
    /// listener (later connects get ECONNREFUSED), and tell every idle
    /// connection `ERR server shutting down`. In-flight connections get
    /// the same notice right after their owed reply is delivered.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(
            Instant::now()
                + *self
                    .shared
                    .drain_timeout
                    .lock()
                    .expect("drain timeout lock poisoned"),
        );
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
            loop {
                match listener.accept() {
                    Ok((stream, _)) => refuse(stream, b"ERR server shutting down\n"),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break, // WouldBlock: backlog emptied
                }
            }
        }
        self.accept_resume = None;
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            self.process_input(&mut conn);
            self.finish(conn, false);
        }
    }

    /// The drain deadline passed: close whatever is left, counting each
    /// casualty.
    fn force_close_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.remove(&token) {
                self.forced += 1;
                self.close_conn(conn);
            }
        }
    }
}

/// The text `OK` line for a neighbor list, newline included.
fn format_ok_text(neighbors: &[Neighbor]) -> Vec<u8> {
    let mut out = String::with_capacity(16 * neighbors.len() + 4);
    out.push_str("OK ");
    for (i, n) in neighbors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", n.id, n.dist));
    }
    out.push('\n');
    out.into_bytes()
}

/// The unprefixed error message for a failed query — shared by text
/// (`ERR <message>`) and binary (ERR frame) replies.
fn query_err_message(e: &QueryError) -> String {
    match e {
        QueryError::DimensionMismatch { expected, got } => {
            format!("query has {got} components, index dimensionality is {expected}")
        }
        QueryError::ZeroK => "QUERY needs a positive integer k".to_string(),
        QueryError::NonFiniteComponent => "query contains a non-finite component".to_string(),
        QueryError::Internal => "internal error".to_string(),
    }
}

/// Dispatches an offloaded slow verb on a `pmlsh-op` thread. `line` is
/// the whole trimmed request; the caller guaranteed its verb is one of
/// the offloaded set.
fn answer_slow(line: &str, shared: &Shared, conn: &ConnState) -> String {
    let mut fields = line.split_ascii_whitespace();
    match fields.next() {
        Some("ATTACH") => answer_attach(fields, shared, conn),
        Some("DETACH") => answer_detach(fields, shared, conn),
        Some("REINDEX") => answer_reindex(fields, shared, conn),
        Some("INSERT") => answer_insert(fields, shared, conn),
        Some("DELETE") => answer_delete(fields, shared, conn),
        Some("SAVE") => answer_save(fields, shared, conn),
        _ => "ERR internal error".to_string(),
    }
}

/// Resolves the connection's current index to a live engine, or the `ERR`
/// line explaining why it cannot.
fn current_engine(shared: &Shared, conn: &ConnState) -> Result<(String, ShardedEngine), String> {
    let Some(name) = conn.index.as_deref() else {
        return Err("ERR no index attached (ATTACH one, then USE it)".to_string());
    };
    match shared.router.get(name) {
        Some(engine) => Ok((name.to_string(), engine)),
        None => Err(format!(
            "ERR index '{name}' is not attached (see LISTINDEXES)"
        )),
    }
}

/// The `ERR` line for an unauthenticated mutating verb, if any.
fn auth_err(conn: &ConnState) -> Option<String> {
    if conn.authed {
        None
    } else {
        Some("ERR authentication required (AUTH <token>)".to_string())
    }
}

/// Length-then-bytes comparison that always scans the full candidate, so
/// the timing of a failed `AUTH` does not leak how much of the token
/// matched.
fn token_matches(expected: &str, offered: &str) -> bool {
    let expected = expected.as_bytes();
    let offered = offered.as_bytes();
    if expected.is_empty() {
        // An empty configured token matches nothing — and must not be
        // indexed by the scan below. (The CLI rejects an empty
        // --auth-token outright; this keeps a programmatic Some("")
        // locked rather than panicking the handler.)
        return false;
    }
    let mut diff = expected.len() ^ offered.len();
    for (i, &b) in offered.iter().enumerate() {
        diff |= usize::from(b ^ expected[i % expected.len()]);
    }
    diff == 0
}

fn answer_attach<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (Some(name), Some(path), None) = (fields.next(), fields.next(), fields.next()) else {
        return "ERR ATTACH needs <name> <path> (both whitespace-free)".to_string();
    };
    // Fail the cheap checks before the expensive build. The final
    // Router::attach re-checks both (another connection may have raced an
    // attach of the same name), so TOCTOU costs a wasted build, never an
    // inconsistent router.
    if let Err(e) = Router::validate_name(name) {
        return format!("ERR {e}");
    }
    if shared.router.get(name).is_some() {
        return format!("ERR an index named '{name}' is already attached");
    }
    // A sharded manifest (detected by magic bytes, not extension)
    // restores every shard file it names and serves them as one
    // scatter-gather engine — the set a wire `SAVE` of a sharded index
    // wrote.
    if pm_lsh_persist::is_manifest_file(path) {
        let start = Instant::now();
        let engine = match pm_lsh_persist::load_sharded(path) {
            Ok(shards) => ShardedEngine::from_indexes(shards, shared.config.attach_engine_config),
            Err(e) => return format!("ERR reading {path}: {e}"),
        };
        let points = engine.len();
        let dim = engine.dim();
        return match shared.router.attach(name, engine) {
            Ok(()) => format!(
                "OK attached {name} points={points} dim={dim} secs={:.3}",
                start.elapsed().as_secs_f64()
            ),
            Err(e) => format!("ERR {e}"),
        };
    }
    // A `.pmlsh` snapshot (detected by magic bytes, not extension) skips
    // the build entirely: the index inside is already constructed, with
    // its own saved parameters, and serves as soon as it deserializes.
    if pm_lsh_persist::is_pmlsh_file(path) {
        let start = Instant::now();
        let index = match pm_lsh_persist::load(path) {
            Ok(index) => index,
            Err(e) => return format!("ERR reading {path}: {e}"),
        };
        let points = index.len();
        let dim = index.data().dim();
        let engine = Engine::new(index, shared.config.attach_engine_config);
        return match shared.router.attach(name, engine) {
            Ok(()) => format!(
                "OK attached {name} points={points} dim={dim} secs={:.3}",
                start.elapsed().as_secs_f64()
            ),
            Err(e) => format!("ERR {e}"),
        };
    }
    let data = match pm_lsh_data::read_auto(path, None) {
        Ok(data) => data,
        Err(e) => return format!("ERR reading {path}: {e}"),
    };
    if data.is_empty() {
        return "ERR cannot attach an empty dataset".to_string();
    }
    // A NaN/Inf component would panic deep inside the build, which runs
    // on this op thread — the client would see a bare `ERR internal`
    // instead of this diagnosis. Name the poisoned row so a
    // multi-gigabyte file is debuggable from the reply alone.
    if let Err(flat) = crate::validate_points(data.as_flat()) {
        return format!(
            "ERR dataset contains a non-finite (NaN/Inf) component at row {} component {}",
            flat / data.dim(),
            flat % data.dim()
        );
    }
    let start = Instant::now();
    let points = data.len();
    let dim = data.dim();
    let index = PmLsh::build_with_opts(
        Arc::new(data),
        shared.config.attach_params,
        BuildOptions::all_cores(),
    );
    let engine = Engine::new(index, shared.config.attach_engine_config);
    match shared.router.attach(name, engine) {
        Ok(()) => format!(
            "OK attached {name} points={points} dim={dim} secs={:.3}",
            start.elapsed().as_secs_f64()
        ),
        Err(e) => format!("ERR {e}"),
    }
}

fn answer_detach<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let Some(name) = fields.next() else {
        return "ERR DETACH needs an index name".to_string();
    };
    if fields.next().is_some() {
        return "ERR DETACH takes exactly one index name".to_string();
    }
    match shared.router.detach(name) {
        // Dropping the engine joins its worker pools — which is exactly
        // why DETACH runs on an op thread, not on the reactor.
        Ok(_engine) => format!("OK detached {name}"),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes `REINDEX <path>` against the connection's current index:
/// loads the server-side dataset file, rebuilds with that snapshot's
/// parameters on all cores, and swaps. Returns the one-line wire reply.
fn answer_reindex<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let Some(path) = fields.next() else {
        return "ERR REINDEX needs a dataset file path".to_string();
    };
    if fields.next().is_some() {
        return "ERR REINDEX takes exactly one (whitespace-free) path".to_string();
    }
    let data = match pm_lsh_data::read_auto(path, None) {
        Ok(data) => data,
        Err(e) => return format!("ERR reading {path}: {e}"),
    };
    // Keep the serving parameters; only the dataset changes. The build
    // runs on the op thread, so this connection blocks while every
    // other connection keeps being served.
    let params = engine.params();
    match engine.reindex(data, params, BuildOptions::all_cores()) {
        Ok(report) => format!(
            "OK index={name} epoch={} points={} secs={:.3}",
            report.epoch, report.points, report.build_secs
        ),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes `INSERT <v1> ... <vd>` against the connection's current
/// index: parses the vector with the same rules as `QUERY`, publishes the
/// mutated snapshot, and reports the assigned id with the new epoch.
fn answer_insert<'a>(
    fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (_name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let mut point = Vec::with_capacity(conn.dim.max(16));
    for field in fields {
        match field.parse::<f32>() {
            Ok(v) if v.is_finite() => point.push(v),
            _ => return format!("ERR bad vector component '{field}'"),
        }
    }
    if point.is_empty() {
        return "ERR INSERT needs <v1> ... <vd>".to_string();
    }
    match engine.insert(&point) {
        Ok(report) => format!(
            "OK id={} epoch={} points={}",
            report.id, report.epoch, report.points
        ),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes `DELETE <id>` against the connection's current index.
fn answer_delete<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (_name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let id = match fields.next().map(str::parse::<u32>) {
        Some(Ok(id)) => id,
        _ => return "ERR DELETE needs a point id".to_string(),
    };
    if fields.next().is_some() {
        return "ERR DELETE takes exactly one point id".to_string();
    }
    match engine.delete(id) {
        Ok(report) => format!(
            "OK deleted {} epoch={} points={}",
            report.id, report.epoch, report.points
        ),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes a completed `BATCH` against the connection's current index:
/// auth-gates, syntactically validates every op line *all-or-nothing*
/// (one malformed line fails the whole batch with `ERR batch line <i>:`
/// and nothing applies), then applies the parsed ops through
/// [`Engine::apply`] / [`ShardedEngine::apply`] — one copy-on-write
/// clone and one epoch bump per batch (per touched shard when sharded).
/// Semantic refusals (wrong dimensionality, unknown id, would-empty)
/// fail only their own op: they come back as `FAIL <op-index> <message>`
/// lines after the `OK` summary while the rest of the batch applies.
fn answer_batch(ops: &[String], shared: &Shared, conn: &ConnState) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (_name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let mut parsed = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        match parse_batch_op(op, conn.dim) {
            Ok(op) => parsed.push(op),
            Err(msg) => return format!("ERR batch line {i}: {msg}"),
        }
    }
    match engine.apply(&parsed) {
        Ok(report) => {
            let mut out = format!(
                "{}{} failed={} epoch={} points={}",
                BATCH_OK_PREFIX,
                report.applied,
                report.failed(),
                report.epoch,
                report.points
            );
            for (i, result) in report.results.iter().enumerate() {
                if let Err(e) = result {
                    out.push('\n');
                    out.push_str(&format!("{BATCH_FAIL_PREFIX}{i} {e}"));
                }
            }
            out
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Parses one `BATCH` op line — a bare `INSERT <v1> ... <vd>` or
/// `DELETE <id>`, with the same field rules as the top-level verbs
/// (finite float components, a `u32` id). `dim` only sizes the parse
/// buffer; a wrong-dimensionality insert is the engine's per-op call.
fn parse_batch_op(line: &str, dim: usize) -> Result<crate::MutOp, String> {
    let mut fields = line.split_ascii_whitespace();
    match fields.next() {
        Some("INSERT") => {
            let mut point = Vec::with_capacity(dim.max(16));
            for field in fields {
                match field.parse::<f32>() {
                    Ok(v) if v.is_finite() => point.push(v),
                    _ => return Err(format!("bad vector component '{field}'")),
                }
            }
            if point.is_empty() {
                return Err("INSERT needs <v1> ... <vd>".to_string());
            }
            Ok(crate::MutOp::Insert(point))
        }
        Some("DELETE") => {
            let id = match fields.next().map(str::parse::<u32>) {
                Some(Ok(id)) => id,
                _ => return Err("DELETE needs a point id".to_string()),
            };
            if fields.next().is_some() {
                return Err("DELETE takes exactly one point id".to_string());
            }
            Ok(crate::MutOp::Delete(id))
        }
        Some(other) => Err(format!("unknown batch op '{other}' (INSERT or DELETE)")),
        None => Err("empty op line".to_string()),
    }
}

/// Executes `SAVE <path>` against the connection's current index: pins
/// the served snapshot and writes it to a server-side `.pmlsh` file
/// (atomic tmp-file + rename). Serialization runs on the op thread with
/// no engine locks held, so every other connection keeps being served;
/// the saved snapshot excludes mutations that land mid-save.
/// Auth-gated: it writes files on the server's filesystem.
fn answer_save<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let Some(path) = fields.next() else {
        return "ERR SAVE needs a destination file path".to_string();
    };
    if fields.next().is_some() {
        return "ERR SAVE takes exactly one (whitespace-free) path".to_string();
    }
    let start = Instant::now();
    match engine.save(path) {
        Ok(report) => format!(
            "OK saved {name} points={} bytes={} secs={:.3}",
            report.points,
            report.bytes,
            start.elapsed().as_secs_f64()
        ),
        Err(e) => format!("ERR saving {path}: {e}"),
    }
}

/// Parses one `OK` response line back into `(id, dist)` pairs — the client
/// half of the protocol, used by `pmlsh` tooling and the loopback tests.
pub fn parse_ok_response(line: &str) -> Result<Vec<(u32, f32)>, String> {
    let rest = line
        .strip_prefix("OK")
        .ok_or_else(|| format!("expected 'OK ...', got '{line}'"))?
        .trim();
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    rest.split(',')
        .map(|pair| {
            let (id, dist) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed neighbor '{pair}'"))?;
            Ok((
                id.parse().map_err(|_| format!("bad id '{id}'"))?,
                dist.parse().map_err(|_| format!("bad distance '{dist}'"))?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::Dataset;
    use pm_lsh_stats::Rng;
    use std::io::{BufRead, BufReader};

    #[test]
    fn parse_ok_roundtrip() {
        let parsed = parse_ok_response("OK 3:0.5,17:1.25,9:2").unwrap();
        assert_eq!(parsed, vec![(3, 0.5), (17, 1.25), (9, 2.0)]);
        assert!(parse_ok_response("ERR nope").is_err());
        assert!(parse_ok_response("OK").unwrap().is_empty());
        assert!(parse_ok_response("OK 1:x").is_err());
    }

    #[test]
    fn backoff_grows_and_caps() {
        assert_eq!(accept_backoff(1), Duration::from_micros(500));
        assert_eq!(accept_backoff(2), Duration::from_millis(1));
        assert_eq!(accept_backoff(3), Duration::from_millis(2));
        let capped = accept_backoff(30);
        assert_eq!(capped, MAX_ACCEPT_BACKOFF);
        // Monotone non-decreasing all the way up.
        for n in 1..32 {
            assert!(accept_backoff(n) <= accept_backoff(n + 1));
        }
    }

    #[test]
    fn token_matching() {
        assert!(token_matches("sekrit", "sekrit"));
        assert!(!token_matches("sekrit", "sekri"));
        assert!(!token_matches("sekrit", "sekrit2"));
        assert!(!token_matches("sekrit", ""));
        // An empty configured token matches nothing — and a non-empty
        // guess against it must not panic the handler (regression: the
        // scan used to index expected[0] of an empty slice).
        assert!(!token_matches("", ""));
        assert!(!token_matches("", "x"));
        assert!(!token_matches("", "anything-at-all"));
    }

    /// Every connection alive when a shutdown lands — idle, mid-line,
    /// whatever — must be answered `ERR server shutting down` and closed,
    /// not abandoned without a byte; and the drain must report clean.
    #[test]
    fn connections_alive_at_shutdown_get_an_err_line() {
        let handle =
            serve_router(Router::new(), ("127.0.0.1", 0), ServerConfig::default()).unwrap();
        let addr = handle.addr();
        let mut clients: Vec<(BufReader<TcpStream>, TcpStream)> = (0..3)
            .map(|_| {
                let stream = TcpStream::connect(addr).unwrap();
                (BufReader::new(stream.try_clone().unwrap()), stream)
            })
            .collect();
        // A PING roundtrip per client proves all three are admitted.
        for (reader, writer) in &mut clients {
            writer.write_all(b"PING\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "PONG");
        }
        let report = handle.shutdown();
        assert!(report.drained);
        assert_eq!(report.forced, 0, "idle connections drain without force");
        for (reader, _writer) in &mut clients {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "ERR server shutting down");
            let mut rest = Vec::new();
            std::io::Read::read_to_end(reader, &mut rest).unwrap();
            assert!(rest.is_empty(), "connection must close after the ERR line");
        }
        // The listener is gone: a fresh connect cannot be served. (It
        // either fails outright or is closed without a served reply.)
        if let Ok(mut late) = TcpStream::connect(addr) {
            late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut buf = [0u8; 64];
            assert!(!matches!(late.read(&mut buf), Ok(n) if n > 0 && buf.starts_with(b"PONG")));
        }
    }

    /// A worker-pool panic must surface as `ERR internal error` on the
    /// wire — the connection survives and keeps answering — instead of
    /// the raw disconnect clients used to see.
    #[test]
    fn worker_panic_is_an_err_reply_not_a_disconnect() {
        let mut rng = Rng::new(41);
        let mut ds = Dataset::with_capacity(8, 120);
        let mut buf = [0.0f32; 8];
        for _ in 0..120 {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        let engine = Engine::new(
            PmLsh::build(ds, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut roundtrip = |line: &str| -> String {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response.trim_end().to_string()
        };
        let query = "QUERY 3 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8";
        // 8e30 parses to exactly pool::CRASH_TEST_SENTINEL, the
        // test-only fault injection that panics the drawing worker.
        let crashing = "QUERY 3 8e30 0.2 0.3 0.4 0.5 0.6 0.7 0.8";

        assert_eq!(roundtrip(crashing), "ERR internal error");

        // The worker caught the panic; the connection AND the pool are
        // still serviceable.
        assert_eq!(roundtrip("PING"), "PONG");
        assert!(roundtrip(query).starts_with("OK "));
        handle.shutdown();
    }
}
