//! TCP serving layer: a newline-delimited text protocol over the engine.
//!
//! # Wire protocol
//!
//! One request per line, one response line per request, UTF-8, fields
//! separated by single spaces:
//!
//! ```text
//! QUERY <k> <v1> <v2> ... <vd>   ->  OK <id>:<dist>,<id>:<dist>,...
//! PING                           ->  PONG
//! STATS                          ->  STATS <EngineStats as one line>
//! INDEXINFO                      ->  INDEXINFO points=... dim=... m=... c=... epoch=... reindexing=...
//! REINDEX <path>                 ->  OK epoch=<e> points=<n> secs=<s>   (after the swap lands)
//! QUIT                           ->  BYE (and the server closes the connection)
//! anything else                  ->  ERR <message>
//! ```
//!
//! `<k>` is a positive integer, each `<v>` a float; a `QUERY` must carry
//! exactly as many components as the served index's dimensionality, or the
//! server answers `ERR ...` and keeps the connection open. Distances are
//! printed with `{}` (shortest round-trippable `f32` form). `REINDEX`
//! loads the named server-side fvecs/csv file (whitespace-free path,
//! same dimensionality as the served index), rebuilds on all cores and
//! swaps the snapshot atomically; the issuing connection blocks for the
//! build, every other connection keeps querying undisturbed throughout.
//! Malformed input never takes the server down: every parse failure is an
//! `ERR` response, every I/O failure closes only that connection, a `k`
//! beyond the indexed point count is clamped (a kNN answer can never
//! exceed `n`), and request lines are capped at `max(512, 64 + 32·d)`
//! bytes — a client that streams bytes without a newline gets one final
//! `ERR` and is disconnected instead of growing the read buffer without
//! bound. The full specification, with a worked `nc` transcript, lives in
//! `docs/PROTOCOL.md`.
//!
//! The accept loop runs on its own thread and spawns one handler thread
//! per connection; handlers funnel all queries into the shared [`Engine`],
//! whose micro-batcher coalesces concurrent requests before they reach the
//! worker pool. Binding port 0 picks a free port — [`ServerHandle::addr`]
//! reports it, which is how the loopback tests run without port clashes.

use crate::Engine;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: the accept thread plus its shutdown switch.
///
/// Dropping the handle shuts the server down and joins the accept thread;
/// call [`ServerHandle::join`] instead to serve until the process dies.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the accept thread exits (i.e. forever, unless another
    /// handle clone... there is none — effectively: serve until killed).
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting connections and joins the accept thread. Already
    /// established connections finish their current line and then close.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it with a throwaway
        // connection so it observes the flag. An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on every platform, so aim the
        // poke at the loopback of the same family instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, std::time::Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// Binds `addr` (e.g. `("127.0.0.1", 0)` or `"0.0.0.0:7878"`) and serves
/// the engine until the returned handle is shut down or dropped.
pub fn serve(engine: Engine, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("pmlsh-accept".to_string())
        .spawn(move || accept_loop(&listener, &engine, &accept_stop))?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, engine: &Engine, stop: &AtomicBool) {
    // Handler threads detach; the engine they clone keeps the pool alive
    // for as long as any connection is still being served.
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = incoming else { continue };
        let engine = engine.clone();
        let spawned = std::thread::Builder::new()
            .name("pmlsh-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &engine);
            });
        if spawned.is_err() {
            // Out of threads: drop the connection rather than the server.
            continue;
        }
    }
}

fn handle_connection(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // `dim` is a snapshot invariant (reindex rejects dimension changes),
    // so one load per connection covers both the line cap and QUERY
    // validation — no snapshot-cell traffic on the per-line path.
    let dim = engine.index().data().dim();
    // A legitimate line is `QUERY <k> <v1..vd>`: ~32 bytes per float is
    // generous; the 512-byte floor leaves room for a `REINDEX <path>` even
    // at tiny dimensionalities. Reading through a cap keeps a client that
    // streams bytes without a newline from growing the buffer without
    // bound.
    let line_cap = (64 + 32 * dim).max(512);
    let mut line = Vec::with_capacity(256);
    loop {
        line.clear();
        let n =
            std::io::Read::take(&mut reader, (line_cap + 1) as u64).read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(()); // EOF
        }
        if line.last() != Some(&b'\n') && n > line_cap {
            writer.write_all(b"ERR line exceeds protocol maximum\n")?;
            writer.flush()?;
            return Ok(());
        }
        let text = String::from_utf8_lossy(&line);
        match respond(&text, engine, dim) {
            Response::Line(text) => {
                writer.write_all(text.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            Response::Close => {
                writer.write_all(b"BYE\n")?;
                writer.flush()?;
                return Ok(());
            }
            Response::Ignore => {}
        }
    }
}

enum Response {
    Line(String),
    Close,
    Ignore,
}

fn respond(line: &str, engine: &Engine, dim: usize) -> Response {
    let line = line.trim();
    if line.is_empty() {
        return Response::Ignore;
    }
    let mut fields = line.split_ascii_whitespace();
    match fields.next() {
        Some("QUERY") => Response::Line(answer_query(fields, engine, dim)),
        Some("PING") => Response::Line("PONG".to_string()),
        Some("STATS") => Response::Line(format!("STATS {}", engine.stats())),
        Some("INDEXINFO") => Response::Line(format!("INDEXINFO {}", engine.info())),
        Some("REINDEX") => Response::Line(answer_reindex(fields, engine)),
        Some("QUIT") => Response::Close,
        Some(other) => Response::Line(format!("ERR unknown command '{other}'")),
        None => Response::Ignore,
    }
}

/// Executes `REINDEX <path>`: loads the server-side dataset file, rebuilds
/// with the served snapshot's parameters on all cores, and swaps. Returns
/// the one-line wire reply.
fn answer_reindex<'a>(mut fields: impl Iterator<Item = &'a str>, engine: &Engine) -> String {
    let Some(path) = fields.next() else {
        return "ERR REINDEX needs a dataset file path".to_string();
    };
    if fields.next().is_some() {
        return "ERR REINDEX takes exactly one (whitespace-free) path".to_string();
    }
    let data = match pm_lsh_data::read_auto(path, None) {
        Ok(data) => data,
        Err(e) => return format!("ERR reading {path}: {e}"),
    };
    // Keep the serving parameters; only the dataset changes. The build
    // runs on the reindex thread, so this connection blocks while every
    // other connection keeps being served.
    let params = *engine.index().params();
    match engine.reindex(data, params, pm_lsh_core::BuildOptions::all_cores()) {
        Ok(report) => format!(
            "OK epoch={} points={} secs={:.3}",
            report.epoch, report.points, report.build_secs
        ),
        Err(e) => format!("ERR {e}"),
    }
}

fn answer_query<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    engine: &Engine,
    dim: usize,
) -> String {
    let k: usize = match fields.next().map(str::parse) {
        Some(Ok(k)) if k >= 1 => k,
        _ => return "ERR QUERY needs a positive integer k".to_string(),
    };
    let mut query = Vec::with_capacity(dim);
    for field in fields {
        match field.parse::<f32>() {
            Ok(v) if v.is_finite() => query.push(v),
            _ => return format!("ERR bad vector component '{field}'"),
        }
    }
    if query.len() != dim {
        return format!(
            "ERR query has {} components, index dimensionality is {dim}",
            query.len()
        );
    }
    let result = engine.query(&query, k);
    let mut out = String::with_capacity(16 * result.neighbors.len() + 3);
    out.push_str("OK ");
    for (i, n) in result.neighbors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", n.id, n.dist));
    }
    out
}

/// Parses one `OK` response line back into `(id, dist)` pairs — the client
/// half of the protocol, used by `pmlsh` tooling and the loopback tests.
pub fn parse_ok_response(line: &str) -> Result<Vec<(u32, f32)>, String> {
    let rest = line
        .strip_prefix("OK")
        .ok_or_else(|| format!("expected 'OK ...', got '{line}'"))?
        .trim();
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    rest.split(',')
        .map(|pair| {
            let (id, dist) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed neighbor '{pair}'"))?;
            Ok((
                id.parse().map_err(|_| format!("bad id '{id}'"))?,
                dist.parse().map_err(|_| format!("bad distance '{dist}'"))?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ok_roundtrip() {
        let parsed = parse_ok_response("OK 3:0.5,17:1.25,9:2").unwrap();
        assert_eq!(parsed, vec![(3, 0.5), (17, 1.25), (9, 2.0)]);
        assert!(parse_ok_response("ERR nope").is_err());
        assert!(parse_ok_response("OK").unwrap().is_empty());
        assert!(parse_ok_response("OK 1:x").is_err());
    }
}
